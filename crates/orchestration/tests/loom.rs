//! Loom models of the worker-pool scheduling handshake.
//!
//! Run with `cargo test -p theta-orchestration --features loom`. Each
//! test wraps a tiny program around the *production* handshake code
//! ([`theta_orchestration::handshake`]) and asks the model checker to
//! try every interleaving (bounded-preemption DFS; the two-thread
//! models with few operations run fully exhaustively via
//! `model_bounded(usize::MAX, ..)`).
//!
//! What is being proven, model by model:
//!
//! 1. no lost wakeups: every message pushed by the router is applied by
//!    some worker pass, even when the push races the worker's
//!    drain/unschedule hand-back;
//! 2. no double scheduling: concurrent producers put a slot on the run
//!    queue exactly once per idle→scheduled transition;
//! 3. exact drop accounting: at capacity, delivered + dropped equals
//!    attempted, with no message both delivered and counted dropped;
//! 4. close wins: a `close()` racing a push never leaves a message
//!    behind or resurrects the slot;
//! 5. terminal delivery is exactly-once: the worker finish path and the
//!    shutdown-drain path can both try to claim an instance's terminal
//!    result, but only one succeeds;
//! 6. the batch-flush handshake settles every submitted check exactly
//!    once: a check enqueued *while* another thread is mid-flush is
//!    neither lost nor double-verified, and the flush duty never leaks.

#![cfg(feature = "loom")]

use std::sync::Arc;
use theta_orchestration::handshake::{
    batch_claim, batch_finish, batch_submit, batch_take, drain_apply, schedule_core, unschedule,
};
use theta_orchestration::mailbox::{Mailbox, PushError};
use theta_sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use theta_sync::{model, model_bounded, thread, Condvar, Mutex};

/// Sanity: these tests are meaningless against the std passthrough.
#[test]
fn models_are_actually_model_checked() {
    assert!(theta_sync::LOOM, "tests/loom.rs must run with --features loom");
}

/// Model 1 — the full producer/worker round trip with a blocking run
/// queue: one router thread pushes MSGS messages through
/// `schedule_core`, one worker consumes run-queue tokens, drains with
/// `drain_apply` and hands back with `unschedule` (re-draining when
/// `unschedule` reports a race, exactly as a re-injected slot would).
/// Under every explored schedule the worker must apply every message,
/// in order, exactly once — the no-lost-wakeup theorem.
#[test]
fn handoff_loses_no_message_and_keeps_order() {
    const MSGS: u64 = 2;
    model(|| {
        let mailbox: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(8));
        let scheduled = Arc::new(AtomicBool::new(false));
        // (outstanding run-queue tokens, producer finished)
        let queue = Arc::new((Mutex::new((0usize, false)), Condvar::new()));

        let producer = {
            let mailbox = mailbox.clone();
            let scheduled = scheduled.clone();
            let queue = queue.clone();
            thread::spawn(move || {
                for i in 0..MSGS {
                    schedule_core(&mailbox, &scheduled, i, || {
                        let mut q = queue.0.lock().unwrap();
                        q.0 += 1;
                        queue.1.notify_one();
                    })
                    .expect("mailbox is large enough");
                }
                let mut q = queue.0.lock().unwrap();
                q.1 = true;
                queue.1.notify_one();
            })
        };

        let worker = {
            let mailbox = mailbox.clone();
            let scheduled = scheduled.clone();
            let queue = queue.clone();
            thread::spawn(move || {
                let mut seen = Vec::new();
                let mut scratch = Vec::new();
                loop {
                    let mut q = queue.0.lock().unwrap();
                    while q.0 == 0 && !q.1 {
                        q = queue.1.wait(q).unwrap();
                    }
                    if q.0 == 0 {
                        break; // producer done and queue drained
                    }
                    q.0 -= 1;
                    drop(q);
                    loop {
                        drain_apply(&mailbox, &mut scratch, |m| seen.push(m));
                        // unschedule == true is the reinjection path: in
                        // production the slot goes back on the queue and
                        // some worker re-drains; looping here is the
                        // single-worker equivalent.
                        if !unschedule(&mailbox, &scheduled) {
                            break;
                        }
                    }
                }
                seen
            })
        };

        producer.join().unwrap();
        let seen = worker.join().unwrap();
        assert_eq!(seen, (0..MSGS).collect::<Vec<_>>(), "lost or reordered message");
        assert!(mailbox.is_empty(), "message left behind in the mailbox");
    });
}

/// Model 2 (exhaustive) — two producers race `schedule_core` on an idle
/// slot. Exactly one of them may win the idle→scheduled transition and
/// enqueue the slot; the single resulting drain pass must observe both
/// messages. This is the "a slot is never on the run queue twice"
/// invariant that makes the host lock-free.
#[test]
fn concurrent_producers_enqueue_the_slot_exactly_once() {
    model_bounded(usize::MAX, || {
        let mailbox: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(8));
        let scheduled = Arc::new(AtomicBool::new(false));
        let tokens = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let mailbox = mailbox.clone();
                let scheduled = scheduled.clone();
                let tokens = tokens.clone();
                thread::spawn(move || {
                    schedule_core(&mailbox, &scheduled, p, || {
                        tokens.fetch_add(1, Ordering::SeqCst);
                    })
                    .expect("mailbox is large enough");
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }

        assert_eq!(tokens.load(Ordering::SeqCst), 1, "slot enqueued twice (or never)");
        assert_eq!(mailbox.len(), 2);

        // The one scheduled worker pass sees both messages and the
        // hand-back finds nothing left to reclaim.
        let mut seen = Vec::new();
        let mut scratch = Vec::new();
        drain_apply(&mailbox, &mut scratch, |m| seen.push(m));
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
        assert!(!unschedule(&mailbox, &scheduled));
    });
}

/// Model 3 (exhaustive) — capacity pressure: a 1-slot mailbox, two
/// racing producers. Under every interleaving exactly one push fits and
/// exactly one is refused `Full`; delivered + dropped always equals
/// attempted and the mailbox never exceeds its bound.
#[test]
fn drop_accounting_is_exact_at_capacity() {
    model_bounded(usize::MAX, || {
        let mailbox: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(1));
        let scheduled = Arc::new(AtomicBool::new(false));
        let tokens = Arc::new(AtomicUsize::new(0));
        let dropped = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..2u64)
            .map(|p| {
                let mailbox = mailbox.clone();
                let scheduled = scheduled.clone();
                let tokens = tokens.clone();
                let dropped = dropped.clone();
                thread::spawn(move || {
                    match schedule_core(&mailbox, &scheduled, p, || {
                        tokens.fetch_add(1, Ordering::SeqCst);
                    }) {
                        Ok(()) => {}
                        Err(PushError::Full) => {
                            dropped.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(PushError::Closed) => unreachable!("nobody closes here"),
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }

        let mut delivered = 0usize;
        let mut scratch = Vec::new();
        loop {
            drain_apply(&mailbox, &mut scratch, |_| delivered += 1);
            if !unschedule(&mailbox, &scheduled) {
                break;
            }
        }
        let dropped = dropped.load(Ordering::SeqCst);
        assert_eq!(delivered + dropped, 2, "a message vanished from the accounting");
        assert_eq!(delivered, 1, "the 1-slot mailbox must admit exactly one push");
        assert_eq!(dropped, 1);
        // A rejected push must never have scheduled the slot by itself:
        // the only token comes from the successful one.
        assert_eq!(tokens.load(Ordering::SeqCst), 1);
    });
}

/// Model 4 (exhaustive) — instance teardown: `close()` racing a
/// producer's `schedule_core`. Whichever order the checker picks, after
/// both finish the mailbox is empty and refuses pushes, a drain finds
/// nothing, and the slot cannot be resurrected — and the producer got a
/// run-queue token iff its push was accepted (no token for a message
/// that was never queued).
#[test]
fn close_racing_push_never_resurrects_the_slot() {
    model_bounded(usize::MAX, || {
        let mailbox: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(4));
        let scheduled = Arc::new(AtomicBool::new(false));
        let tokens = Arc::new(AtomicUsize::new(0));

        let producer = {
            let mailbox = mailbox.clone();
            let scheduled = scheduled.clone();
            let tokens = tokens.clone();
            thread::spawn(move || {
                match schedule_core(&mailbox, &scheduled, 7, || {
                    tokens.fetch_add(1, Ordering::SeqCst);
                }) {
                    Ok(()) => true,
                    Err(PushError::Closed) => false,
                    Err(PushError::Full) => unreachable!("capacity 4, one push"),
                }
            })
        };
        let closer = {
            let mailbox = mailbox.clone();
            thread::spawn(move || mailbox.close())
        };

        let push_won = producer.join().unwrap();
        closer.join().unwrap();

        assert!(mailbox.is_empty(), "close must discard anything queued");
        assert_eq!(mailbox.try_push(9), Err(PushError::Closed));
        assert_eq!(tokens.load(Ordering::SeqCst), usize::from(push_won));
        // The worker pass for a token (if any) finds a clean, dead slot.
        let mut scratch = Vec::new();
        drain_apply(&mailbox, &mut scratch, |_: u64| {
            panic!("drained a message from a closed mailbox")
        });
        assert!(!unschedule(&mailbox, &scheduled), "closed slot rescheduled itself");
    });
}

/// Model 5 (exhaustive) — shutdown-drain vs worker-finish: both paths
/// race to claim an instance's terminal result with the same
/// `Mutex<Option<_>>::take` idiom the router/host use. Exactly one
/// claimant may observe `Some`, so a subscriber gets exactly one
/// terminal result — never zero, never two.
#[test]
fn terminal_result_is_claimed_exactly_once() {
    model_bounded(usize::MAX, || {
        let result = Arc::new(Mutex::new(Some(42u64)));
        let deliveries = Arc::new(AtomicUsize::new(0));

        let claimants: Vec<_> = (0..2)
            .map(|_| {
                let result = result.clone();
                let deliveries = deliveries.clone();
                thread::spawn(move || {
                    if let Some(v) = result.lock().unwrap().take() {
                        assert_eq!(v, 42);
                        deliveries.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in claimants {
            h.join().unwrap();
        }

        assert_eq!(deliveries.load(Ordering::SeqCst), 1, "terminal result lost or duplicated");
        assert!(result.lock().unwrap().is_none());
    });
}

/// Model 6 (exhaustive) — the batch-flush handshake: two workers race
/// `batch_submit` on one aggregator (threshold 2). Whoever claims the
/// flush duty runs the production take/settle/finish loop; a check
/// submitted while the other thread is mid-flush must be either swept
/// into that flush's re-claim round or left on the list for the age
/// path — settled exactly once, never lost, never twice. The duty flag
/// must always come back released (or claimable) at the end.
#[test]
fn batch_flush_settles_every_check_exactly_once() {
    // threshold 1: every submission may claim, so one thread is usually
    // mid-flush when the other's push lands — the enqueue-while-flushing
    // races. threshold 2: only the crossing submission claims — the
    // single-flusher sweep-up races.
    for threshold in [1usize, 2] {
        model_bounded(usize::MAX, move || {
            let pending: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
            let claimed = Arc::new(AtomicBool::new(false));
            let settled: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

            let submitters: Vec<_> = (0..2u64)
                .map(|item| {
                    let pending = pending.clone();
                    let claimed = claimed.clone();
                    let settled = settled.clone();
                    thread::spawn(move || {
                        // Each submitter contributes one check; a claim
                        // obliges it to run the production flush loop.
                        if batch_submit(&pending, &claimed, [item], threshold) {
                            loop {
                                let batch = batch_take(&pending);
                                settled.lock().unwrap().extend(batch);
                                if !batch_finish(&pending, &claimed, threshold) {
                                    break;
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in submitters {
                h.join().unwrap();
            }

            // The age/shutdown path collects whatever the size flushes
            // left behind (a sub-threshold straggler).
            if batch_claim(&claimed) {
                let batch = batch_take(&pending);
                settled.lock().unwrap().extend(batch);
                assert!(!batch_finish(&pending, &claimed, threshold));
            }

            let mut seen = settled.lock().unwrap().clone();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1], "check lost or double-settled (threshold {threshold})");
            assert!(pending.lock().unwrap().is_empty());
            assert!(!claimed.load(Ordering::SeqCst), "flush duty leaked");
        });
    }
}
