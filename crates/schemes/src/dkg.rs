//! Distributed key generation (Pedersen/joint-Feldman) over Ed25519.
//!
//! The paper's §2.2 names two setup paths: a trusted dealer (used by the
//! evaluation, §4.4) or "a distributed key-generation protocol [37, 27],
//! which is run by the parties themselves — more secure but arguably
//! more complex". This module implements that alternative for the
//! Ed25519-based schemes (SG02, KG20, CKS05): each party deals a random
//! secret with a Feldman commitment, shares are exchanged and verified
//! against the commitments, and the group key is the sum of the
//! qualified dealers' polynomials — no single party ever knows `x`.
//!
//! The protocol here is the synchronous, abort-on-misbehaviour variant
//! (complaints identify the culprit; the caller restarts without them),
//! which matches the trust model of the rest of the suite.
//!
//! # Example
//!
//! ```
//! use theta_schemes::common::ThresholdParams;
//! use theta_schemes::dkg;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ThresholdParams::new(1, 4).unwrap();
//! let outputs = dkg::run_locally(params, &mut rng).unwrap();
//! // Every party derived the same group key.
//! assert!(outputs.iter().all(|o| o.group_key() == outputs[0].group_key()));
//! ```

use crate::common::{PartyId, ThresholdParams};
use crate::error::SchemeError;
use crate::wire::{get_point, get_scalar, put_point, put_scalar};
use rand::RngCore;
use std::collections::BTreeMap;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::ed25519::{Point, Scalar};

/// A dealer's public Feldman commitment: `C_k = g^{a_k}` for every
/// coefficient of its sharing polynomial (degree `t`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Commitment {
    dealer: PartyId,
    coefficients: Vec<Point>,
}

impl Commitment {
    /// The dealing party.
    pub fn dealer(&self) -> PartyId {
        self.dealer
    }

    /// The dealer's contribution to the group public key (`g^{a_0}`).
    pub fn constant_term(&self) -> &Point {
        &self.coefficients[0]
    }

    /// Evaluates the commitment polynomial "in the exponent" at `x = id`:
    /// `Π C_k^{id^k} = g^{f(id)}`.
    pub fn eval_exponent(&self, id: PartyId) -> Point {
        let x = Scalar::from_u64(id.value() as u64);
        let mut acc = Point::identity();
        let mut power = Scalar::one();
        for c in &self.coefficients {
            acc = acc.add(&c.mul(&power));
            power = power.mul(&x);
        }
        acc
    }
}

impl Encode for Commitment {
    fn encode(&self, w: &mut Writer) {
        self.dealer.encode(w);
        (self.coefficients.len() as u32).encode(w);
        for c in &self.coefficients {
            put_point(w, c);
        }
    }
}

impl Decode for Commitment {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let dealer = PartyId::decode(r)?;
        let count = u32::decode(r)? as usize;
        if count == 0 || count > u16::MAX as usize {
            return Err(theta_codec::CodecError::InvalidValue("bad degree".into()));
        }
        let mut coefficients = Vec::with_capacity(count);
        for _ in 0..count {
            coefficients.push(get_point(r)?);
        }
        Ok(Commitment { dealer, coefficients })
    }
}

/// A share of one dealer's polynomial, destined for one receiver
/// (sent over an authenticated private channel in a real deployment).
///
/// Deliberately *not* `PartialEq`: the share value is secret material,
/// and a derived `==` would short-circuit on the first differing limb.
/// Compare with [`DealtShare::ct_eq`].
#[derive(Clone)]
pub struct DealtShare {
    dealer: PartyId,
    receiver: PartyId,
    value: Scalar,
}

impl DealtShare {
    /// The dealing party.
    pub fn dealer(&self) -> PartyId {
        self.dealer
    }

    /// The receiving party.
    pub fn receiver(&self) -> PartyId {
        self.receiver
    }

    /// Constant-time comparison: routing fields must match and the
    /// share values are compared without short-circuiting.
    #[must_use]
    pub fn ct_eq(&self, other: &DealtShare) -> bool {
        self.dealer == other.dealer
            && self.receiver == other.receiver
            && self.value.ct_eq(&other.value)
    }
}

/// Redacted: only the routing metadata is printed, never the share.
impl std::fmt::Debug for DealtShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DealtShare")
            .field("dealer", &self.dealer)
            .field("receiver", &self.receiver)
            .field("value", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// On drop the share value is volatile-wiped so private-channel payloads
/// never linger in freed memory.
impl Drop for DealtShare {
    fn drop(&mut self) {
        self.value.wipe();
    }
}

impl Encode for DealtShare {
    fn encode(&self, w: &mut Writer) {
        self.dealer.encode(w);
        self.receiver.encode(w);
        put_scalar(w, &self.value);
    }
}

impl Decode for DealtShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(DealtShare {
            dealer: PartyId::decode(r)?,
            receiver: PartyId::decode(r)?,
            value: get_scalar(r)?,
        })
    }
}

/// One party's dealing: the broadcastable commitment plus the private
/// shares for every party (including itself).
#[derive(Debug)]
pub struct Dealing {
    /// Public part (broadcast to everyone).
    pub commitment: Commitment,
    /// Private shares, one per party, indexed by receiver.
    pub shares: Vec<DealtShare>,
}

/// Creates this party's dealing: a random degree-`t` polynomial with
/// commitment and per-party shares.
pub fn deal(params: ThresholdParams, dealer: PartyId, rng: &mut dyn RngCore) -> Dealing {
    let coeffs: Vec<Scalar> = (0..=params.t()).map(|_| Scalar::random(rng)).collect();
    let commitment = Commitment {
        dealer,
        coefficients: coeffs.iter().map(Point::mul_base).collect(),
    };
    let shares = params
        .parties()
        .map(|receiver| {
            let x = Scalar::from_u64(receiver.value() as u64);
            let mut acc = Scalar::zero();
            for c in coeffs.iter().rev() {
                acc = acc.mul(&x).add(c);
            }
            DealtShare { dealer, receiver, value: acc }
        })
        .collect();
    Dealing { commitment, shares }
}

/// Verifies one received share against its dealer's commitment:
/// `g^{share} == Π C_k^{i^k}`.
pub fn verify_dealt_share(commitment: &Commitment, share: &DealtShare) -> bool {
    commitment.dealer == share.dealer
        && Point::mul_base(&share.value) == commitment.eval_exponent(share.receiver)
}

/// The output of a completed DKG at one party.
#[derive(Clone)]
pub struct DkgOutput {
    params: ThresholdParams,
    id: PartyId,
    /// This party's share of the never-materialized group secret.
    secret_share: Scalar,
    /// The group public key `g^x`.
    group_key: Point,
    /// Verification keys `g^{x_i}` for every party.
    verification_keys: Vec<Point>,
}

impl DkgOutput {
    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// This party.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// This party's secret share `x_i`.
    pub fn secret_share(&self) -> &Scalar {
        &self.secret_share
    }

    /// The group public key.
    pub fn group_key(&self) -> &Point {
        &self.group_key
    }

    /// The verification key of `party`.
    pub fn verification_key(&self, party: PartyId) -> Option<&Point> {
        self.verification_keys
            .get(party.value().checked_sub(1)? as usize)
    }
}

/// Redacted: the secret share never reaches logs or panic messages.
impl std::fmt::Debug for DkgOutput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DkgOutput")
            .field("params", &self.params)
            .field("id", &self.id)
            .field("secret_share", &"<redacted>")
            .field("group_key", &self.group_key)
            .finish_non_exhaustive()
    }
}

/// On drop the party's share of the group secret is volatile-wiped.
impl Drop for DkgOutput {
    fn drop(&mut self) {
        self.secret_share.wipe();
    }
}

/// Aggregates a full set of commitments and this party's received shares
/// into its DKG output.
///
/// All `n` dealers must appear exactly once (the abort-variant QUAL set
/// is the full party set; exclude misbehaving dealers and rerun with a
/// smaller `n` at the caller's level).
///
/// # Errors
///
/// - [`SchemeError::InvalidShare`] naming the dealer whose share fails
///   Feldman verification.
/// - [`SchemeError::InvalidShareSet`] for missing/duplicate dealers or
///   commitments of the wrong degree.
pub fn aggregate(
    params: ThresholdParams,
    me: PartyId,
    commitments: &[Commitment],
    my_shares: &[DealtShare],
) -> Result<DkgOutput, SchemeError> {
    // Validate the dealer sets.
    let expect = params.n() as usize;
    if commitments.len() != expect {
        return Err(SchemeError::InvalidShareSet(format!(
            "need commitments from all {expect} dealers, got {}",
            commitments.len()
        )));
    }
    let mut by_dealer: BTreeMap<u16, &Commitment> = BTreeMap::new();
    for c in commitments {
        if c.coefficients.len() != params.t() as usize + 1 {
            return Err(SchemeError::InvalidShareSet(format!(
                "dealer {} committed to degree {} (expected {})",
                c.dealer.value(),
                c.coefficients.len().saturating_sub(1),
                params.t()
            )));
        }
        if by_dealer.insert(c.dealer.value(), c).is_some() {
            return Err(SchemeError::InvalidShareSet("duplicate dealer commitment".into()));
        }
    }
    let mut shares: BTreeMap<u16, &DealtShare> = BTreeMap::new();
    for s in my_shares {
        if s.receiver != me {
            return Err(SchemeError::InvalidShareSet("share addressed to another party".into()));
        }
        if shares.insert(s.dealer.value(), s).is_some() {
            return Err(SchemeError::InvalidShareSet("duplicate dealt share".into()));
        }
    }
    if shares.len() != expect {
        return Err(SchemeError::InvalidShareSet(format!(
            "need shares from all {expect} dealers, got {}",
            shares.len()
        )));
    }

    // Feldman verification; a failure is a complaint against the dealer.
    let mut secret_share = Scalar::zero();
    let mut group_key = Point::identity();
    for (dealer_id, share) in &shares {
        let commitment = by_dealer.get(dealer_id).ok_or_else(|| {
            SchemeError::InvalidShareSet(format!("no commitment from dealer {dealer_id}"))
        })?;
        if !verify_dealt_share(commitment, share) {
            return Err(SchemeError::InvalidShare { party: *dealer_id });
        }
        secret_share = secret_share.add(&share.value);
        group_key = group_key.add(commitment.constant_term());
    }

    // Verification keys: g^{x_j} = Π_dealers g^{f_d(j)} from commitments.
    let verification_keys = params
        .parties()
        .map(|party| {
            let mut acc = Point::identity();
            for c in by_dealer.values() {
                acc = acc.add(&c.eval_exponent(party));
            }
            acc
        })
        .collect();

    Ok(DkgOutput {
        params,
        id: me,
        secret_share,
        group_key,
        verification_keys,
    })
}

/// Runs the whole DKG in-process (all parties simulated locally) —
/// useful for tests and for provisioning without a dealer.
///
/// # Errors
///
/// Propagates [`aggregate`] failures (cannot occur with honest local
/// execution).
pub fn run_locally(
    params: ThresholdParams,
    rng: &mut dyn RngCore,
) -> Result<Vec<DkgOutput>, SchemeError> {
    let dealings: Vec<Dealing> = params.parties().map(|id| deal(params, id, rng)).collect();
    let commitments: Vec<Commitment> =
        dealings.iter().map(|d| d.commitment.clone()).collect();
    params
        .parties()
        .map(|me| {
            let my_shares: Vec<DealtShare> = dealings
                .iter()
                .map(|d| d.shares[me.value() as usize - 1].clone())
                .collect();
            aggregate(params, me, &commitments, &my_shares)
        })
        .collect()
}

// ---------------------------------------------------------------------
// Resharing (dealerless reconfiguration)
// ---------------------------------------------------------------------

/// One old party's resharing dealing: it re-deals its Lagrange-weighted
/// share contribution `λ_i·x_i` to the *new* party set under the new
/// threshold, with a Feldman commitment so new parties can verify.
///
/// This is the committee-reconfiguration primitive (cf. CHURP in the
/// paper's related work §5): the group secret and public key are
/// preserved while membership and threshold change, and the secret is
/// never reconstructed anywhere.
#[derive(Debug)]
pub struct ReshareDealing {
    /// Public commitment (the constant term commits to `λ_i·x_i`).
    pub commitment: Commitment,
    /// Private sub-shares for every *new* party.
    pub shares: Vec<DealtShare>,
}

/// Produces old party `old_id`'s resharing dealing toward `new_params`.
///
/// `old_quorum` is the fixed set of old parties participating in the
/// reshare (must contain `old_id` and have old-quorum size); every
/// participant must use the same set so the Lagrange weights line up.
///
/// # Errors
///
/// [`SchemeError::InvalidShareSet`] when `old_id ∉ old_quorum` or ids
/// collide.
pub fn reshare_deal(
    old_share: &Scalar,
    old_id: PartyId,
    old_quorum: &[PartyId],
    new_params: ThresholdParams,
    rng: &mut dyn RngCore,
) -> Result<ReshareDealing, SchemeError> {
    let lambda = crate::common::lagrange_at_zero::<Scalar>(old_id, old_quorum)?;
    let contribution = lambda.mul(old_share);
    // Degree-t' polynomial with g(0) = λ_i·x_i.
    let coeffs: Vec<Scalar> = std::iter::once(contribution)
        .chain((0..new_params.t()).map(|_| Scalar::random(rng)))
        .collect();
    let commitment = Commitment {
        dealer: old_id,
        coefficients: coeffs.iter().map(Point::mul_base).collect(),
    };
    let shares = new_params
        .parties()
        .map(|receiver| {
            let x = Scalar::from_u64(receiver.value() as u64);
            let mut acc = Scalar::zero();
            for c in coeffs.iter().rev() {
                acc = acc.mul(&x).add(c);
            }
            DealtShare { dealer: old_id, receiver, value: acc }
        })
        .collect();
    Ok(ReshareDealing { commitment, shares })
}

/// Aggregates resharing dealings at new party `me`.
///
/// `commitments` and `my_shares` must cover exactly the old quorum (one
/// dealing per old participant). `expected_group_key` pins the old group
/// key: the sum of constant terms must reproduce it, which defeats a
/// colluding old quorum trying to swap in a different secret.
///
/// # Errors
///
/// - [`SchemeError::InvalidShare`] naming a cheating old party.
/// - [`SchemeError::KeyMismatch`] when the dealings do not reconstitute
///   the expected group key.
/// - [`SchemeError::InvalidShareSet`] for malformed dealing sets.
pub fn reshare_aggregate(
    new_params: ThresholdParams,
    me: PartyId,
    commitments: &[Commitment],
    my_shares: &[DealtShare],
    expected_group_key: &Point,
) -> Result<DkgOutput, SchemeError> {
    if commitments.is_empty() || commitments.len() != my_shares.len() {
        return Err(SchemeError::InvalidShareSet(
            "need matching commitment/share sets from the old quorum".into(),
        ));
    }
    let mut by_dealer: BTreeMap<u16, &Commitment> = BTreeMap::new();
    for c in commitments {
        if c.coefficients.len() != new_params.t() as usize + 1 {
            return Err(SchemeError::InvalidShareSet("wrong reshare degree".into()));
        }
        if by_dealer.insert(c.dealer.value(), c).is_some() {
            return Err(SchemeError::InvalidShareSet("duplicate resharer".into()));
        }
    }
    let mut secret_share = Scalar::zero();
    let mut group_key = Point::identity();
    let mut seen = std::collections::HashSet::new();
    for share in my_shares {
        if share.receiver != me {
            return Err(SchemeError::InvalidShareSet(
                "sub-share addressed to another party".into(),
            ));
        }
        if !seen.insert(share.dealer.value()) {
            return Err(SchemeError::InvalidShareSet("duplicate sub-share".into()));
        }
        let commitment = by_dealer.get(&share.dealer.value()).ok_or_else(|| {
            SchemeError::InvalidShareSet(format!(
                "no commitment from resharer {}",
                share.dealer.value()
            ))
        })?;
        if !verify_dealt_share(commitment, share) {
            return Err(SchemeError::InvalidShare { party: share.dealer.value() });
        }
        secret_share = secret_share.add(&share.value);
        group_key = group_key.add(commitment.constant_term());
    }
    if &group_key != expected_group_key {
        return Err(SchemeError::KeyMismatch(
            "reshared dealings do not reproduce the group key".into(),
        ));
    }
    let verification_keys = new_params
        .parties()
        .map(|party| {
            let mut acc = Point::identity();
            for c in by_dealer.values() {
                acc = acc.add(&c.eval_exponent(party));
            }
            acc
        })
        .collect();
    Ok(DkgOutput {
        params: new_params,
        id: me,
        secret_share,
        group_key,
        verification_keys,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{lagrange_at_zero, shamir_reconstruct};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xd6c)
    }

    #[test]
    fn all_parties_agree_on_keys() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let outputs = run_locally(params, &mut r).unwrap();
        for o in &outputs[1..] {
            assert_eq!(o.group_key(), outputs[0].group_key());
            for p in params.parties() {
                assert_eq!(o.verification_key(p), outputs[0].verification_key(p));
            }
        }
        // Verification keys match the secret shares.
        for o in &outputs {
            assert_eq!(
                &Point::mul_base(o.secret_share()),
                outputs[0].verification_key(o.id()).unwrap()
            );
        }
    }

    #[test]
    fn shares_reconstruct_group_secret() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let outputs = run_locally(params, &mut r).unwrap();
        // Reconstruct x from a quorum and check g^x == group key.
        let quorum: Vec<(PartyId, Scalar)> = outputs[..2]
            .iter()
            .map(|o| (o.id(), o.secret_share().clone()))
            .collect();
        let x = shamir_reconstruct(&quorum).unwrap();
        assert_eq!(&Point::mul_base(&x), outputs[0].group_key());
        // A different quorum reconstructs the same secret.
        let quorum2: Vec<(PartyId, Scalar)> = outputs[2..]
            .iter()
            .map(|o| (o.id(), o.secret_share().clone()))
            .collect();
        assert_eq!(shamir_reconstruct(&quorum2).unwrap(), x);
    }

    #[test]
    fn feldman_catches_bad_share() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let dealing = deal(params, PartyId(2), &mut r);
        let good = &dealing.shares[0];
        assert!(verify_dealt_share(&dealing.commitment, good));
        let bad = DealtShare {
            dealer: good.dealer,
            receiver: good.receiver,
            value: good.value.add(&Scalar::one()),
        };
        assert!(!verify_dealt_share(&dealing.commitment, &bad));
    }

    #[test]
    fn aggregate_identifies_cheating_dealer() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let dealings: Vec<Dealing> =
            params.parties().map(|id| deal(params, id, &mut r)).collect();
        let commitments: Vec<Commitment> =
            dealings.iter().map(|d| d.commitment.clone()).collect();
        // Dealer 3 sends party 1 a corrupted share.
        let mut my_shares: Vec<DealtShare> = dealings
            .iter()
            .map(|d| d.shares[0].clone())
            .collect();
        my_shares[2].value = my_shares[2].value.add(&Scalar::one());
        let err = aggregate(params, PartyId(1), &commitments, &my_shares).unwrap_err();
        assert_eq!(err, SchemeError::InvalidShare { party: 3 });
    }

    #[test]
    fn aggregate_rejects_malformed_sets() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let dealings: Vec<Dealing> =
            params.parties().map(|id| deal(params, id, &mut r)).collect();
        let commitments: Vec<Commitment> =
            dealings.iter().map(|d| d.commitment.clone()).collect();
        let my_shares: Vec<DealtShare> =
            dealings.iter().map(|d| d.shares[0].clone()).collect();

        // Missing a commitment.
        assert!(aggregate(params, PartyId(1), &commitments[..3], &my_shares).is_err());
        // Duplicate dealer.
        let mut dup = commitments.clone();
        dup[3] = dup[0].clone();
        assert!(aggregate(params, PartyId(1), &dup, &my_shares).is_err());
        // Share addressed to someone else.
        let foreign: Vec<DealtShare> =
            dealings.iter().map(|d| d.shares[1].clone()).collect();
        assert!(aggregate(params, PartyId(1), &commitments, &foreign).is_err());
        // Wrong-degree commitment.
        let mut short = commitments.clone();
        short[0].coefficients.pop();
        assert!(aggregate(params, PartyId(1), &short, &my_shares).is_err());
    }

    #[test]
    fn dkg_keys_drive_cks05_style_signing() {
        // The DKG output slots straight into the DLEQ-based flows: prove
        // a coin share under the DKG verification keys.
        use crate::dleq::DleqProof;
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let outputs = run_locally(params, &mut r).unwrap();
        let o = &outputs[0];
        let g_tilde = crate::hashing::hash_to_ed25519("dkg-test", &[b"coin"]).unwrap();
        let sigma = g_tilde.mul(o.secret_share());
        let proof = DleqProof::prove(
            "dkg-test/share",
            &Point::base(),
            o.verification_key(o.id()).unwrap(),
            &g_tilde,
            &sigma,
            o.secret_share(),
            &mut r,
        );
        assert!(proof.verify(
            "dkg-test/share",
            &Point::base(),
            o.verification_key(o.id()).unwrap(),
            &g_tilde,
            &sigma,
        ));
    }

    #[test]
    fn lagrange_consistency_with_dkg_vks() {
        // Interpolating verification keys in the exponent over any quorum
        // yields the group key: Π vk_i^{λ_i} == g^x.
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let outputs = run_locally(params, &mut r).unwrap();
        let ids: Vec<PartyId> = outputs[2..5].iter().map(|o| o.id()).collect();
        let mut acc = Point::identity();
        for o in &outputs[2..5] {
            let l = lagrange_at_zero::<Scalar>(o.id(), &ids).unwrap();
            acc = acc.add(&outputs[0].verification_key(o.id()).unwrap().mul(&l));
        }
        assert_eq!(&acc, outputs[0].group_key());
    }

    #[test]
    fn codec_roundtrips() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let dealing = deal(params, PartyId(1), &mut r);
        let c = dealing.commitment.clone();
        assert_eq!(Commitment::decoded(&c.encoded()).unwrap(), c);
        let s = dealing.shares[2].clone();
        assert!(DealtShare::decoded(&s.encoded()).unwrap().ct_eq(&s));
    }

    /// Runs a full reshare from `old` outputs (quorum subset) to a new
    /// (t', n') configuration; returns the new outputs.
    fn run_reshare(
        old: &[DkgOutput],
        new_params: ThresholdParams,
        r: &mut rand::rngs::StdRng,
    ) -> Result<Vec<DkgOutput>, SchemeError> {
        let old_quorum: Vec<PartyId> = old.iter().map(|o| o.id()).collect();
        let dealings: Vec<ReshareDealing> = old
            .iter()
            .map(|o| {
                reshare_deal(o.secret_share(), o.id(), &old_quorum, new_params, r).unwrap()
            })
            .collect();
        let commitments: Vec<Commitment> =
            dealings.iter().map(|d| d.commitment.clone()).collect();
        new_params
            .parties()
            .map(|me| {
                let my_shares: Vec<DealtShare> = dealings
                    .iter()
                    .map(|d| d.shares[me.value() as usize - 1].clone())
                    .collect();
                reshare_aggregate(new_params, me, &commitments, &my_shares, old[0].group_key())
            })
            .collect()
    }

    #[test]
    fn reshare_preserves_secret_and_group_key() {
        let mut r = rng();
        let old_params = ThresholdParams::new(1, 4).unwrap();
        let old = run_locally(old_params, &mut r).unwrap();
        let old_secret = shamir_reconstruct(
            &old[..2]
                .iter()
                .map(|o| (o.id(), o.secret_share().clone()))
                .collect::<Vec<_>>(),
        )
        .unwrap();

        // Grow the committee: 2-of-4 → 3-of-7, resharing from a quorum.
        let new_params = ThresholdParams::new(2, 7).unwrap();
        let new = run_reshare(&old[1..3], new_params, &mut r).unwrap();

        // Group key unchanged; every new node agrees.
        for o in &new {
            assert_eq!(o.group_key(), old[0].group_key());
        }
        // New shares reconstruct the same secret under the new threshold.
        let new_secret = shamir_reconstruct(
            &new[2..5]
                .iter()
                .map(|o| (o.id(), o.secret_share().clone()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(new_secret.ct_eq(&old_secret), "reshared secret changed");
        // Verification keys are consistent with the new shares.
        for o in &new {
            assert_eq!(
                &Point::mul_base(o.secret_share()),
                new[0].verification_key(o.id()).unwrap()
            );
        }
    }

    #[test]
    fn reshare_can_shrink_committee() {
        let mut r = rng();
        let old = run_locally(ThresholdParams::new(2, 7).unwrap(), &mut r).unwrap();
        let new_params = ThresholdParams::new(1, 4).unwrap();
        let new = run_reshare(&old[2..5], new_params, &mut r).unwrap();
        assert_eq!(new[0].group_key(), old[0].group_key());
        let old_secret = shamir_reconstruct(
            &old[..3]
                .iter()
                .map(|o| (o.id(), o.secret_share().clone()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let new_secret = shamir_reconstruct(
            &new[..2]
                .iter()
                .map(|o| (o.id(), o.secret_share().clone()))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(new_secret.ct_eq(&old_secret), "reshared secret changed");
    }

    #[test]
    fn reshare_detects_cheating_old_party() {
        let mut r = rng();
        let old = run_locally(ThresholdParams::new(1, 4).unwrap(), &mut r).unwrap();
        let new_params = ThresholdParams::new(1, 4).unwrap();
        let old_quorum: Vec<PartyId> = old[..2].iter().map(|o| o.id()).collect();
        let mut dealings: Vec<ReshareDealing> = old[..2]
            .iter()
            .map(|o| {
                reshare_deal(o.secret_share(), o.id(), &old_quorum, new_params, &mut r).unwrap()
            })
            .collect();
        // Old party 2 corrupts the sub-share it sends to new party 1.
        dealings[1].shares[0].value = dealings[1].shares[0].value.add(&Scalar::one());
        let commitments: Vec<Commitment> =
            dealings.iter().map(|d| d.commitment.clone()).collect();
        let my_shares: Vec<DealtShare> =
            dealings.iter().map(|d| d.shares[0].clone()).collect();
        let err = reshare_aggregate(
            new_params,
            PartyId(1),
            &commitments,
            &my_shares,
            old[0].group_key(),
        )
        .unwrap_err();
        assert_eq!(err, SchemeError::InvalidShare { party: 2 });
    }

    #[test]
    fn reshare_rejects_wrong_group_key() {
        let mut r = rng();
        let old = run_locally(ThresholdParams::new(1, 4).unwrap(), &mut r).unwrap();
        let new_params = ThresholdParams::new(1, 4).unwrap();
        let old_quorum: Vec<PartyId> = old[..2].iter().map(|o| o.id()).collect();
        let dealings: Vec<ReshareDealing> = old[..2]
            .iter()
            .map(|o| {
                reshare_deal(o.secret_share(), o.id(), &old_quorum, new_params, &mut r).unwrap()
            })
            .collect();
        let commitments: Vec<Commitment> =
            dealings.iter().map(|d| d.commitment.clone()).collect();
        let my_shares: Vec<DealtShare> =
            dealings.iter().map(|d| d.shares[0].clone()).collect();
        // A different expected group key is rejected.
        let wrong = Point::mul_base(&Scalar::from_u64(9));
        assert!(matches!(
            reshare_aggregate(new_params, PartyId(1), &commitments, &my_shares, &wrong),
            Err(SchemeError::KeyMismatch(_))
        ));
    }

    #[test]
    fn reshare_requires_consistent_quorum() {
        let mut r = rng();
        let old = run_locally(ThresholdParams::new(1, 4).unwrap(), &mut r).unwrap();
        let new_params = ThresholdParams::new(1, 4).unwrap();
        // Dealer not in the declared quorum.
        let bad_quorum = vec![PartyId(2), PartyId(3)];
        assert!(reshare_deal(
            old[0].secret_share(),
            old[0].id(),
            &bad_quorum,
            new_params,
            &mut r
        )
        .is_err());
    }
}
