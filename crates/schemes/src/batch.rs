//! Cross-instance batch verification.
//!
//! PR 2 batched share verification *within* one protocol instance; this
//! module batches it *across* concurrent instances. A share's validity
//! check is captured as a self-contained [`PendingCheck`] — the statement
//! plus the proof, with no borrow of the originating instance — so the
//! orchestration layer can gather checks from many in-flight requests and
//! settle them together:
//!
//! - all Ed25519 DLEQ proofs (SG02 decryption shares *and* CKS05 coin
//!   shares, each under its own Fiat–Shamir domain) fold into one
//!   multi-scalar multiplication via [`DleqProof::verify_batch_mixed`];
//! - all BN254 pairing checks (BLS04 partial signatures and BZ03
//!   decryption shares) fold into one pairing product sharing a single
//!   final exponentiation via [`theta_math::bn254::multi_pairing`],
//!   with random-linear-combination weights and per-base G1/G2 MSMs.
//!
//! On failure, [`settle_mixed`] isolates every culprit with
//! [`bisect_invalid`] so one bad share across a mixed multi-instance
//! batch never poisons an innocent instance.

use crate::common::bisect_invalid;
use crate::dleq::{DleqInstance, DleqProof};
use crate::hashing::{hash_to_fr, hash_to_key};
use std::collections::HashMap;
use theta_math::bn254::{multi_pairing, pairing_check, Fr, G1, G2};
use theta_math::ed25519::Point;
use theta_math::msm::msm;

const D_CROSS: &str = "thetacrypt/batch/cross-instance/v1";

/// One share-validity check, detached from its protocol instance.
///
/// Constructed by the schemes (`sg02::pending_check`,
/// `bls04::pending_check`, `bz03::pending_check`, `cks05::pending_check`)
/// which own the private share fields and Fiat–Shamir domains.
#[derive(Clone, Debug)]
#[allow(clippy::large_enum_variant)] // few, short-lived pool entries; boxing would put an alloc on the per-share hot path
pub enum PendingCheck {
    /// A Chaum–Pedersen DLEQ proof over Ed25519: `log_{g1} h1 = log_{g2} h2`.
    Dleq {
        /// The scheme's Fiat–Shamir domain (sg02 and cks05 differ).
        domain: &'static str,
        /// First base.
        g1: Point,
        /// First image.
        h1: Point,
        /// Second base.
        g2: Point,
        /// Second image.
        h2: Point,
        /// The proof to check.
        proof: DleqProof,
    },
    /// A BLS04 partial-signature check: `e(σ_i, P2) == e(H(m), Y_i)`.
    Bls04 {
        /// The hashed message `H(m) ∈ G1`.
        h: G1,
        /// The partial signature `σ_i ∈ G1`.
        sigma: G1,
        /// The party's verification key `Y_i ∈ G2`.
        vk: G2,
    },
    /// A BZ03 decryption-share check: `e(W, Y_i) == e(H1, δ_i)`.
    Bz03 {
        /// The ciphertext validity element `W ∈ G1`.
        w: G1,
        /// The party's verification key `Y_i ∈ G2`.
        vk: G2,
        /// The ciphertext validity base `H1(U, c_k, label) ∈ G1`.
        h1: G1,
        /// The decryption share `δ_i ∈ G2`.
        delta: G2,
    },
    /// A check already known to fail (e.g. a party id outside `n`, so no
    /// verification key exists). Kept in the batch so culprit isolation
    /// attributes the failure to the right share.
    Invalid,
}

impl PendingCheck {
    /// Verifies this check alone (no batching).
    pub fn holds(&self) -> bool {
        match self {
            PendingCheck::Dleq { domain, g1, h1, g2, h2, proof } => {
                proof.verify(domain, g1, h1, g2, h2)
            }
            PendingCheck::Bls04 { h, sigma, vk } => {
                pairing_check(sigma, &G2::generator(), h, vk)
            }
            PendingCheck::Bz03 { w, vk, h1, delta } => pairing_check(w, vk, h1, delta),
            PendingCheck::Invalid => false,
        }
    }
}

/// Verifies a mixed set of checks with one MSM (all DLEQ proofs) plus one
/// pairing product (all BLS04/BZ03 checks). Returns `true` iff *every*
/// check holds; `true` for an empty set.
pub fn batch_holds(checks: &[&PendingCheck]) -> bool {
    let mut dleq: Vec<(&str, DleqInstance<'_>)> = Vec::new();
    let mut bls04: Vec<(&G1, &G1, &G2)> = Vec::new();
    let mut bz03: Vec<(&G1, &G2, &G1, &G2)> = Vec::new();
    for check in checks {
        match check {
            PendingCheck::Dleq { domain, g1, h1, g2, h2, proof } => {
                dleq.push((domain, DleqInstance { g1, h1, g2, h2, proof }));
            }
            PendingCheck::Bls04 { h, sigma, vk } => bls04.push((h, sigma, vk)),
            PendingCheck::Bz03 { w, vk, h1, delta } => bz03.push((w, vk, h1, delta)),
            PendingCheck::Invalid => return false,
        }
    }
    DleqProof::verify_batch_mixed(&dleq) && pairing_subset_holds(&bls04, &bz03)
}

/// One pairing-product equation for all BLS04 and BZ03 checks together.
///
/// With Fiat–Shamir weights `r_j` bound to the full transcript, the
/// per-check equations combine into
///
/// ```text
/// e(−Σ r_j σ_j, P2) · Π_h e(H(m), Σ r_j Y_j)          (BLS04, grouped by hash)
///   · Π_w e(W, Σ r_j Y_j) · Π_h1 e(−H1, Σ r_j δ_j)    (BZ03, grouped by base)
///   == 1
/// ```
///
/// so `k` checks across many instances cost a handful of MSMs and one
/// Miller loop per *distinct base point* — instances decrypting the same
/// ciphertext or signing the same message share loops — with a single
/// shared final exponentiation, instead of `2k` full pairings.
fn pairing_subset_holds(bls04: &[(&G1, &G1, &G2)], bz03: &[(&G1, &G2, &G1, &G2)]) -> bool {
    match (bls04.len(), bz03.len()) {
        (0, 0) => return true,
        (1, 0) => {
            let (h, sigma, vk) = bls04[0];
            return pairing_check(sigma, &G2::generator(), h, vk);
        }
        (0, 1) => {
            let (w, vk, h1, delta) = bz03[0];
            return pairing_check(w, vk, h1, delta);
        }
        _ => {}
    }
    // Weight seed over the full transcript of both subsets.
    let mut transcript: Vec<Vec<u8>> = Vec::with_capacity(bls04.len() + bz03.len());
    for (h, sigma, vk) in bls04 {
        let mut item = Vec::with_capacity(1 + 33 + 33 + 65);
        item.push(0x01);
        item.extend_from_slice(&h.to_compressed());
        item.extend_from_slice(&sigma.to_compressed());
        item.extend_from_slice(&vk.to_compressed());
        transcript.push(item);
    }
    for (w, vk, h1, delta) in bz03 {
        let mut item = Vec::with_capacity(1 + 33 + 65 + 33 + 65);
        item.push(0x02);
        item.extend_from_slice(&w.to_compressed());
        item.extend_from_slice(&vk.to_compressed());
        item.extend_from_slice(&h1.to_compressed());
        item.extend_from_slice(&delta.to_compressed());
        transcript.push(item);
    }
    let items: Vec<&[u8]> = transcript.iter().map(|t| t.as_slice()).collect();
    let seed = hash_to_key(D_CROSS, &items);
    let weight = |idx: u64| hash_to_fr(D_CROSS, &[&seed, &idx.to_le_bytes()]);

    // Accumulators for G1-side groups keyed by the compressed base point:
    // each distinct base costs exactly one Miller loop.
    struct G2Group {
        base: G1,
        points: Vec<G2>,
        weights: Vec<Fr>,
    }
    let mut groups: Vec<G2Group> = Vec::new();
    let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
    let push = |groups: &mut Vec<G2Group>,
                    index: &mut HashMap<Vec<u8>, usize>,
                    base: &G1,
                    point: &G2,
                    w: Fr| {
        let key = base.to_compressed().to_vec();
        let gi = *index.entry(key).or_insert_with(|| {
            groups.push(G2Group { base: *base, points: Vec::new(), weights: Vec::new() });
            groups.len() - 1
        });
        groups[gi].points.push(*point);
        groups[gi].weights.push(w);
    };

    let mut idx = 0u64;
    // BLS04: e(σ_j, P2) == e(H_j, Y_j) → lhs weighted σ sum vs grouped vk sums.
    let mut sigmas: Vec<G1> = Vec::with_capacity(bls04.len());
    let mut sigma_weights: Vec<Fr> = Vec::with_capacity(bls04.len());
    for (h, sigma, vk) in bls04 {
        let r = weight(idx);
        idx += 1;
        sigmas.push(**sigma);
        sigma_weights.push(r.clone());
        push(&mut groups, &mut index, h, vk, r);
    }
    // BZ03: e(W_j, Y_j) == e(H1_j, δ_j) → both sides grouped by their G1 base,
    // with the right-hand base negated to move everything to one product.
    for (w, vk, h1, delta) in bz03 {
        let r = weight(idx);
        idx += 1;
        push(&mut groups, &mut index, w, vk, r.clone());
        push(&mut groups, &mut index, &h1.neg(), delta, r);
    }

    let mut pair_bases: Vec<G1> = Vec::with_capacity(groups.len() + 1);
    let mut pair_points: Vec<G2> = Vec::with_capacity(groups.len() + 1);
    if !sigmas.is_empty() {
        let coeffs: Vec<&theta_math::BigUint> =
            sigma_weights.iter().map(|w| w.to_biguint()).collect();
        pair_bases.push(msm(&sigmas, &coeffs).neg());
        pair_points.push(G2::generator());
    }
    for group in &groups {
        let coeffs: Vec<&theta_math::BigUint> =
            group.weights.iter().map(|w| w.to_biguint()).collect();
        pair_bases.push(group.base);
        pair_points.push(msm(&group.points, &coeffs));
    }
    let pairs: Vec<(&G1, &G2)> = pair_bases.iter().zip(pair_points.iter()).collect();
    multi_pairing(&pairs).is_one()
}

/// Settles a mixed cross-instance batch: returns one verdict per check.
///
/// The whole batch is first checked with one combined equation (the
/// common case: everything valid, one MSM + one pairing product). On
/// failure, [`bisect_invalid`] repeatedly isolates the next culprit among
/// the still-alive checks in `O(c·log k)` batch checks for `c` culprits,
/// so a single bad share never fails — or re-verifies — the innocent
/// checks around it.
pub fn settle_mixed(checks: &[&PendingCheck]) -> Vec<bool> {
    let mut verdicts = vec![true; checks.len()];
    let mut alive: Vec<usize> = (0..checks.len()).collect();
    loop {
        let subset: Vec<&PendingCheck> = alive.iter().map(|&i| checks[i]).collect();
        let check = |r: std::ops::Range<usize>| batch_holds(&subset[r]);
        match bisect_invalid(alive.len(), &check) {
            None => break,
            Some(i) => {
                verdicts[alive[i]] = false;
                alive.remove(i);
            }
        }
    }
    verdicts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::ThresholdParams;
    use crate::{bls04, bz03, cks05, sg02};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xba7c)
    }

    /// A mixed batch drawn from 4 instances across all four schemes.
    fn mixed_batch(r: &mut rand::rngs::StdRng) -> Vec<PendingCheck> {
        let params = ThresholdParams::new(1, 4).unwrap();
        let mut checks = Vec::new();
        // SG02 instance.
        let (pk, shares) = sg02::keygen(params, r);
        let ct = sg02::encrypt(&pk, b"l", b"m", r);
        for s in &shares[..3] {
            let ds = sg02::create_decryption_share(s, &ct, r).unwrap();
            checks.push(sg02::pending_check(&pk, &ct, &ds));
        }
        // CKS05 instance (same curve, different DLEQ domain).
        let (pk, shares) = cks05::keygen(params, r);
        for s in &shares[..3] {
            let cs = cks05::create_coin_share(s, b"round-1", r);
            checks.push(cks05::pending_check(&pk, b"round-1", &cs));
        }
        // BLS04 instance.
        let (pk, shares) = bls04::keygen(params, r);
        let h = bls04::hash_message(b"block").unwrap();
        for s in &shares[..3] {
            let ss = bls04::sign_share(s, b"block").unwrap();
            checks.push(bls04::pending_check_with_hash(&pk, &h, &ss));
        }
        // BZ03 instance.
        let (pk, shares) = bz03::keygen(params, r);
        let ct = bz03::encrypt(&pk, b"l", b"m", r);
        for s in &shares[..3] {
            let ds = bz03::create_decryption_share(s, &ct).unwrap();
            checks.push(bz03::pending_check(&pk, &ct, &ds));
        }
        checks
    }

    #[test]
    fn mixed_batch_all_valid() {
        let mut r = rng();
        let checks = mixed_batch(&mut r);
        let refs: Vec<&PendingCheck> = checks.iter().collect();
        assert!(batch_holds(&refs));
        assert!(settle_mixed(&refs).iter().all(|&v| v));
        assert!(batch_holds(&[]));
        assert!(settle_mixed(&[]).is_empty());
    }

    #[test]
    fn every_check_kind_verifies_alone() {
        let mut r = rng();
        for check in mixed_batch(&mut r) {
            assert!(check.holds(), "{check:?}");
            assert!(batch_holds(&[&check]));
        }
        assert!(!PendingCheck::Invalid.holds());
        assert!(!batch_holds(&[&PendingCheck::Invalid]));
    }

    /// The acceptance-criteria test: one bad share injected into a mixed
    /// multi-instance batch fails *only* that share's verdict.
    #[test]
    fn culprit_isolation_across_mixed_instances() {
        let mut r = rng();
        for bad_idx in [0usize, 5, 7, 11] {
            let mut checks = mixed_batch(&mut r);
            // Corrupt one check in place, whatever its kind.
            checks[bad_idx] = match checks[bad_idx].clone() {
                PendingCheck::Dleq { domain, g1, h1, g2, h2, proof } => PendingCheck::Dleq {
                    domain,
                    g1,
                    h1,
                    g2,
                    h2: h2.add(&Point::base()),
                    proof,
                },
                PendingCheck::Bls04 { h, sigma, vk } => {
                    PendingCheck::Bls04 { h, sigma: sigma.double(), vk }
                }
                PendingCheck::Bz03 { w, vk, h1, delta } => {
                    PendingCheck::Bz03 { w, vk, h1, delta: delta.double() }
                }
                PendingCheck::Invalid => PendingCheck::Invalid,
            };
            let refs: Vec<&PendingCheck> = checks.iter().collect();
            assert!(!batch_holds(&refs));
            let verdicts = settle_mixed(&refs);
            for (i, ok) in verdicts.iter().enumerate() {
                assert_eq!(*ok, i != bad_idx, "check {i} with culprit at {bad_idx}");
            }
        }
    }

    #[test]
    fn multiple_culprits_all_isolated() {
        let mut r = rng();
        let mut checks = mixed_batch(&mut r);
        let bad: Vec<usize> = vec![1, 6, 10];
        for &i in &bad {
            checks[i] = PendingCheck::Invalid;
        }
        let refs: Vec<&PendingCheck> = checks.iter().collect();
        let verdicts = settle_mixed(&refs);
        for (i, ok) in verdicts.iter().enumerate() {
            assert_eq!(*ok, !bad.contains(&i), "check {i}");
        }
    }

    #[test]
    fn all_invalid_batch() {
        let checks = vec![PendingCheck::Invalid; 3];
        let refs: Vec<&PendingCheck> = checks.iter().collect();
        assert!(settle_mixed(&refs).iter().all(|&v| !v));
    }

    #[test]
    fn pairing_product_groups_by_base() {
        // Two BLS04 instances signing *different* messages plus two BZ03
        // instances over *different* ciphertexts: grouping must keep the
        // bases separate (a regression guard against accidentally merging
        // distinct H(m) groups).
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, shares) = bls04::keygen(params, &mut r);
        let mut checks = Vec::new();
        for msg in [b"alpha".as_slice(), b"beta"] {
            let h = bls04::hash_message(msg).unwrap();
            for s in &shares[..2] {
                let ss = bls04::sign_share(s, msg).unwrap();
                checks.push(bls04::pending_check_with_hash(&pk, &h, &ss));
            }
        }
        let (pk, shares) = bz03::keygen(params, &mut r);
        for label in [b"x".as_slice(), b"y"] {
            let ct = bz03::encrypt(&pk, label, b"m", &mut r);
            for s in &shares[..2] {
                let ds = bz03::create_decryption_share(s, &ct).unwrap();
                checks.push(bz03::pending_check(&pk, &ct, &ds));
            }
        }
        let refs: Vec<&PendingCheck> = checks.iter().collect();
        assert!(batch_holds(&refs));
        // Swap two sigmas across messages: both individual checks break
        // even though the swapped pair would cancel in a sum that ignored
        // the per-check weights.
        let (a, b) = (0usize, 2usize);
        let (sig_a, sig_b) = match (&checks[a], &checks[b]) {
            (
                PendingCheck::Bls04 { sigma: sa, .. },
                PendingCheck::Bls04 { sigma: sb, .. },
            ) => (*sa, *sb),
            _ => unreachable!(),
        };
        if let PendingCheck::Bls04 { sigma, .. } = &mut checks[a] {
            *sigma = sig_b;
        }
        if let PendingCheck::Bls04 { sigma, .. } = &mut checks[b] {
            *sigma = sig_a;
        }
        let refs: Vec<&PendingCheck> = checks.iter().collect();
        let verdicts = settle_mixed(&refs);
        assert!(!verdicts[a] && !verdicts[b]);
        for (i, ok) in verdicts.iter().enumerate() {
            if i != a && i != b {
                assert!(*ok, "check {i}");
            }
        }
    }
}
