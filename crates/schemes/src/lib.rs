//! # theta-schemes
//!
//! The cryptographic core of the Thetacrypt reproduction (the paper's
//! *schemes module*, §3.5): six threshold schemes spanning ciphers,
//! signatures and randomness, over two curves and RSA, plus the secret
//! sharing and zero-knowledge machinery they need.
//!
//! | Scheme | Kind | Hardness | Verification |
//! |--------|------|----------|--------------|
//! | [`sg02`] | cipher | DL (Ed25519) | ZKP |
//! | [`bz03`] | cipher | GDH (BN254) | pairings |
//! | [`sh00`] | signature | RSA | ZKP |
//! | [`bls04`] | signature | GDH (BN254) | pairings |
//! | [`kg20`] | signature (FROST, 2-round) | DL (Ed25519) | ZKP |
//! | [`cks05`] | randomness | DL (Ed25519) | ZKP |
//!
//! This crate is self-contained — no networking, no orchestration — and
//! "might also be imported as a library directly by other projects"
//! (paper §3.3); the benchmark client does exactly that.

pub mod batch;
pub mod bls04;
pub mod bz03;
pub mod cks05;
pub mod common;
pub mod dkg;
pub mod dleq;
pub mod error;
pub mod hashing;
pub mod kg20;
pub mod registry;
pub mod sg02;
pub mod sh00;
pub mod wire;

pub use common::{PartyId, ThresholdParams};
pub use error::SchemeError;
pub use registry::{SchemeId, SchemeInfo, SchemeKind};
