//! Shared threshold-scheme infrastructure: parameters, party identifiers,
//! the field abstraction, Shamir secret sharing and Lagrange interpolation.

use crate::error::SchemeError;
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};

/// A 1-based party identifier; doubles as the Shamir x-coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartyId(pub u16);

impl PartyId {
    /// The numeric id (≥ 1).
    pub fn value(&self) -> u16 {
        self.0
    }
}

impl Encode for PartyId {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
}

impl Decode for PartyId {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(PartyId(u16::decode(r)?))
    }
}

/// Threshold parameters: `n` parties, reconstruction needs `t + 1` of them
/// and any `t` learn nothing (the paper's `(t+1)`-out-of-`n` convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ThresholdParams {
    t: u16,
    n: u16,
}

impl ThresholdParams {
    /// Creates parameters after validating `1 ≤ t + 1 ≤ n` and `n ≥ 1`.
    ///
    /// # Errors
    ///
    /// [`SchemeError::InvalidParameters`] when the constraint fails.
    pub fn new(t: u16, n: u16) -> Result<ThresholdParams, SchemeError> {
        if n == 0 || t >= n {
            return Err(SchemeError::InvalidParameters(format!(
                "need 0 <= t < n, got t={t}, n={n}"
            )));
        }
        Ok(ThresholdParams { t, n })
    }

    /// The usual BFT sizing `n = 3t + 1` for a given `t` (paper §4.2).
    ///
    /// # Errors
    ///
    /// Propagates [`SchemeError::InvalidParameters`] (never fails for t ≥ 0).
    pub fn bft(t: u16) -> Result<ThresholdParams, SchemeError> {
        ThresholdParams::new(t, 3 * t + 1)
    }

    /// Corruption bound `t`.
    pub fn t(&self) -> u16 {
        self.t
    }

    /// Total parties `n`.
    pub fn n(&self) -> u16 {
        self.n
    }

    /// Parties needed to reconstruct: `t + 1`.
    pub fn quorum(&self) -> u16 {
        self.t + 1
    }

    /// All party ids `1..=n`.
    pub fn parties(&self) -> impl Iterator<Item = PartyId> {
        (1..=self.n).map(PartyId)
    }
}

impl Encode for ThresholdParams {
    fn encode(&self, w: &mut Writer) {
        self.t.encode(w);
        self.n.encode(w);
    }
}

impl Decode for ThresholdParams {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let t = u16::decode(r)?;
        let n = u16::decode(r)?;
        ThresholdParams::new(t, n)
            .map_err(|e| theta_codec::CodecError::InvalidValue(e.to_string()))
    }
}

/// Minimal prime-field interface that Shamir sharing and Lagrange
/// interpolation need; implemented for both scalar fields in use.
pub trait ShareField: Clone + PartialEq + Sized {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds a small integer.
    fn from_u64(v: u64) -> Self;
    /// Field addition.
    fn add(&self, rhs: &Self) -> Self;
    /// Field subtraction.
    fn sub(&self, rhs: &Self) -> Self;
    /// Field multiplication.
    fn mul(&self, rhs: &Self) -> Self;
    /// Multiplicative inverse (`None` for zero).
    fn invert(&self) -> Option<Self>;
    /// Uniformly random element.
    fn random(rng: &mut dyn RngCore) -> Self;
}

impl ShareField for theta_math::ed25519::Scalar {
    fn zero() -> Self {
        theta_math::ed25519::Scalar::zero()
    }
    fn one() -> Self {
        theta_math::ed25519::Scalar::one()
    }
    fn from_u64(v: u64) -> Self {
        theta_math::ed25519::Scalar::from_u64(v)
    }
    fn add(&self, rhs: &Self) -> Self {
        theta_math::ed25519::Scalar::add(self, rhs)
    }
    fn sub(&self, rhs: &Self) -> Self {
        theta_math::ed25519::Scalar::sub(self, rhs)
    }
    fn mul(&self, rhs: &Self) -> Self {
        theta_math::ed25519::Scalar::mul(self, rhs)
    }
    fn invert(&self) -> Option<Self> {
        theta_math::ed25519::Scalar::invert(self)
    }
    fn random(rng: &mut dyn RngCore) -> Self {
        theta_math::ed25519::Scalar::random(rng)
    }
}

impl ShareField for theta_math::bn254::Fr {
    fn zero() -> Self {
        theta_math::bn254::Fr::zero()
    }
    fn one() -> Self {
        theta_math::bn254::Fr::one()
    }
    fn from_u64(v: u64) -> Self {
        theta_math::bn254::Fr::from_u64(v)
    }
    fn add(&self, rhs: &Self) -> Self {
        theta_math::bn254::Fr::add(self, rhs)
    }
    fn sub(&self, rhs: &Self) -> Self {
        theta_math::bn254::Fr::sub(self, rhs)
    }
    fn mul(&self, rhs: &Self) -> Self {
        theta_math::bn254::Fr::mul(self, rhs)
    }
    fn invert(&self) -> Option<Self> {
        theta_math::bn254::Fr::invert(self)
    }
    fn random(rng: &mut dyn RngCore) -> Self {
        theta_math::bn254::Fr::random(rng)
    }
}

/// Splits `secret` into `params.n()` Shamir shares with threshold
/// `params.t()` (degree-`t` polynomial; any `t+1` shares reconstruct).
///
/// Returns shares in party order `1..=n`.
pub fn shamir_share<F: ShareField>(
    secret: &F,
    params: ThresholdParams,
    rng: &mut dyn RngCore,
) -> Vec<(PartyId, F)> {
    // f(X) = secret + a1 X + ... + at X^t
    let coeffs: Vec<F> = std::iter::once(secret.clone())
        .chain((0..params.t()).map(|_| F::random(rng)))
        .collect();
    params
        .parties()
        .map(|id| {
            let x = F::from_u64(id.value() as u64);
            // Horner evaluation.
            let mut acc = F::zero();
            for c in coeffs.iter().rev() {
                acc = acc.mul(&x).add(c);
            }
            (id, acc)
        })
        .collect()
}

/// Lagrange coefficient λ_i(0) for interpolation at zero over the party
/// set `ids` (which must contain `i` and hold pairwise-distinct ids).
///
/// # Errors
///
/// [`SchemeError::InvalidShareSet`] when `i ∉ ids` or ids collide.
pub fn lagrange_at_zero<F: ShareField>(i: PartyId, ids: &[PartyId]) -> Result<F, SchemeError> {
    if !ids.contains(&i) {
        return Err(SchemeError::InvalidShareSet(format!(
            "party {} not in interpolation set",
            i.value()
        )));
    }
    let mut seen = std::collections::HashSet::with_capacity(ids.len());
    for id in ids {
        if !seen.insert(id.value()) {
            return Err(SchemeError::InvalidShareSet("duplicate party id".into()));
        }
    }
    let xi = F::from_u64(i.value() as u64);
    let mut num = F::one();
    let mut den = F::one();
    for &j in ids {
        if j == i {
            continue;
        }
        let xj = F::from_u64(j.value() as u64);
        num = num.mul(&xj);
        den = den.mul(&xj.sub(&xi));
    }
    let den_inv = den
        .invert()
        .ok_or_else(|| SchemeError::InvalidShareSet("duplicate party id".into()))?;
    Ok(num.mul(&den_inv))
}

/// All Lagrange coefficients λ_i(0) for the party set `ids`, in input
/// order, with a **single** field inversion (Montgomery's batch-inversion
/// trick) instead of one per party.
///
/// Computes, for each `i`, `num_i = Π_{j≠i} x_j` and
/// `den_i = Π_{j≠i} (x_j − x_i)`, inverts all `den_i` at once via the
/// prefix-product walk, and returns `num_i · den_i⁻¹`.
///
/// # Errors
///
/// [`SchemeError::InvalidShareSet`] on duplicate or colliding ids.
pub fn lagrange_coeffs_at_zero<F: ShareField>(ids: &[PartyId]) -> Result<Vec<F>, SchemeError> {
    let mut seen = std::collections::HashSet::with_capacity(ids.len());
    for id in ids {
        if !seen.insert(id.value()) {
            return Err(SchemeError::InvalidShareSet("duplicate party id".into()));
        }
    }
    let k = ids.len();
    let xs: Vec<F> = ids.iter().map(|id| F::from_u64(id.value() as u64)).collect();
    let mut nums = Vec::with_capacity(k);
    let mut dens = Vec::with_capacity(k);
    for i in 0..k {
        let mut num = F::one();
        let mut den = F::one();
        for j in 0..k {
            if j == i {
                continue;
            }
            num = num.mul(&xs[j]);
            den = den.mul(&xs[j].sub(&xs[i]));
        }
        nums.push(num);
        dens.push(den);
    }
    // Batch inversion: prefix[i] = den_0 · … · den_i, invert the total
    // product once, then peel inverses off from the back.
    let mut prefix = Vec::with_capacity(k);
    let mut acc = F::one();
    for den in &dens {
        acc = acc.mul(den);
        prefix.push(acc.clone());
    }
    let mut inv_acc = prefix
        .last()
        .cloned()
        .unwrap_or_else(F::one)
        .invert()
        .ok_or_else(|| SchemeError::InvalidShareSet("colliding party ids".into()))?;
    let mut inverses = vec![F::zero(); k];
    for i in (0..k).rev() {
        if i == 0 {
            inverses[0] = inv_acc.clone();
        } else {
            inverses[i] = inv_acc.mul(&prefix[i - 1]);
            inv_acc = inv_acc.mul(&dens[i]);
        }
    }
    Ok((0..k).map(|i| nums[i].mul(&inverses[i])).collect())
}

/// Locates the first failing element behind a batch predicate by
/// bisection: `check` is called on index ranges and must return `true`
/// iff every element in the range is valid.
///
/// When the batch check over `0..len` passes this returns `None` after a
/// single call; otherwise it recurses into whichever half fails, costing
/// `O(log len)` batch checks instead of `len` individual ones. Used by the
/// schemes' batched share verification to keep the "which party cheated?"
/// error precise without giving up the batching speedup.
pub fn bisect_invalid<C>(len: usize, check: &C) -> Option<usize>
where
    C: Fn(std::ops::Range<usize>) -> bool,
{
    fn go<C: Fn(std::ops::Range<usize>) -> bool>(
        range: std::ops::Range<usize>,
        check: &C,
    ) -> Option<usize> {
        if check(range.clone()) {
            return None;
        }
        if range.len() == 1 {
            return Some(range.start);
        }
        let mid = range.start + range.len() / 2;
        go(range.start..mid, check).or_else(|| go(mid..range.end, check))
    }
    if len == 0 {
        return None;
    }
    go(0..len, check)
}

/// Reconstructs the secret (the polynomial at zero) from `t+1` or more
/// shares.
///
/// # Errors
///
/// [`SchemeError::InvalidShareSet`] on duplicate ids.
pub fn shamir_reconstruct<F: ShareField>(shares: &[(PartyId, F)]) -> Result<F, SchemeError> {
    let ids: Vec<PartyId> = shares.iter().map(|(id, _)| *id).collect();
    let lambdas = lagrange_coeffs_at_zero::<F>(&ids)?;
    let mut acc = F::zero();
    for ((_, share), lambda) in shares.iter().zip(&lambdas) {
        acc = acc.add(&lambda.mul(share));
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use theta_math::ed25519::Scalar;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x5a5a)
    }

    #[test]
    fn params_validation() {
        assert!(ThresholdParams::new(0, 1).is_ok());
        assert!(ThresholdParams::new(1, 4).is_ok());
        assert!(ThresholdParams::new(4, 4).is_err());
        assert!(ThresholdParams::new(0, 0).is_err());
        let p = ThresholdParams::bft(2).unwrap();
        assert_eq!(p.n(), 7);
        assert_eq!(p.quorum(), 3);
    }

    #[test]
    fn params_codec_roundtrip() {
        let p = ThresholdParams::new(3, 10).unwrap();
        assert_eq!(ThresholdParams::decoded(&p.encoded()).unwrap(), p);
        // Invalid params rejected at decode.
        let bad = {
            let mut w = Writer::new();
            5u16.encode(&mut w);
            3u16.encode(&mut w);
            w.into_bytes()
        };
        assert!(ThresholdParams::decoded(&bad).is_err());
    }

    #[test]
    fn share_and_reconstruct_exact_quorum() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let secret = Scalar::random(&mut r);
        let shares = shamir_share(&secret, params, &mut r);
        assert_eq!(shares.len(), 7);
        // Any 3 shares reconstruct.
        let subset = &shares[2..5];
        assert_eq!(shamir_reconstruct(subset).unwrap(), secret);
        // All shares reconstruct too.
        assert_eq!(shamir_reconstruct(&shares).unwrap(), secret);
    }

    #[test]
    fn insufficient_shares_give_wrong_secret() {
        let mut r = rng();
        let params = ThresholdParams::new(3, 7).unwrap();
        let secret = Scalar::random(&mut r);
        let shares = shamir_share(&secret, params, &mut r);
        // With only t shares the interpolation is (overwhelmingly) wrong.
        let subset = &shares[0..3];
        assert_ne!(shamir_reconstruct(subset).unwrap(), secret);
    }

    #[test]
    fn any_quorum_matches() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 5).unwrap();
        let secret = Scalar::random(&mut r);
        let shares = shamir_share(&secret, params, &mut r);
        for a in 0..5 {
            for b in (a + 1)..5 {
                let subset = vec![shares[a].clone(), shares[b].clone()];
                assert_eq!(shamir_reconstruct(&subset).unwrap(), secret);
            }
        }
    }

    #[test]
    fn t_zero_shares_are_secret() {
        let mut r = rng();
        let params = ThresholdParams::new(0, 3).unwrap();
        let secret = Scalar::random(&mut r);
        let shares = shamir_share(&secret, params, &mut r);
        for (_, s) in shares {
            assert_eq!(s, secret);
        }
    }

    #[test]
    fn lagrange_partition_of_unity() {
        // Σ λ_i(0)·i interpolates f(X) = X at 0, i.e. equals 0;
        // Σ λ_i(0) interpolates f(X) = 1, i.e. equals 1.
        let ids: Vec<PartyId> = [1u16, 3, 4, 7].iter().map(|&v| PartyId(v)).collect();
        let mut sum = Scalar::zero();
        let mut weighted = Scalar::zero();
        for &i in &ids {
            let l = lagrange_at_zero::<Scalar>(i, &ids).unwrap();
            sum = sum.add(&l);
            weighted = weighted.add(&l.mul(&Scalar::from_u64(i.value() as u64)));
        }
        assert_eq!(sum, Scalar::one());
        assert_eq!(weighted, Scalar::zero());
    }

    #[test]
    fn batch_coeffs_match_per_party() {
        let ids: Vec<PartyId> = [2u16, 5, 6, 9, 11].iter().map(|&v| PartyId(v)).collect();
        let batch = lagrange_coeffs_at_zero::<Scalar>(&ids).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(batch[i], lagrange_at_zero::<Scalar>(id, &ids).unwrap());
        }
        use theta_math::bn254::Fr;
        let batch = lagrange_coeffs_at_zero::<Fr>(&ids).unwrap();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(batch[i], lagrange_at_zero::<Fr>(id, &ids).unwrap());
        }
    }

    #[test]
    fn bisect_finds_single_bad_index() {
        for bad in 0..7usize {
            let check = |r: std::ops::Range<usize>| !r.contains(&bad);
            assert_eq!(bisect_invalid(7, &check), Some(bad));
        }
        assert_eq!(bisect_invalid(7, &|_| true), None);
        assert_eq!(bisect_invalid(0, &|_| false), None);
    }

    #[test]
    fn bisect_finds_first_of_several() {
        let bad = [2usize, 5];
        let check = |r: std::ops::Range<usize>| bad.iter().all(|b| !r.contains(b));
        assert_eq!(bisect_invalid(8, &check), Some(2));
    }

    #[test]
    fn bisect_degenerate_batch_of_one() {
        assert_eq!(bisect_invalid(1, &|_| true), None);
        assert_eq!(bisect_invalid(1, &|r: std::ops::Range<usize>| r.is_empty()), Some(0));
    }

    #[test]
    fn bisect_all_invalid_batch_returns_first() {
        // Every non-empty range fails: the first culprit is index 0, and
        // repeatedly removing it walks the whole batch.
        for len in [1usize, 2, 3, 8, 9] {
            let check = |r: std::ops::Range<usize>| r.is_empty();
            assert_eq!(bisect_invalid(len, &check), Some(0), "len {len}");
        }
    }

    #[test]
    fn bisect_culprit_at_both_boundaries() {
        // Invalid share at the very first and very last position, for
        // even and odd lengths (the halving boundary cases).
        for len in [2usize, 5, 8, 13] {
            for bad in [0, len - 1] {
                let check = |r: std::ops::Range<usize>| !r.contains(&bad);
                assert_eq!(bisect_invalid(len, &check), Some(bad), "len {len} bad {bad}");
            }
        }
    }

    #[test]
    fn batch_coeffs_reject_duplicates() {
        let ids = vec![PartyId(1), PartyId(2), PartyId(1)];
        assert!(lagrange_coeffs_at_zero::<Scalar>(&ids).is_err());
        assert!(lagrange_coeffs_at_zero::<Scalar>(&[]).unwrap().is_empty());
    }

    #[test]
    fn lagrange_rejects_foreign_party() {
        let ids = vec![PartyId(1), PartyId(2)];
        assert!(lagrange_at_zero::<Scalar>(PartyId(9), &ids).is_err());
    }

    #[test]
    fn reconstruct_rejects_duplicates() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 3).unwrap();
        let shares = shamir_share(&Scalar::random(&mut r), params, &mut r);
        let dup = vec![shares[0].clone(), shares[0].clone()];
        assert!(shamir_reconstruct(&dup).is_err());
    }

    #[test]
    fn works_over_bn254_fr_too() {
        use theta_math::bn254::Fr;
        let mut r = rng();
        let params = ThresholdParams::new(2, 5).unwrap();
        let secret = Fr::random(&mut r);
        let shares = shamir_share(&secret, params, &mut r);
        assert_eq!(shamir_reconstruct(&shares[1..4]).unwrap(), secret);
    }
}
