//! Wire-format helpers for the math types (points, scalars, big integers).
//!
//! `theta-codec` and `theta-math` are independent crates, so the codec
//! traits cannot be implemented on the math types directly; these free
//! functions provide the canonical encodings instead.

use theta_codec::{CodecError, Decode, Encode, Reader, Result, Writer};
use theta_math::bn254::{Fr, G1, G2};
use theta_math::ed25519::{Point, Scalar};
use theta_math::BigUint;

/// Appends a compressed Ed25519 point (32 bytes).
pub fn put_point(w: &mut Writer, p: &Point) {
    p.compress().encode(w);
}

/// Reads a compressed Ed25519 point, enforcing prime-subgroup membership.
///
/// # Errors
///
/// [`CodecError::InvalidValue`] on off-curve or small-order encodings.
pub fn get_point(r: &mut Reader) -> Result<Point> {
    let bytes = <[u8; 32]>::decode(r)?;
    let p = Point::decompress(&bytes)
        .ok_or_else(|| CodecError::InvalidValue("not an ed25519 point".into()))?;
    if !p.is_in_prime_subgroup() {
        return Err(CodecError::InvalidValue("point outside prime subgroup".into()));
    }
    Ok(p)
}

/// Appends an Ed25519 scalar (32 bytes, little-endian).
pub fn put_scalar(w: &mut Writer, s: &Scalar) {
    s.to_bytes().encode(w);
}

/// Reads an Ed25519 scalar, rejecting non-canonical encodings.
///
/// # Errors
///
/// [`CodecError::InvalidValue`] when the value is ≥ ℓ.
pub fn get_scalar(r: &mut Reader) -> Result<Scalar> {
    let bytes = <[u8; 32]>::decode(r)?;
    let raw = BigUint::from_bytes_le(&bytes);
    if &raw >= Scalar::order_biguint() {
        return Err(CodecError::InvalidValue("non-canonical scalar".into()));
    }
    Ok(Scalar::from_bytes(&bytes))
}

/// Appends a compressed BN254 G1 point (33 bytes).
pub fn put_g1(w: &mut Writer, p: &G1) {
    p.to_compressed().encode(w);
}

/// Reads a compressed BN254 G1 point.
///
/// # Errors
///
/// [`CodecError::InvalidValue`] for invalid encodings.
pub fn get_g1(r: &mut Reader) -> Result<G1> {
    let bytes = <[u8; 33]>::decode(r)?;
    G1::from_compressed(&bytes)
        .ok_or_else(|| CodecError::InvalidValue("not a bn254 G1 point".into()))
}

/// Appends a compressed BN254 G2 point (65 bytes).
pub fn put_g2(w: &mut Writer, p: &G2) {
    p.to_compressed().encode(w);
}

/// Reads a compressed BN254 G2 point (includes the subgroup check).
///
/// # Errors
///
/// [`CodecError::InvalidValue`] for invalid or off-subgroup encodings.
pub fn get_g2(r: &mut Reader) -> Result<G2> {
    let bytes = <[u8; 65]>::decode(r)?;
    G2::from_compressed(&bytes)
        .ok_or_else(|| CodecError::InvalidValue("not a bn254 G2 point".into()))
}

/// Appends a BN254 scalar (32 bytes, little-endian).
pub fn put_fr(w: &mut Writer, s: &Fr) {
    s.to_bytes().encode(w);
}

/// Reads a BN254 scalar, rejecting non-canonical encodings.
///
/// # Errors
///
/// [`CodecError::InvalidValue`] when the value is ≥ r.
pub fn get_fr(r: &mut Reader) -> Result<Fr> {
    let bytes = <[u8; 32]>::decode(r)?;
    let raw = BigUint::from_bytes_le(&bytes);
    if &raw >= Fr::modulus() {
        return Err(CodecError::InvalidValue("non-canonical Fr scalar".into()));
    }
    Ok(Fr::from_bytes(&bytes))
}

/// Appends an arbitrary-precision unsigned integer (length-prefixed,
/// big-endian, canonical: no leading zero bytes).
pub fn put_biguint(w: &mut Writer, v: &BigUint) {
    w.put_bytes(&v.to_bytes_be());
}

/// Reads a [`BigUint`], rejecting non-canonical (zero-padded) encodings.
///
/// # Errors
///
/// [`CodecError::InvalidValue`] on a leading zero byte.
pub fn get_biguint(r: &mut Reader) -> Result<BigUint> {
    let bytes = r.take_bytes()?;
    if bytes.first() == Some(&0) {
        return Err(CodecError::InvalidValue("non-canonical biguint".into()));
    }
    Ok(BigUint::from_bytes_be(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x111e)
    }

    #[test]
    fn point_roundtrip() {
        let mut r = rng();
        let p = Point::mul_base(&Scalar::random(&mut r));
        let mut w = Writer::new();
        put_point(&mut w, &p);
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert_eq!(get_point(&mut rd).unwrap(), p);
    }

    #[test]
    fn point_rejects_garbage() {
        let mut w = Writer::new();
        [0xffu8; 32].encode(&mut w);
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert!(get_point(&mut rd).is_err());
    }

    #[test]
    fn scalar_rejects_noncanonical() {
        // ℓ itself (little-endian) is non-canonical.
        let l = Scalar::order_biguint();
        let mut bytes = [0u8; 32];
        let le = l.to_bytes_le();
        bytes[..le.len()].copy_from_slice(&le);
        let mut w = Writer::new();
        bytes.encode(&mut w);
        let buf = w.into_bytes();
        let mut rd = Reader::new(&buf);
        assert!(get_scalar(&mut rd).is_err());
    }

    #[test]
    fn g1_g2_roundtrip() {
        let mut r = rng();
        let fr = Fr::random(&mut r);
        let p1 = G1::mul_generator(&fr);
        let p2 = G2::mul_generator(&fr);
        let mut w = Writer::new();
        put_g1(&mut w, &p1);
        put_g2(&mut w, &p2);
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert_eq!(get_g1(&mut rd).unwrap(), p1);
        assert_eq!(get_g2(&mut rd).unwrap(), p2);
        assert!(rd.is_at_end());
    }

    #[test]
    fn fr_roundtrip_and_reject() {
        let mut r = rng();
        let s = Fr::random(&mut r);
        let mut w = Writer::new();
        put_fr(&mut w, &s);
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert_eq!(get_fr(&mut rd).unwrap(), s);

        let m = Fr::modulus();
        let mut enc = [0u8; 32];
        let le = m.to_bytes_le();
        enc[..le.len()].copy_from_slice(&le);
        let mut w = Writer::new();
        enc.encode(&mut w);
        let buf = w.into_bytes();
        let mut rd = Reader::new(&buf);
        assert!(get_fr(&mut rd).is_err());
    }

    #[test]
    fn biguint_roundtrip_and_canonical() {
        let v = BigUint::from_dec("123456789012345678901234567890").unwrap();
        let mut w = Writer::new();
        put_biguint(&mut w, &v);
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert_eq!(get_biguint(&mut rd).unwrap(), v);

        // Leading zero rejected.
        let mut w = Writer::new();
        w.put_bytes(&[0, 1]);
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert!(get_biguint(&mut rd).is_err());

        // Zero encodes as empty.
        let mut w = Writer::new();
        put_biguint(&mut w, &BigUint::zero());
        let bytes = w.into_bytes();
        let mut rd = Reader::new(&bytes);
        assert!(get_biguint(&mut rd).unwrap().is_zero());
    }
}
