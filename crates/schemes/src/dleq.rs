//! Chaum–Pedersen proofs of discrete-log equality over Ed25519.
//!
//! This is the "ZKP" verification strategy of Table 1: SG02 decryption
//! shares and CKS05 coin shares each carry a DLEQ proof that the share
//! was computed with the party's committed key share.
//!
//! Proofs carry the Schnorr commitments `(w1, w2)` rather than the
//! challenge, so a verifier can check many proofs at once: a random
//! linear combination of the per-proof equations collapses into a single
//! multi-scalar multiplication (see [`DleqProof::verify_batch`]).

use crate::hashing::hash_to_ed25519_scalar;
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::ed25519::{Point, Scalar};
use theta_math::msm;

/// A non-interactive DLEQ proof: knowledge of `x` with `h1 = g1^x` and
/// `h2 = g2^x` (Fiat–Shamir over the given domain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DleqProof {
    w1: Point,
    w2: Point,
    response: Scalar,
}

/// One `(statement, proof)` pair for batch verification.
#[derive(Clone, Copy)]
pub struct DleqInstance<'a> {
    /// First base.
    pub g1: &'a Point,
    /// First image `g1^x`.
    pub h1: &'a Point,
    /// Second base.
    pub g2: &'a Point,
    /// Second image `g2^x`.
    pub h2: &'a Point,
    /// The proof to check against the statement.
    pub proof: &'a DleqProof,
}

impl DleqProof {
    /// Proves `log_{g1}(h1) = log_{g2}(h2) = x`.
    pub fn prove(
        domain: &str,
        g1: &Point,
        h1: &Point,
        g2: &Point,
        h2: &Point,
        x: &Scalar,
        rng: &mut dyn RngCore,
    ) -> DleqProof {
        let s = Scalar::random(rng);
        let w1 = g1.mul(&s);
        let w2 = g2.mul(&s);
        let challenge = Self::challenge(domain, g1, h1, g2, h2, &w1, &w2);
        let response = s.add(&x.mul(&challenge));
        DleqProof { w1, w2, response }
    }

    /// Verifies the proof against the same statement.
    ///
    /// Each equation `g^z = w · h^e` is rearranged to
    /// `g^z · h^{−e} == w` and evaluated as a 2-point Straus MSM, so the
    /// two scalar multiplications share one doubling chain.
    pub fn verify(&self, domain: &str, g1: &Point, h1: &Point, g2: &Point, h2: &Point) -> bool {
        let e = Self::challenge(domain, g1, h1, g2, h2, &self.w1, &self.w2);
        let z = self.response.to_biguint();
        let neg_e = e.neg();
        let lhs1 = msm::msm(&[*g1, *h1], &[z, neg_e.to_biguint()]);
        if lhs1 != self.w1 {
            return false;
        }
        let lhs2 = msm::msm(&[*g2, *h2], &[z, neg_e.to_biguint()]);
        lhs2 == self.w2
    }

    /// Verifies `k` proofs with one `6k`-point multi-scalar multiplication.
    ///
    /// Uses a random linear combination: with per-instance weights
    /// `r_i, s_i` (derived by Fiat–Shamir from the whole batch, so a
    /// malicious prover cannot anticipate them),
    ///
    /// ```text
    /// Σ_i  r_i·(z_i·g1_i − e_i·h1_i − w1_i)
    ///    + s_i·(z_i·g2_i − e_i·h2_i − w2_i)  ==  𝒪
    /// ```
    ///
    /// holds iff every individual proof verifies, except with probability
    /// ≈ 2⁻¹²⁸ over the weights. Returns `true` for an empty batch.
    pub fn verify_batch(domain: &str, instances: &[DleqInstance<'_>]) -> bool {
        match instances.len() {
            0 => return true,
            1 => {
                let i = &instances[0];
                return i.proof.verify(domain, i.g1, i.h1, i.g2, i.h2);
            }
            _ => {}
        }
        // Per-instance challenges, then batch weights bound to the full
        // transcript (every statement and every commitment).
        let challenges: Vec<Scalar> = instances
            .iter()
            .map(|i| {
                Self::challenge(domain, i.g1, i.h1, i.g2, i.h2, &i.proof.w1, &i.proof.w2)
            })
            .collect();
        let transcript: Vec<[u8; 32]> = instances
            .iter()
            .flat_map(|i| {
                [
                    i.g1.compress(),
                    i.h1.compress(),
                    i.g2.compress(),
                    i.h2.compress(),
                    i.proof.w1.compress(),
                    i.proof.w2.compress(),
                ]
            })
            .collect();
        let items: Vec<&[u8]> = transcript.iter().map(|t| t.as_slice()).collect();
        let seed = crate::hashing::hash_to_key(&format!("{domain}/batch-seed"), &items);
        let mut points = Vec::with_capacity(instances.len() * 6);
        let mut scalars = Vec::with_capacity(instances.len() * 6);
        for (idx, (inst, e)) in instances.iter().zip(&challenges).enumerate() {
            let idx_bytes = (idx as u64).to_le_bytes();
            let r =
                hash_to_ed25519_scalar(&format!("{domain}/batch-r"), &[&seed, &idx_bytes]);
            let s =
                hash_to_ed25519_scalar(&format!("{domain}/batch-s"), &[&seed, &idx_bytes]);
            let z = &inst.proof.response;
            // r_i·z_i · g1 − r_i·e_i · h1 − r_i · w1
            points.push(*inst.g1);
            scalars.push(r.mul(z));
            points.push(*inst.h1);
            scalars.push(r.mul(e).neg());
            points.push(inst.proof.w1);
            scalars.push(r.neg());
            // s_i·z_i · g2 − s_i·e_i · h2 − s_i · w2
            points.push(*inst.g2);
            scalars.push(s.mul(z));
            points.push(*inst.h2);
            scalars.push(s.mul(e).neg());
            points.push(inst.proof.w2);
            scalars.push(s.neg());
        }
        let scalar_refs: Vec<&theta_math::BigUint> =
            scalars.iter().map(|s| s.to_biguint()).collect();
        msm::msm(&points, &scalar_refs).is_identity()
    }

    /// Like [`DleqProof::verify_batch`], but every instance carries its
    /// own Fiat–Shamir domain, so proofs from *different schemes* (SG02
    /// decryption shares and CKS05 coin shares) fold into the same
    /// multi-scalar multiplication. The per-instance challenge is always
    /// derived with the instance's own domain — exactly the scalar an
    /// individual [`DleqProof::verify`] would use — while the batch
    /// weights are bound to a mixed-batch domain plus the full transcript
    /// (domains, statements and commitments of every instance).
    pub fn verify_batch_mixed(instances: &[(&str, DleqInstance<'_>)]) -> bool {
        match instances.len() {
            0 => return true,
            1 => {
                let (domain, i) = &instances[0];
                return i.proof.verify(domain, i.g1, i.h1, i.g2, i.h2);
            }
            _ => {}
        }
        const D_MIXED: &str = "thetacrypt/dleq/mixed-batch/v1";
        let challenges: Vec<Scalar> = instances
            .iter()
            .map(|(domain, i)| {
                Self::challenge(domain, i.g1, i.h1, i.g2, i.h2, &i.proof.w1, &i.proof.w2)
            })
            .collect();
        // Transcript: per instance, the domain (length-prefixed via its
        // own item slot) then the six compressed points.
        let compressed: Vec<[u8; 32]> = instances
            .iter()
            .flat_map(|(_, i)| {
                [
                    i.g1.compress(),
                    i.h1.compress(),
                    i.g2.compress(),
                    i.h2.compress(),
                    i.proof.w1.compress(),
                    i.proof.w2.compress(),
                ]
            })
            .collect();
        let mut items: Vec<&[u8]> = Vec::with_capacity(instances.len() * 7);
        for (idx, (domain, _)) in instances.iter().enumerate() {
            items.push(domain.as_bytes());
            items.extend(compressed[idx * 6..idx * 6 + 6].iter().map(|c| c.as_slice()));
        }
        let seed = crate::hashing::hash_to_key(&format!("{D_MIXED}/batch-seed"), &items);
        let mut points = Vec::with_capacity(instances.len() * 6);
        let mut scalars = Vec::with_capacity(instances.len() * 6);
        for (idx, ((_, inst), e)) in instances.iter().zip(&challenges).enumerate() {
            let idx_bytes = (idx as u64).to_le_bytes();
            let r =
                hash_to_ed25519_scalar(&format!("{D_MIXED}/batch-r"), &[&seed, &idx_bytes]);
            let s =
                hash_to_ed25519_scalar(&format!("{D_MIXED}/batch-s"), &[&seed, &idx_bytes]);
            let z = &inst.proof.response;
            points.push(*inst.g1);
            scalars.push(r.mul(z));
            points.push(*inst.h1);
            scalars.push(r.mul(e).neg());
            points.push(inst.proof.w1);
            scalars.push(r.neg());
            points.push(*inst.g2);
            scalars.push(s.mul(z));
            points.push(*inst.h2);
            scalars.push(s.mul(e).neg());
            points.push(inst.proof.w2);
            scalars.push(s.neg());
        }
        let scalar_refs: Vec<&theta_math::BigUint> =
            scalars.iter().map(|s| s.to_biguint()).collect();
        msm::msm(&points, &scalar_refs).is_identity()
    }

    fn challenge(
        domain: &str,
        g1: &Point,
        h1: &Point,
        g2: &Point,
        h2: &Point,
        w1: &Point,
        w2: &Point,
    ) -> Scalar {
        hash_to_ed25519_scalar(
            domain,
            &[
                &g1.compress(),
                &h1.compress(),
                &g2.compress(),
                &h2.compress(),
                &w1.compress(),
                &w2.compress(),
            ],
        )
    }
}

impl Encode for DleqProof {
    fn encode(&self, w: &mut Writer) {
        crate::wire::put_point(w, &self.w1);
        crate::wire::put_point(w, &self.w2);
        crate::wire::put_scalar(w, &self.response);
    }
}

impl Decode for DleqProof {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(DleqProof {
            w1: crate::wire::get_point(r)?,
            w2: crate::wire::get_point(r)?,
            response: crate::wire::get_scalar(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xd1e9)
    }

    fn statement(r: &mut impl RngCore) -> (Point, Point, Point, Point, Scalar) {
        let x = Scalar::random(r);
        let g1 = Point::base();
        let g2 = Point::mul_base(&Scalar::random(r));
        let h1 = g1.mul(&x);
        let h2 = g2.mul(&x);
        (g1, h1, g2, h2, x)
    }

    #[test]
    fn honest_proof_verifies() {
        let mut r = rng();
        for _ in 0..5 {
            let (g1, h1, g2, h2, x) = statement(&mut r);
            let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
            assert!(proof.verify("test/dleq", &g1, &h1, &g2, &h2));
        }
    }

    #[test]
    fn unequal_logs_rejected() {
        let mut r = rng();
        let (g1, h1, g2, _, x) = statement(&mut r);
        // h2 with a different exponent: the prover cannot produce a valid
        // proof for a false statement.
        let h2_bad = g2.mul(&x.add(&Scalar::one()));
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2_bad, &x, &mut r);
        assert!(!proof.verify("test/dleq", &g1, &h1, &g2, &h2_bad));
    }

    #[test]
    fn wrong_domain_rejected() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("domain-a", &g1, &h1, &g2, &h2, &x, &mut r);
        assert!(!proof.verify("domain-b", &g1, &h1, &g2, &h2));
    }

    #[test]
    fn tampered_statement_rejected() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
        let other = Point::mul_base(&Scalar::random(&mut r));
        assert!(!proof.verify("test/dleq", &g1, &other, &g2, &h2));
        assert!(!proof.verify("test/dleq", &g1, &h1, &g2, &other));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
        let bad = DleqProof {
            w1: proof.w1.add(&Point::base()),
            w2: proof.w2,
            response: proof.response.clone(),
        };
        assert!(!bad.verify("test/dleq", &g1, &h1, &g2, &h2));
        let bad = DleqProof {
            w1: proof.w1,
            w2: proof.w2.add(&Point::base()),
            response: proof.response.clone(),
        };
        assert!(!bad.verify("test/dleq", &g1, &h1, &g2, &h2));
        let bad = DleqProof {
            w1: proof.w1,
            w2: proof.w2,
            response: proof.response.add(&Scalar::one()),
        };
        assert!(!bad.verify("test/dleq", &g1, &h1, &g2, &h2));
    }

    #[test]
    fn codec_roundtrip() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
        let decoded = DleqProof::decoded(&proof.encoded()).unwrap();
        assert_eq!(decoded, proof);
        assert!(decoded.verify("test/dleq", &g1, &h1, &g2, &h2));
    }

    #[test]
    fn batch_accepts_all_valid() {
        let mut r = rng();
        let stmts: Vec<_> = (0..6).map(|_| statement(&mut r)).collect();
        let proofs: Vec<DleqProof> = stmts
            .iter()
            .map(|(g1, h1, g2, h2, x)| {
                DleqProof::prove("test/dleq", g1, h1, g2, h2, x, &mut r)
            })
            .collect();
        let instances: Vec<DleqInstance<'_>> = stmts
            .iter()
            .zip(&proofs)
            .map(|((g1, h1, g2, h2, _), proof)| DleqInstance { g1, h1, g2, h2, proof })
            .collect();
        assert!(DleqProof::verify_batch("test/dleq", &instances));
        assert!(DleqProof::verify_batch("test/dleq", &instances[..1]));
        assert!(DleqProof::verify_batch("test/dleq", &[]));
    }

    #[test]
    fn batch_rejects_single_bad_proof() {
        let mut r = rng();
        let stmts: Vec<_> = (0..5).map(|_| statement(&mut r)).collect();
        let mut proofs: Vec<DleqProof> = stmts
            .iter()
            .map(|(g1, h1, g2, h2, x)| {
                DleqProof::prove("test/dleq", g1, h1, g2, h2, x, &mut r)
            })
            .collect();
        proofs[3].response = proofs[3].response.add(&Scalar::one());
        let instances: Vec<DleqInstance<'_>> = stmts
            .iter()
            .zip(&proofs)
            .map(|((g1, h1, g2, h2, _), proof)| DleqInstance { g1, h1, g2, h2, proof })
            .collect();
        assert!(!DleqProof::verify_batch("test/dleq", &instances));
        // The other four instances still pass on their own.
        assert!(DleqProof::verify_batch("test/dleq", &instances[..3]));
    }

    #[test]
    fn mixed_batch_accepts_proofs_from_different_domains() {
        let mut r = rng();
        let domains = ["domain-a", "domain-b", "domain-a", "domain-c"];
        let stmts: Vec<_> = (0..domains.len()).map(|_| statement(&mut r)).collect();
        let proofs: Vec<DleqProof> = stmts
            .iter()
            .zip(&domains)
            .map(|((g1, h1, g2, h2, x), d)| DleqProof::prove(d, g1, h1, g2, h2, x, &mut r))
            .collect();
        let instances: Vec<(&str, DleqInstance<'_>)> = stmts
            .iter()
            .zip(&proofs)
            .zip(&domains)
            .map(|(((g1, h1, g2, h2, _), proof), d)| {
                (*d, DleqInstance { g1, h1, g2, h2, proof })
            })
            .collect();
        assert!(DleqProof::verify_batch_mixed(&instances));
        assert!(DleqProof::verify_batch_mixed(&instances[..1]));
        assert!(DleqProof::verify_batch_mixed(&[]));
        // The plain batch over a uniform domain agrees with the mixed one.
        let uniform: Vec<(&str, DleqInstance<'_>)> =
            instances.iter().map(|(_, i)| ("domain-a", *i)).collect();
        assert_eq!(
            DleqProof::verify_batch_mixed(&uniform),
            DleqProof::verify_batch(
                "domain-a",
                &uniform.iter().map(|(_, i)| *i).collect::<Vec<_>>()
            ),
        );
    }

    #[test]
    fn mixed_batch_rejects_one_bad_proof_and_swapped_domains() {
        let mut r = rng();
        let domains = ["domain-a", "domain-b", "domain-c"];
        let stmts: Vec<_> = (0..domains.len()).map(|_| statement(&mut r)).collect();
        let mut proofs: Vec<DleqProof> = stmts
            .iter()
            .zip(&domains)
            .map(|((g1, h1, g2, h2, x), d)| DleqProof::prove(d, g1, h1, g2, h2, x, &mut r))
            .collect();
        {
            let instances: Vec<(&str, DleqInstance<'_>)> = stmts
                .iter()
                .zip(&proofs)
                .zip(&domains)
                .map(|(((g1, h1, g2, h2, _), proof), d)| {
                    (*d, DleqInstance { g1, h1, g2, h2, proof })
                })
                .collect();
            // A proof attached under the wrong domain must not verify.
            let mut swapped = instances.clone();
            swapped[0].0 = "domain-b";
            assert!(!DleqProof::verify_batch_mixed(&swapped));
        }
        proofs[1].response = proofs[1].response.add(&Scalar::one());
        let instances: Vec<(&str, DleqInstance<'_>)> = stmts
            .iter()
            .zip(&proofs)
            .zip(&domains)
            .map(|(((g1, h1, g2, h2, _), proof), d)| {
                (*d, DleqInstance { g1, h1, g2, h2, proof })
            })
            .collect();
        assert!(!DleqProof::verify_batch_mixed(&instances));
        // The untouched instances still pass without the bad one.
        assert!(DleqProof::verify_batch_mixed(&[instances[0], instances[2]]));
    }

    #[test]
    fn batch_rejects_wrong_domain() {
        let mut r = rng();
        let stmts: Vec<_> = (0..3).map(|_| statement(&mut r)).collect();
        let proofs: Vec<DleqProof> = stmts
            .iter()
            .map(|(g1, h1, g2, h2, x)| {
                DleqProof::prove("domain-a", g1, h1, g2, h2, x, &mut r)
            })
            .collect();
        let instances: Vec<DleqInstance<'_>> = stmts
            .iter()
            .zip(&proofs)
            .map(|((g1, h1, g2, h2, _), proof)| DleqInstance { g1, h1, g2, h2, proof })
            .collect();
        assert!(!DleqProof::verify_batch("domain-b", &instances));
    }
}
