//! Chaum–Pedersen proofs of discrete-log equality over Ed25519.
//!
//! This is the "ZKP" verification strategy of Table 1: SG02 decryption
//! shares and CKS05 coin shares each carry a DLEQ proof that the share
//! was computed with the party's committed key share.

use crate::hashing::hash_to_ed25519_scalar;
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::ed25519::{Point, Scalar};

/// A non-interactive DLEQ proof: knowledge of `x` with `h1 = g1^x` and
/// `h2 = g2^x` (Fiat–Shamir over the given domain).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DleqProof {
    challenge: Scalar,
    response: Scalar,
}

impl DleqProof {
    /// Proves `log_{g1}(h1) = log_{g2}(h2) = x`.
    pub fn prove(
        domain: &str,
        g1: &Point,
        h1: &Point,
        g2: &Point,
        h2: &Point,
        x: &Scalar,
        rng: &mut dyn RngCore,
    ) -> DleqProof {
        let s = Scalar::random(rng);
        let w1 = g1.mul(&s);
        let w2 = g2.mul(&s);
        let challenge = Self::challenge(domain, g1, h1, g2, h2, &w1, &w2);
        let response = s.add(&x.mul(&challenge));
        DleqProof { challenge, response }
    }

    /// Verifies the proof against the same statement.
    pub fn verify(&self, domain: &str, g1: &Point, h1: &Point, g2: &Point, h2: &Point) -> bool {
        // w1 = g1^z · h1^{−e},  w2 = g2^z · h2^{−e}
        let w1 = g1.mul(&self.response).sub(&h1.mul(&self.challenge));
        let w2 = g2.mul(&self.response).sub(&h2.mul(&self.challenge));
        let expect = Self::challenge(domain, g1, h1, g2, h2, &w1, &w2);
        expect == self.challenge
    }

    fn challenge(
        domain: &str,
        g1: &Point,
        h1: &Point,
        g2: &Point,
        h2: &Point,
        w1: &Point,
        w2: &Point,
    ) -> Scalar {
        hash_to_ed25519_scalar(
            domain,
            &[
                &g1.compress(),
                &h1.compress(),
                &g2.compress(),
                &h2.compress(),
                &w1.compress(),
                &w2.compress(),
            ],
        )
    }
}

impl Encode for DleqProof {
    fn encode(&self, w: &mut Writer) {
        crate::wire::put_scalar(w, &self.challenge);
        crate::wire::put_scalar(w, &self.response);
    }
}

impl Decode for DleqProof {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(DleqProof {
            challenge: crate::wire::get_scalar(r)?,
            response: crate::wire::get_scalar(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xd1e9)
    }

    fn statement(r: &mut impl RngCore) -> (Point, Point, Point, Point, Scalar) {
        let x = Scalar::random(r);
        let g1 = Point::base();
        let g2 = Point::mul_base(&Scalar::random(r));
        let h1 = g1.mul(&x);
        let h2 = g2.mul(&x);
        (g1, h1, g2, h2, x)
    }

    #[test]
    fn honest_proof_verifies() {
        let mut r = rng();
        for _ in 0..5 {
            let (g1, h1, g2, h2, x) = statement(&mut r);
            let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
            assert!(proof.verify("test/dleq", &g1, &h1, &g2, &h2));
        }
    }

    #[test]
    fn unequal_logs_rejected() {
        let mut r = rng();
        let (g1, h1, g2, _, x) = statement(&mut r);
        // h2 with a different exponent: the prover cannot produce a valid
        // proof for a false statement.
        let h2_bad = g2.mul(&x.add(&Scalar::one()));
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2_bad, &x, &mut r);
        assert!(!proof.verify("test/dleq", &g1, &h1, &g2, &h2_bad));
    }

    #[test]
    fn wrong_domain_rejected() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("domain-a", &g1, &h1, &g2, &h2, &x, &mut r);
        assert!(!proof.verify("domain-b", &g1, &h1, &g2, &h2));
    }

    #[test]
    fn tampered_statement_rejected() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
        let other = Point::mul_base(&Scalar::random(&mut r));
        assert!(!proof.verify("test/dleq", &g1, &other, &g2, &h2));
        assert!(!proof.verify("test/dleq", &g1, &h1, &g2, &other));
    }

    #[test]
    fn tampered_proof_rejected() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
        let bad = DleqProof {
            challenge: proof.challenge.add(&Scalar::one()),
            response: proof.response.clone(),
        };
        assert!(!bad.verify("test/dleq", &g1, &h1, &g2, &h2));
        let bad = DleqProof {
            challenge: proof.challenge.clone(),
            response: proof.response.add(&Scalar::one()),
        };
        assert!(!bad.verify("test/dleq", &g1, &h1, &g2, &h2));
    }

    #[test]
    fn codec_roundtrip() {
        let mut r = rng();
        let (g1, h1, g2, h2, x) = statement(&mut r);
        let proof = DleqProof::prove("test/dleq", &g1, &h1, &g2, &h2, &x, &mut r);
        let decoded = DleqProof::decoded(&proof.encoded()).unwrap();
        assert_eq!(decoded, proof);
        assert!(decoded.verify("test/dleq", &g1, &h1, &g2, &h2));
    }
}
