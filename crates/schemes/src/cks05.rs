//! CKS05 — the Cachin–Kursawe–Shoup common-coin scheme (Diffie–Hellman
//! construction) over Ed25519.
//!
//! A coin with name `C` is the hash of `g̃^x` where `g̃ = H(C)` and `x`
//! is the shared secret. Each share `σ_i = g̃^{x_i}` carries a DLEQ proof
//! of consistency with the party's verification key (paper §3.5: "every
//! share of a coin comes with a ZKP for validity").
//!
//! # Example
//!
//! ```
//! use theta_schemes::common::ThresholdParams;
//! use theta_schemes::cks05;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ThresholdParams::new(1, 4).unwrap();
//! let (pk, shares) = cks05::keygen(params, &mut rng);
//! let s0 = cks05::create_coin_share(&shares[0], b"round-7", &mut rng);
//! let s1 = cks05::create_coin_share(&shares[1], b"round-7", &mut rng);
//! let coin = cks05::combine(&pk, b"round-7", &[s0, s1]).unwrap();
//! assert_eq!(coin.len(), 32);
//! ```

use crate::common::{
    bisect_invalid, lagrange_coeffs_at_zero, shamir_share, PartyId, ThresholdParams,
};
use crate::dleq::{DleqInstance, DleqProof};
use crate::error::SchemeError;
use crate::hashing::{hash_to_ed25519, hash_to_key};
use crate::wire::{get_point, get_scalar, put_point, put_scalar};
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::ed25519::{Point, Scalar};

const D_COIN_BASE: &str = "thetacrypt/cks05/coin-base/v1";
const D_COIN_VALUE: &str = "thetacrypt/cks05/coin-value/v1";
const D_SHARE: &str = "thetacrypt/cks05/share-dleq/v1";

/// The coin public key: `h = g^x` and verification keys `h_i = g^{x_i}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    params: ThresholdParams,
    h: Point,
    verification_keys: Vec<Point>,
}

impl PublicKey {
    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The verification key of `party`, if in range.
    pub fn verification_key(&self, party: PartyId) -> Option<&Point> {
        let idx = party.value().checked_sub(1)? as usize;
        self.verification_keys.get(idx)
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        put_point(w, &self.h);
        (self.verification_keys.len() as u32).encode(w);
        for vk in &self.verification_keys {
            put_point(w, vk);
        }
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let params = ThresholdParams::decode(r)?;
        let h = get_point(r)?;
        let count = u32::decode(r)? as usize;
        if count != params.n() as usize {
            return Err(theta_codec::CodecError::InvalidValue(
                "verification key count != n".into(),
            ));
        }
        let mut verification_keys = Vec::with_capacity(count);
        for _ in 0..count {
            verification_keys.push(get_point(r)?);
        }
        Ok(PublicKey { params, h, verification_keys })
    }
}

/// One party's coin key share.
#[derive(Clone)]
pub struct KeyShare {
    id: PartyId,
    x_i: Scalar,
    public: PublicKey,
}

impl KeyShare {
    /// The owning party.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The common public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Constant-time comparison: ids must match and the secret halves
    /// are compared without short-circuiting (`theta_math::ct`), so
    /// timing reveals nothing about where two shares differ.
    #[must_use]
    pub fn ct_eq(&self, other: &KeyShare) -> bool {
        self.id == other.id && self.x_i.ct_eq(&other.x_i)
    }
}

/// Redacted: a key share must never leak its secret through logs or
/// panic messages, so only the owner id is printed.
impl std::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("id", &self.id)
            .field("x_i", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// On drop the secret scalar is wiped (volatile writes the optimizer cannot elide), so
/// freed heap pages never retain key material.
impl Drop for KeyShare {
    fn drop(&mut self) {
        self.x_i.wipe();
    }
}

impl Encode for KeyShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_scalar(w, &self.x_i);
        self.public.encode(w);
    }
}

impl Decode for KeyShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(KeyShare {
            id: PartyId::decode(r)?,
            x_i: get_scalar(r)?,
            public: PublicKey::decode(r)?,
        })
    }
}

/// A coin share `σ_i = g̃^{x_i}` with its DLEQ validity proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoinShare {
    id: PartyId,
    sigma_i: Point,
    proof: DleqProof,
}

impl CoinShare {
    /// The producing party.
    pub fn id(&self) -> PartyId {
        self.id
    }
}

impl Encode for CoinShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_point(w, &self.sigma_i);
        self.proof.encode(w);
    }
}

impl Decode for CoinShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(CoinShare {
            id: PartyId::decode(r)?,
            sigma_i: get_point(r)?,
            proof: DleqProof::decode(r)?,
        })
    }
}

/// Dealer key generation.
pub fn keygen(params: ThresholdParams, rng: &mut dyn RngCore) -> (PublicKey, Vec<KeyShare>) {
    let x = Scalar::random(rng);
    let h = Point::mul_base(&x);
    let shares = shamir_share(&x, params, rng);
    let verification_keys: Vec<Point> =
        shares.iter().map(|(_, x_i)| Point::mul_base(x_i)).collect();
    let public = PublicKey { params, h, verification_keys };
    let key_shares = shares
        .into_iter()
        .map(|(id, x_i)| KeyShare { id, x_i, public: public.clone() })
        .collect();
    (public, key_shares)
}

/// The coin base point `g̃ = H(name)`.
fn coin_base(name: &[u8]) -> Point {
    hash_to_ed25519(D_COIN_BASE, &[name]).expect("hash-to-curve")
}

/// Produces this party's coin share for `name` with its DLEQ proof.
pub fn create_coin_share(key: &KeyShare, name: &[u8], rng: &mut dyn RngCore) -> CoinShare {
    let g_tilde = coin_base(name);
    let sigma_i = g_tilde.mul(&key.x_i);
    let h_i = key
        .public
        .verification_key(key.id)
        .expect("own id is always in range");
    let proof = DleqProof::prove(D_SHARE, &Point::base(), h_i, &g_tilde, &sigma_i, &key.x_i, rng);
    CoinShare { id: key.id, sigma_i, proof }
}

/// Verifies a coin share against the coin name.
pub fn verify_coin_share(pk: &PublicKey, name: &[u8], share: &CoinShare) -> bool {
    let Some(h_i) = pk.verification_key(share.id) else {
        return false;
    };
    let g_tilde = coin_base(name);
    share
        .proof
        .verify(D_SHARE, &Point::base(), h_i, &g_tilde, &share.sigma_i)
}

/// Verifies a batch of coin shares at once: all DLEQ proofs fold into a
/// single multi-scalar multiplication, with bisection locating the first
/// invalid share on failure.
///
/// # Errors
///
/// [`SchemeError::InvalidShare`] naming the first offending party.
pub fn verify_coin_shares_batch(
    pk: &PublicKey,
    name: &[u8],
    shares: &[CoinShare],
) -> Result<(), SchemeError> {
    let base = Point::base();
    let g_tilde = coin_base(name);
    let mut instances = Vec::with_capacity(shares.len());
    for share in shares {
        let Some(h_i) = pk.verification_key(share.id) else {
            return Err(SchemeError::InvalidShare { party: share.id.value() });
        };
        instances.push(DleqInstance {
            g1: &base,
            h1: h_i,
            g2: &g_tilde,
            h2: &share.sigma_i,
            proof: &share.proof,
        });
    }
    let check = |r: std::ops::Range<usize>| DleqProof::verify_batch(D_SHARE, &instances[r]);
    match bisect_invalid(shares.len(), &check) {
        None => Ok(()),
        Some(i) => Err(SchemeError::InvalidShare { party: shares[i].id.value() }),
    }
}

/// Combines `t+1` verified shares into the 32-byte coin value.
///
/// The coin is `H(name, g̃^x)` — pseudorandom under DDH, and identical
/// for every quorum (share uniqueness). Share proofs are verified in one
/// batched MSM and the interpolation of `g̃^x` is a single MSM too.
///
/// # Errors
///
/// [`SchemeError::InvalidShare`] / [`SchemeError::NotEnoughShares`].
pub fn combine(pk: &PublicKey, name: &[u8], shares: &[CoinShare]) -> Result<[u8; 32], SchemeError> {
    verify_coin_shares_batch(pk, name, shares)?;
    combine_preverified(pk, name, shares)
}

/// Captures one coin-share check as a detached
/// [`crate::batch::PendingCheck`] so the orchestration layer can fold it
/// into a cross-instance DLEQ batch (mixed with SG02 shares — the
/// Fiat–Shamir domains stay distinct per instance).
pub fn pending_check(
    pk: &PublicKey,
    name: &[u8],
    share: &CoinShare,
) -> crate::batch::PendingCheck {
    match pk.verification_key(share.id) {
        Some(h_i) => crate::batch::PendingCheck::Dleq {
            domain: D_SHARE,
            g1: Point::base(),
            h1: *h_i,
            g2: coin_base(name),
            h2: share.sigma_i,
            proof: share.proof.clone(),
        },
        None => crate::batch::PendingCheck::Invalid,
    }
}

/// Combines shares that were **already verified individually** (e.g. by
/// the cross-instance batch settle), skipping re-verification so only
/// the Lagrange MSM and the value hash remain.
pub fn combine_preverified(
    pk: &PublicKey,
    name: &[u8],
    shares: &[CoinShare],
) -> Result<[u8; 32], SchemeError> {
    let need = pk.params.quorum() as usize;
    if shares.len() < need {
        return Err(SchemeError::NotEnoughShares { have: shares.len(), need });
    }
    let quorum = &shares[..need];
    let ids: Vec<PartyId> = quorum.iter().map(|s| s.id).collect();
    let lambdas = lagrange_coeffs_at_zero::<Scalar>(&ids)?;
    let points: Vec<Point> = quorum.iter().map(|s| s.sigma_i).collect();
    let coeffs: Vec<&theta_math::BigUint> = lambdas.iter().map(|l| l.to_biguint()).collect();
    let g_tilde_x = theta_math::msm::msm(&points, &coeffs);
    Ok(hash_to_key(D_COIN_VALUE, &[name, &g_tilde_x.compress()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xc5)
    }

    fn setup(t: u16, n: u16) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rng();
        let params = ThresholdParams::new(t, n).unwrap();
        let (pk, shares) = keygen(params, &mut r);
        (pk, shares, r)
    }

    #[test]
    fn coin_value_consistent_across_quorums() {
        let (pk, shares, mut r) = setup(1, 4);
        let all: Vec<_> = shares
            .iter()
            .map(|s| create_coin_share(s, b"round-1", &mut r))
            .collect();
        let a = combine(&pk, b"round-1", &[all[0].clone(), all[1].clone()]).unwrap();
        let b = combine(&pk, b"round-1", &[all[2].clone(), all[3].clone()]).unwrap();
        let c = combine(&pk, b"round-1", &all).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn different_names_different_coins() {
        let (pk, shares, mut r) = setup(1, 4);
        let mut coins = Vec::new();
        for name in [b"r1".as_slice(), b"r2", b"r3"] {
            let s: Vec<_> = shares[..2]
                .iter()
                .map(|k| create_coin_share(k, name, &mut r))
                .collect();
            coins.push(combine(&pk, name, &s).unwrap());
        }
        assert_ne!(coins[0], coins[1]);
        assert_ne!(coins[1], coins[2]);
        assert_ne!(coins[0], coins[2]);
    }

    #[test]
    fn share_proofs_validate() {
        let (pk, shares, mut r) = setup(1, 4);
        let share = create_coin_share(&shares[0], b"name", &mut r);
        assert!(verify_coin_share(&pk, b"name", &share));
        // Wrong coin name fails (g̃ differs).
        assert!(!verify_coin_share(&pk, b"other", &share));
        // Wrong party fails.
        let forged = CoinShare { id: PartyId(2), ..share.clone() };
        assert!(!verify_coin_share(&pk, b"name", &forged));
    }

    #[test]
    fn corrupt_share_rejected() {
        let (pk, shares, mut r) = setup(1, 4);
        let mut bad = create_coin_share(&shares[0], b"n", &mut r);
        bad.sigma_i = bad.sigma_i.add(&Point::base());
        let good = create_coin_share(&shares[1], b"n", &mut r);
        assert!(matches!(
            combine(&pk, b"n", &[bad, good]),
            Err(SchemeError::InvalidShare { party: 1 })
        ));
    }

    #[test]
    fn not_enough_shares() {
        let (pk, shares, mut r) = setup(2, 7);
        let s: Vec<_> = shares[..2]
            .iter()
            .map(|k| create_coin_share(k, b"n", &mut r))
            .collect();
        assert!(matches!(
            combine(&pk, b"n", &s),
            Err(SchemeError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn coin_sequence_is_unpredictable_looking() {
        // Not a statistical test — just ensures successive coins differ
        // and are not all-zero.
        let (pk, shares, mut r) = setup(1, 4);
        let mut prev = [0u8; 32];
        for round in 0u64..5 {
            let name = round.to_le_bytes();
            let s: Vec<_> = shares[..2]
                .iter()
                .map(|k| create_coin_share(k, &name, &mut r))
                .collect();
            let coin = combine(&pk, &name, &s).unwrap();
            assert_ne!(coin, [0u8; 32]);
            assert_ne!(coin, prev);
            prev = coin;
        }
    }

    #[test]
    fn codec_roundtrips() {
        let (pk, shares, mut r) = setup(1, 4);
        assert_eq!(PublicKey::decoded(&pk.encoded()).unwrap(), pk);
        let share = create_coin_share(&shares[0], b"n", &mut r);
        assert_eq!(CoinShare::decoded(&share.encoded()).unwrap(), share);
        let ks = KeyShare::decoded(&shares[0].encoded()).unwrap();
        assert_eq!(ks.id(), shares[0].id());
    }

    #[test]
    fn batch_verify_accepts_valid_and_names_culprit() {
        let (pk, shares, mut r) = setup(2, 7);
        let name = b"round-9";
        let mut cs: Vec<_> = shares
            .iter()
            .map(|k| create_coin_share(k, name, &mut r))
            .collect();
        assert!(verify_coin_shares_batch(&pk, name, &cs).is_ok());
        cs[5].sigma_i = cs[5].sigma_i.add(&Point::base());
        assert_eq!(
            verify_coin_shares_batch(&pk, name, &cs),
            Err(SchemeError::InvalidShare { party: cs[5].id.value() })
        );
        assert!(matches!(
            combine(&pk, name, &cs),
            Err(SchemeError::InvalidShare { .. })
        ));
    }
}
