//! The scheme registry: static metadata behind the paper's Table 1
//! (scheme inventory) and Table 3 (benchmark parameters), plus the
//! scheme/operation enums shared by the protocol, service and
//! evaluation layers.

use std::fmt;
use theta_codec::{Decode, Encode, Reader, Writer};

/// The six threshold schemes of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchemeId {
    /// Shoup–Gennaro TDH2 threshold cipher (Ed25519).
    Sg02,
    /// Baek–Zheng threshold cipher (BN254, pairings).
    Bz03,
    /// Shoup threshold RSA signatures.
    Sh00,
    /// Boneh–Lynn–Shacham threshold signatures (BN254, pairings).
    Bls04,
    /// Komlo–Goldberg FROST threshold Schnorr signatures (Ed25519).
    Kg20,
    /// Cachin–Kursawe–Shoup common coin (Ed25519).
    Cks05,
}

impl SchemeId {
    /// All schemes in the paper's Table 1 order.
    pub const ALL: [SchemeId; 6] = [
        SchemeId::Sh00,
        SchemeId::Kg20,
        SchemeId::Bls04,
        SchemeId::Sg02,
        SchemeId::Bz03,
        SchemeId::Cks05,
    ];

    /// Short lowercase name (stable identifier).
    pub fn name(&self) -> &'static str {
        match self {
            SchemeId::Sg02 => "sg02",
            SchemeId::Bz03 => "bz03",
            SchemeId::Sh00 => "sh00",
            SchemeId::Bls04 => "bls04",
            SchemeId::Kg20 => "kg20",
            SchemeId::Cks05 => "cks05",
        }
    }

    /// Parses a short name.
    pub fn from_name(name: &str) -> Option<SchemeId> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Full metadata for this scheme.
    pub fn info(&self) -> &'static SchemeInfo {
        &REGISTRY[match self {
            SchemeId::Sh00 => 0,
            SchemeId::Kg20 => 1,
            SchemeId::Bls04 => 2,
            SchemeId::Sg02 => 3,
            SchemeId::Bz03 => 4,
            SchemeId::Cks05 => 5,
        }]
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Encode for SchemeId {
    fn encode(&self, w: &mut Writer) {
        let tag: u8 = match self {
            SchemeId::Sg02 => 0,
            SchemeId::Bz03 => 1,
            SchemeId::Sh00 => 2,
            SchemeId::Bls04 => 3,
            SchemeId::Kg20 => 4,
            SchemeId::Cks05 => 5,
        };
        tag.encode(w);
    }
}

impl Decode for SchemeId {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(SchemeId::Sg02),
            1 => Ok(SchemeId::Bz03),
            2 => Ok(SchemeId::Sh00),
            3 => Ok(SchemeId::Bls04),
            4 => Ok(SchemeId::Kg20),
            5 => Ok(SchemeId::Cks05),
            other => Err(theta_codec::CodecError::InvalidTag(other as u32)),
        }
    }
}

/// Scheme category (paper §2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Threshold public-key encryption.
    Cipher,
    /// Threshold digital signature.
    Signature,
    /// Distributed randomness / common coin.
    Randomness,
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchemeKind::Cipher => "Cipher",
            SchemeKind::Signature => "Signature",
            SchemeKind::Randomness => "Randomness",
        })
    }
}

/// Cryptographic hardness assumption (Table 1 / §4.5 grouping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hardness {
    /// Elliptic-curve Diffie–Hellman (fastest local computation).
    EcDh,
    /// Pairing-based (Gap Diffie–Hellman).
    Pairing,
    /// RSA (heaviest local computation).
    Rsa,
}

impl fmt::Display for Hardness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Hardness::EcDh => "DL (ECDH)",
            Hardness::Pairing => "DL (pairings)",
            Hardness::Rsa => "RSA",
        })
    }
}

/// Share verification strategy (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Verification {
    /// Zero-knowledge proof accompanies each share.
    Zkp,
    /// Pairing equations verify shares directly.
    Pairings,
}

impl fmt::Display for Verification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verification::Zkp => "ZKP",
            Verification::Pairings => "Pairings",
        })
    }
}

/// Static metadata for one scheme (rows of Tables 1 and 3).
#[derive(Debug)]
pub struct SchemeInfo {
    /// Scheme identifier.
    pub id: SchemeId,
    /// Literature reference as cited in the paper.
    pub reference: &'static str,
    /// Category.
    pub kind: SchemeKind,
    /// Hardness assumption.
    pub hardness: Hardness,
    /// Verification strategy.
    pub verification: Verification,
    /// Arithmetic structure (Table 3).
    pub arithmetic: &'static str,
    /// Key length in bits (Table 3).
    pub key_bits: u32,
    /// Asymptotic communication complexity (Table 3): messages per
    /// protocol run as a power of n (1 = O(n), 2 = O(n²)).
    pub comm_complexity_exp: u32,
    /// Communication rounds (1 for non-interactive; KG20 needs 2).
    pub rounds: u32,
    /// Whether misbehaving parties can be excluded (robustness).
    pub robust: bool,
}

impl SchemeInfo {
    /// Communication complexity rendered as in Table 3.
    pub fn comm_complexity(&self) -> String {
        match self.comm_complexity_exp {
            1 => "O(n)".to_string(),
            k => format!("O(n^{k})"),
        }
    }
}

/// Rows in the Table 1 order (SH00, KG20, BLS04 signatures; SG02, BZ03
/// ciphers; CKS05 randomness).
static REGISTRY: [SchemeInfo; 6] = [
    SchemeInfo {
        id: SchemeId::Sh00,
        reference: "SH00 [43]",
        kind: SchemeKind::Signature,
        hardness: Hardness::Rsa,
        verification: Verification::Zkp,
        arithmetic: "RSA",
        key_bits: 2048,
        comm_complexity_exp: 1,
        rounds: 1,
        robust: true,
    },
    SchemeInfo {
        id: SchemeId::Kg20,
        reference: "KG20 [29]",
        kind: SchemeKind::Signature,
        hardness: Hardness::EcDh,
        verification: Verification::Zkp,
        arithmetic: "EC (Ed25519)",
        key_bits: 256,
        comm_complexity_exp: 2,
        rounds: 2,
        robust: false,
    },
    SchemeInfo {
        id: SchemeId::Bls04,
        reference: "BLS04 [5]",
        kind: SchemeKind::Signature,
        hardness: Hardness::Pairing,
        verification: Verification::Pairings,
        arithmetic: "EC (Bn254)",
        key_bits: 254,
        comm_complexity_exp: 1,
        rounds: 1,
        robust: true,
    },
    SchemeInfo {
        id: SchemeId::Sg02,
        reference: "SG02 [44]",
        kind: SchemeKind::Cipher,
        hardness: Hardness::EcDh,
        verification: Verification::Zkp,
        arithmetic: "EC (Ed25519)",
        key_bits: 256,
        comm_complexity_exp: 1,
        rounds: 1,
        robust: true,
    },
    SchemeInfo {
        id: SchemeId::Bz03,
        reference: "BZ03 [3]",
        kind: SchemeKind::Cipher,
        hardness: Hardness::Pairing,
        verification: Verification::Pairings,
        arithmetic: "EC (Bn254)",
        key_bits: 254,
        comm_complexity_exp: 1,
        rounds: 1,
        robust: true,
    },
    SchemeInfo {
        id: SchemeId::Cks05,
        reference: "CKS05 [8]",
        kind: SchemeKind::Randomness,
        hardness: Hardness::EcDh,
        verification: Verification::Zkp,
        arithmetic: "EC (Ed25519)",
        key_bits: 256,
        comm_complexity_exp: 1,
        rounds: 1,
        robust: true,
    },
];

/// All scheme metadata rows (Table 1 / Table 3).
pub fn all_schemes() -> &'static [SchemeInfo] {
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for id in SchemeId::ALL {
            assert_eq!(SchemeId::from_name(id.name()), Some(id));
        }
        assert_eq!(SchemeId::from_name("nope"), None);
    }

    #[test]
    fn codec_roundtrip() {
        for id in SchemeId::ALL {
            assert_eq!(SchemeId::decoded(&id.encoded()).unwrap(), id);
        }
        assert!(SchemeId::decoded(&[9]).is_err());
    }

    #[test]
    fn info_self_consistent() {
        for id in SchemeId::ALL {
            let info = id.info();
            assert_eq!(info.id, id, "registry row mismatch for {id}");
        }
    }

    #[test]
    fn table1_contents() {
        // Paper Table 1: hardness and verification per scheme.
        assert_eq!(SchemeId::Sh00.info().hardness, Hardness::Rsa);
        assert_eq!(SchemeId::Sh00.info().verification, Verification::Zkp);
        assert_eq!(SchemeId::Kg20.info().hardness, Hardness::EcDh);
        assert_eq!(SchemeId::Bls04.info().verification, Verification::Pairings);
        assert_eq!(SchemeId::Bz03.info().verification, Verification::Pairings);
        assert_eq!(SchemeId::Sg02.info().kind, SchemeKind::Cipher);
        assert_eq!(SchemeId::Cks05.info().kind, SchemeKind::Randomness);
    }

    #[test]
    fn table3_contents() {
        // Paper Table 3: key lengths and communication complexity.
        assert_eq!(SchemeId::Sg02.info().key_bits, 256);
        assert_eq!(SchemeId::Bz03.info().key_bits, 254);
        assert_eq!(SchemeId::Sh00.info().key_bits, 2048);
        assert_eq!(SchemeId::Kg20.info().comm_complexity_exp, 2);
        assert_eq!(SchemeId::Kg20.info().comm_complexity(), "O(n^2)");
        assert_eq!(SchemeId::Bls04.info().comm_complexity(), "O(n)");
        // Only KG20 is interactive (2 rounds) and non-robust.
        for id in SchemeId::ALL {
            let info = id.info();
            if id == SchemeId::Kg20 {
                assert_eq!(info.rounds, 2);
                assert!(!info.robust);
            } else {
                assert_eq!(info.rounds, 1);
                assert!(info.robust);
            }
        }
    }

    #[test]
    fn display_impls() {
        assert_eq!(SchemeId::Sg02.to_string(), "sg02");
        assert_eq!(SchemeKind::Cipher.to_string(), "Cipher");
        assert!(!Hardness::Rsa.to_string().is_empty());
        assert!(!Verification::Zkp.to_string().is_empty());
    }
}
