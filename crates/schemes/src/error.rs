//! Error type shared by all threshold schemes.

use std::fmt;

/// Errors produced by threshold-scheme operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemeError {
    /// Threshold parameters were inconsistent (e.g. `t ≥ n`).
    InvalidParameters(String),
    /// A set of shares was unusable (duplicates, foreign ids, too few).
    InvalidShareSet(String),
    /// A share failed its validity proof or pairing check.
    InvalidShare {
        /// The offending party.
        party: u16,
    },
    /// A ciphertext failed its integrity/CCA check.
    InvalidCiphertext(String),
    /// A signature failed verification.
    InvalidSignature,
    /// Fewer than `t+1` valid shares were supplied.
    NotEnoughShares {
        /// Shares supplied.
        have: usize,
        /// Shares required.
        need: usize,
    },
    /// Serialized data could not be parsed into a valid object.
    Malformed(String),
    /// A hash-to-group operation exhausted its retry budget.
    HashToGroupFailed,
    /// The operation was invoked with mismatched key material.
    KeyMismatch(String),
    /// The serving node was at capacity and refused to start the
    /// instance; the request is safe to retry elsewhere or later.
    Overloaded,
    /// The serving node shut down before the instance completed.
    Shutdown,
}

impl fmt::Display for SchemeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemeError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            SchemeError::InvalidShareSet(msg) => write!(f, "invalid share set: {msg}"),
            SchemeError::InvalidShare { party } => {
                write!(f, "share from party {party} failed verification")
            }
            SchemeError::InvalidCiphertext(msg) => write!(f, "invalid ciphertext: {msg}"),
            SchemeError::InvalidSignature => write!(f, "signature verification failed"),
            SchemeError::NotEnoughShares { have, need } => {
                write!(f, "not enough shares: have {have}, need {need}")
            }
            SchemeError::Malformed(msg) => write!(f, "malformed data: {msg}"),
            SchemeError::HashToGroupFailed => write!(f, "hash-to-group retries exhausted"),
            SchemeError::KeyMismatch(msg) => write!(f, "key mismatch: {msg}"),
            SchemeError::Overloaded => write!(f, "node overloaded: submission rejected"),
            SchemeError::Shutdown => write!(f, "node shut down before the instance completed"),
        }
    }
}

impl std::error::Error for SchemeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_nonempty() {
        let errs = [
            SchemeError::InvalidParameters("p".into()),
            SchemeError::InvalidShareSet("s".into()),
            SchemeError::InvalidShare { party: 3 },
            SchemeError::InvalidCiphertext("c".into()),
            SchemeError::InvalidSignature,
            SchemeError::NotEnoughShares { have: 1, need: 3 },
            SchemeError::Malformed("m".into()),
            SchemeError::HashToGroupFailed,
            SchemeError::KeyMismatch("k".into()),
            SchemeError::Overloaded,
            SchemeError::Shutdown,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SchemeError::InvalidSignature);
    }
}
