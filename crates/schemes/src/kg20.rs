//! KG20 — FROST: flexible round-optimized Schnorr threshold signatures
//! (Komlo–Goldberg), over Ed25519.
//!
//! The one interactive (two-round) protocol in the suite (paper §3.5):
//!
//! 1. **Round 1 / preprocessing** — every signer samples a nonce pair
//!    `(d, e)` and publishes commitments `(D, E) = (g^d, g^e)`. Because
//!    nonces are message-independent, batches can be precomputed, turning
//!    signing into a single round (the paper's precomputation mode).
//! 2. **Round 2** — given the message and the full commitment list `B` of
//!    the signing set, each signer derives its binding factor
//!    `ρ_i = H(i, m, B)`, the group nonce `R = Π D_j·E_j^{ρ_j}`, the
//!    challenge `c = H(R, Y, m)` and responds `z_i = d_i + e_i·ρ_i + λ_i·x_i·c`.
//!
//! FROST is deliberately **not robust**: the signing set is fixed by the
//! commitment list, so a misbehaving signer aborts the run (tested below)
//! rather than being excluded.
//!
//! # Example
//!
//! ```
//! use theta_schemes::common::ThresholdParams;
//! use theta_schemes::kg20;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ThresholdParams::new(1, 4).unwrap();
//! let (pk, keys) = kg20::keygen(params, &mut rng);
//! // Round 1: parties 1 and 2 commit.
//! let n1 = kg20::generate_nonce(&keys[0], &mut rng);
//! let n2 = kg20::generate_nonce(&keys[1], &mut rng);
//! let commits = vec![n1.commitment().clone(), n2.commitment().clone()];
//! // Round 2: both sign.
//! let s1 = kg20::sign_share(&keys[0], n1, b"msg", &commits).unwrap();
//! let s2 = kg20::sign_share(&keys[1], n2, b"msg", &commits).unwrap();
//! let sig = kg20::combine(&pk, b"msg", &commits, &[s1, s2]).unwrap();
//! assert!(kg20::verify(&pk, b"msg", &sig));
//! ```

use crate::common::{lagrange_at_zero, shamir_share, PartyId, ThresholdParams};
use crate::error::SchemeError;
use crate::hashing::hash_to_ed25519_scalar;
use crate::wire::{get_point, get_scalar, put_point, put_scalar};
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::ed25519::{Point, Scalar};

const D_BINDING: &str = "thetacrypt/kg20/binding/v1";
const D_CHALLENGE: &str = "thetacrypt/kg20/challenge/v1";

/// The FROST group public key `Y = g^x` plus per-party verification keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    params: ThresholdParams,
    y: Point,
    verification_keys: Vec<Point>,
}

impl PublicKey {
    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The verification key of `party`, if in range.
    pub fn verification_key(&self, party: PartyId) -> Option<&Point> {
        let idx = party.value().checked_sub(1)? as usize;
        self.verification_keys.get(idx)
    }

    /// The group public key.
    pub fn group_key(&self) -> &Point {
        &self.y
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        put_point(w, &self.y);
        (self.verification_keys.len() as u32).encode(w);
        for vk in &self.verification_keys {
            put_point(w, vk);
        }
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let params = ThresholdParams::decode(r)?;
        let y = get_point(r)?;
        let count = u32::decode(r)? as usize;
        if count != params.n() as usize {
            return Err(theta_codec::CodecError::InvalidValue(
                "verification key count != n".into(),
            ));
        }
        let mut verification_keys = Vec::with_capacity(count);
        for _ in 0..count {
            verification_keys.push(get_point(r)?);
        }
        Ok(PublicKey { params, y, verification_keys })
    }
}

/// One party's long-term FROST signing share.
#[derive(Clone)]
pub struct KeyShare {
    id: PartyId,
    x_i: Scalar,
    public: PublicKey,
}

impl KeyShare {
    /// The owning party.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The common public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Constant-time comparison: ids must match and the secret halves
    /// are compared without short-circuiting (`theta_math::ct`), so
    /// timing reveals nothing about where two shares differ.
    #[must_use]
    pub fn ct_eq(&self, other: &KeyShare) -> bool {
        self.id == other.id && self.x_i.ct_eq(&other.x_i)
    }
}

/// Redacted: a key share must never leak its secret through logs or
/// panic messages, so only the owner id is printed.
impl std::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("id", &self.id)
            .field("x_i", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// On drop the secret scalar is wiped (volatile writes the optimizer cannot elide), so
/// freed heap pages never retain key material.
impl Drop for KeyShare {
    fn drop(&mut self) {
        self.x_i.wipe();
    }
}

impl Encode for KeyShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_scalar(w, &self.x_i);
        self.public.encode(w);
    }
}

impl Decode for KeyShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(KeyShare {
            id: PartyId::decode(r)?,
            x_i: get_scalar(r)?,
            public: PublicKey::decode(r)?,
        })
    }
}

/// A public round-1 nonce commitment `(D, E)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NonceCommitment {
    id: PartyId,
    d_big: Point,
    e_big: Point,
}

impl NonceCommitment {
    /// The committing party.
    pub fn id(&self) -> PartyId {
        self.id
    }
}

impl Encode for NonceCommitment {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_point(w, &self.d_big);
        put_point(w, &self.e_big);
    }
}

impl Decode for NonceCommitment {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(NonceCommitment {
            id: PartyId::decode(r)?,
            d_big: get_point(r)?,
            e_big: get_point(r)?,
        })
    }
}

/// A party's secret round-1 nonce pair. **Single use**: consumed by
/// [`sign_share`] so it cannot be replayed (nonce reuse leaks the key).
pub struct SigningNonce {
    d: Scalar,
    e: Scalar,
    commitment: NonceCommitment,
}

impl SigningNonce {
    /// The public commitment to broadcast in round 1.
    pub fn commitment(&self) -> &NonceCommitment {
        &self.commitment
    }
}

/// Redacted: a leaked nonce is as bad as a leaked key (Schnorr nonce
/// reuse/exposure recovers the signing share), so only the public
/// commitment is printed.
impl std::fmt::Debug for SigningNonce {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigningNonce")
            .field("d", &"<redacted>")
            .field("e", &"<redacted>")
            .field("commitment", &self.commitment)
            .finish()
    }
}

/// Wipes both secret nonce scalars when the nonce is dropped — which
/// [`sign_share`] does immediately after computing the response.
impl Drop for SigningNonce {
    fn drop(&mut self) {
        self.d.wipe();
        self.e.wipe();
    }
}

/// A round-2 response `z_i`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignatureShare {
    id: PartyId,
    z_i: Scalar,
}

impl SignatureShare {
    /// The producing party.
    pub fn id(&self) -> PartyId {
        self.id
    }
}

impl Encode for SignatureShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_scalar(w, &self.z_i);
    }
}

impl Decode for SignatureShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(SignatureShare { id: PartyId::decode(r)?, z_i: get_scalar(r)? })
    }
}

/// A standard Schnorr signature `(R, z)` — indistinguishable from a
/// single-signer signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    r: Point,
    z: Scalar,
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        put_point(w, &self.r);
        put_scalar(w, &self.z);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Signature { r: get_point(r)?, z: get_scalar(r)? })
    }
}

/// Dealer key generation.
pub fn keygen(params: ThresholdParams, rng: &mut dyn RngCore) -> (PublicKey, Vec<KeyShare>) {
    let x = Scalar::random(rng);
    let y = Point::mul_base(&x);
    let shares = shamir_share(&x, params, rng);
    let verification_keys: Vec<Point> =
        shares.iter().map(|(_, x_i)| Point::mul_base(x_i)).collect();
    let public = PublicKey { params, y, verification_keys };
    let key_shares = shares
        .into_iter()
        .map(|(id, x_i)| KeyShare { id, x_i, public: public.clone() })
        .collect();
    (public, key_shares)
}

/// Round 1: generates one nonce pair and its commitment.
pub fn generate_nonce(key: &KeyShare, rng: &mut dyn RngCore) -> SigningNonce {
    let d = Scalar::random_nonzero(rng);
    let e = Scalar::random_nonzero(rng);
    let commitment = NonceCommitment {
        id: key.id,
        d_big: Point::mul_base(&d),
        e_big: Point::mul_base(&e),
    };
    SigningNonce { d, e, commitment }
}

/// FROST preprocessing: a batch of nonces generated ahead of time so
/// that later signing needs only one round (paper §3.5).
pub fn precompute_nonces(key: &KeyShare, count: usize, rng: &mut dyn RngCore) -> Vec<SigningNonce> {
    (0..count).map(|_| generate_nonce(key, rng)).collect()
}

fn encode_commitment_list(commitments: &[NonceCommitment]) -> Vec<u8> {
    let mut w = Writer::new();
    (commitments.len() as u32).encode(&mut w);
    for c in commitments {
        c.encode(&mut w);
    }
    w.into_bytes()
}

fn binding_factor(id: PartyId, message: &[u8], commitment_bytes: &[u8]) -> Scalar {
    hash_to_ed25519_scalar(
        D_BINDING,
        &[&id.value().to_le_bytes(), message, commitment_bytes],
    )
}

fn group_nonce(message: &[u8], commitments: &[NonceCommitment]) -> Point {
    let bytes = encode_commitment_list(commitments);
    let mut r = Point::identity();
    for c in commitments {
        let rho = binding_factor(c.id, message, &bytes);
        r = r.add(&c.d_big).add(&c.e_big.mul(&rho));
    }
    r
}

fn challenge(r: &Point, y: &Point, message: &[u8]) -> Scalar {
    hash_to_ed25519_scalar(D_CHALLENGE, &[&r.compress(), &y.compress(), message])
}

fn validate_signer_set(
    params: ThresholdParams,
    commitments: &[NonceCommitment],
) -> Result<Vec<PartyId>, SchemeError> {
    let ids: Vec<PartyId> = commitments.iter().map(|c| c.id).collect();
    let mut seen = std::collections::HashSet::new();
    for id in &ids {
        if id.value() == 0 || id.value() > params.n() {
            return Err(SchemeError::InvalidShareSet(format!(
                "party {} outside 1..={}",
                id.value(),
                params.n()
            )));
        }
        if !seen.insert(id.value()) {
            return Err(SchemeError::InvalidShareSet("duplicate commitment".into()));
        }
    }
    if ids.len() < params.quorum() as usize {
        return Err(SchemeError::NotEnoughShares {
            have: ids.len(),
            need: params.quorum() as usize,
        });
    }
    Ok(ids)
}

/// Round 2: produces this party's response. Consumes the nonce.
///
/// # Errors
///
/// - [`SchemeError::InvalidShareSet`] for malformed signing sets or when
///   this party's commitment is missing/mismatched.
/// - [`SchemeError::NotEnoughShares`] when the signing set is below quorum.
pub fn sign_share(
    key: &KeyShare,
    nonce: SigningNonce,
    message: &[u8],
    commitments: &[NonceCommitment],
) -> Result<SignatureShare, SchemeError> {
    let ids = validate_signer_set(key.public.params, commitments)?;
    let own = commitments
        .iter()
        .find(|c| c.id == key.id)
        .ok_or_else(|| SchemeError::InvalidShareSet("own commitment missing".into()))?;
    if *own != nonce.commitment {
        return Err(SchemeError::InvalidShareSet(
            "commitment list does not contain this nonce".into(),
        ));
    }
    let bytes = encode_commitment_list(commitments);
    let rho_i = binding_factor(key.id, message, &bytes);
    let r = group_nonce(message, commitments);
    let c = challenge(&r, &key.public.y, message);
    let lambda_i = lagrange_at_zero::<Scalar>(key.id, &ids)?;
    let z_i = nonce.d.add(&nonce.e.mul(&rho_i)).add(&lambda_i.mul(&key.x_i).mul(&c));
    Ok(SignatureShare { id: key.id, z_i })
}

/// Verifies a round-2 response against the signing set:
/// `g^{z_i} == D_i · E_i^{ρ_i} · Y_i^{λ_i·c}`.
pub fn verify_share(
    pk: &PublicKey,
    message: &[u8],
    commitments: &[NonceCommitment],
    share: &SignatureShare,
) -> bool {
    let Ok(ids) = validate_signer_set(pk.params, commitments) else {
        return false;
    };
    let Some(commit) = commitments.iter().find(|c| c.id == share.id) else {
        return false;
    };
    let Some(vk) = pk.verification_key(share.id) else {
        return false;
    };
    let Ok(lambda_i) = lagrange_at_zero::<Scalar>(share.id, &ids) else {
        return false;
    };
    let bytes = encode_commitment_list(commitments);
    let rho_i = binding_factor(share.id, message, &bytes);
    let r = group_nonce(message, commitments);
    let c = challenge(&r, &pk.y, message);
    let lhs = Point::mul_base(&share.z_i);
    let rhs = commit
        .d_big
        .add(&commit.e_big.mul(&rho_i))
        .add(&vk.mul(&lambda_i.mul(&c)));
    lhs == rhs
}

/// Aggregates responses into a Schnorr signature. **Aborts** (errors) on
/// any invalid share — FROST is not robust; re-run with a new signing set
/// after excluding the culprit.
///
/// # Errors
///
/// - [`SchemeError::InvalidShare`] identifying the misbehaving party.
/// - [`SchemeError::InvalidShareSet`] when shares don't match the
///   commitment list exactly.
/// - [`SchemeError::InvalidSignature`] if the aggregate fails (cannot
///   happen when all shares verified).
pub fn combine(
    pk: &PublicKey,
    message: &[u8],
    commitments: &[NonceCommitment],
    shares: &[SignatureShare],
) -> Result<Signature, SchemeError> {
    validate_signer_set(pk.params, commitments)?;
    // FROST requires a response from *every* committed signer.
    if shares.len() != commitments.len() {
        return Err(SchemeError::InvalidShareSet(format!(
            "{} responses for {} commitments",
            shares.len(),
            commitments.len()
        )));
    }
    for share in shares {
        if commitments.iter().all(|c| c.id != share.id) {
            return Err(SchemeError::InvalidShareSet(format!(
                "response from non-committed party {}",
                share.id.value()
            )));
        }
        if !verify_share(pk, message, commitments, share) {
            return Err(SchemeError::InvalidShare { party: share.id.value() });
        }
    }
    let r = group_nonce(message, commitments);
    let mut z = Scalar::zero();
    for share in shares {
        z = z.add(&share.z_i);
    }
    let sig = Signature { r, z };
    if !verify(pk, message, &sig) {
        return Err(SchemeError::InvalidSignature);
    }
    Ok(sig)
}

/// Standard Schnorr verification: `g^z == R · Y^c`.
pub fn verify(pk: &PublicKey, message: &[u8], sig: &Signature) -> bool {
    let c = challenge(&sig.r, &pk.y, message);
    Point::mul_base(&sig.z) == sig.r.add(&pk.y.mul(&c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x6020)
    }

    fn setup(t: u16, n: u16) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rng();
        let params = ThresholdParams::new(t, n).unwrap();
        let (pk, keys) = keygen(params, &mut r);
        (pk, keys, r)
    }

    fn run_signing(
        pk: &PublicKey,
        keys: &[&KeyShare],
        msg: &[u8],
        r: &mut rand::rngs::StdRng,
    ) -> Signature {
        let nonces: Vec<SigningNonce> = keys.iter().map(|k| generate_nonce(k, r)).collect();
        let commits: Vec<NonceCommitment> =
            nonces.iter().map(|n| n.commitment().clone()).collect();
        let shares: Vec<SignatureShare> = keys
            .iter()
            .zip(nonces)
            .map(|(k, n)| sign_share(k, n, msg, &commits).unwrap())
            .collect();
        combine(pk, msg, &commits, &shares).unwrap()
    }

    #[test]
    fn two_round_signing() {
        let (pk, keys, mut r) = setup(1, 4);
        let signers = [&keys[0], &keys[2]];
        let sig = run_signing(&pk, &signers, b"frost message", &mut r);
        assert!(verify(&pk, b"frost message", &sig));
        assert!(!verify(&pk, b"other", &sig));
    }

    #[test]
    fn larger_signing_sets_work() {
        let (pk, keys, mut r) = setup(2, 7);
        // Exactly quorum.
        let signers: Vec<&KeyShare> = keys[..3].iter().collect();
        let sig = run_signing(&pk, &signers, b"m", &mut r);
        assert!(verify(&pk, b"m", &sig));
        // More than quorum.
        let signers: Vec<&KeyShare> = keys[1..6].iter().collect();
        let sig = run_signing(&pk, &signers, b"m", &mut r);
        assert!(verify(&pk, b"m", &sig));
    }

    #[test]
    fn precomputation_single_round() {
        // Round 1 happens ahead of time; signing consumes stock nonces.
        let (pk, keys, mut r) = setup(1, 4);
        let mut batch_0 = precompute_nonces(&keys[0], 3, &mut r);
        let mut batch_1 = precompute_nonces(&keys[1], 3, &mut r);
        for round in 0u64..3 {
            let msg = round.to_le_bytes();
            let n0 = batch_0.pop().unwrap();
            let n1 = batch_1.pop().unwrap();
            let commits = vec![n0.commitment().clone(), n1.commitment().clone()];
            let s0 = sign_share(&keys[0], n0, &msg, &commits).unwrap();
            let s1 = sign_share(&keys[1], n1, &msg, &commits).unwrap();
            let sig = combine(&pk, &msg, &commits, &[s0, s1]).unwrap();
            assert!(verify(&pk, &msg, &sig));
        }
    }

    #[test]
    fn bad_share_aborts_with_culprit() {
        let (pk, keys, mut r) = setup(1, 4);
        let n0 = generate_nonce(&keys[0], &mut r);
        let n1 = generate_nonce(&keys[1], &mut r);
        let commits = vec![n0.commitment().clone(), n1.commitment().clone()];
        let s0 = sign_share(&keys[0], n0, b"m", &commits).unwrap();
        let mut s1 = sign_share(&keys[1], n1, b"m", &commits).unwrap();
        s1.z_i = s1.z_i.add(&Scalar::one()); // party 2 misbehaves
        assert!(matches!(
            combine(&pk, b"m", &commits, &[s0, s1]),
            Err(SchemeError::InvalidShare { party: 2 })
        ));
    }

    #[test]
    fn missing_response_aborts() {
        // Non-robustness: all committed signers must respond.
        let (pk, keys, mut r) = setup(1, 4);
        let n0 = generate_nonce(&keys[0], &mut r);
        let n1 = generate_nonce(&keys[1], &mut r);
        let n2 = generate_nonce(&keys[2], &mut r);
        let commits = vec![
            n0.commitment().clone(),
            n1.commitment().clone(),
            n2.commitment().clone(),
        ];
        let s0 = sign_share(&keys[0], n0, b"m", &commits).unwrap();
        let s1 = sign_share(&keys[1], n1, b"m", &commits).unwrap();
        drop(n2); // party 3 never responds
        assert!(matches!(
            combine(&pk, b"m", &commits, &[s0, s1]),
            Err(SchemeError::InvalidShareSet(_))
        ));
    }

    #[test]
    fn signing_below_quorum_rejected() {
        let (_pk, keys, mut r) = setup(2, 7);
        let n0 = generate_nonce(&keys[0], &mut r);
        let commits = vec![n0.commitment().clone()];
        assert!(matches!(
            sign_share(&keys[0], n0, b"m", &commits),
            Err(SchemeError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn foreign_nonce_rejected() {
        let (_pk, keys, mut r) = setup(1, 4);
        let n0 = generate_nonce(&keys[0], &mut r);
        let n0_other = generate_nonce(&keys[0], &mut r);
        let n1 = generate_nonce(&keys[1], &mut r);
        // Commitment list contains a *different* nonce for party 1.
        let commits = vec![n0_other.commitment().clone(), n1.commitment().clone()];
        assert!(matches!(
            sign_share(&keys[0], n0, b"m", &commits),
            Err(SchemeError::InvalidShareSet(_))
        ));
    }

    #[test]
    fn share_verification_identifies_forgery() {
        let (pk, keys, mut r) = setup(1, 4);
        let n0 = generate_nonce(&keys[0], &mut r);
        let n1 = generate_nonce(&keys[1], &mut r);
        let commits = vec![n0.commitment().clone(), n1.commitment().clone()];
        let s0 = sign_share(&keys[0], n0, b"m", &commits).unwrap();
        assert!(verify_share(&pk, b"m", &commits, &s0));
        assert!(!verify_share(&pk, b"other-msg", &commits, &s0));
        let forged = SignatureShare { id: PartyId(2), z_i: s0.z_i.clone() };
        assert!(!verify_share(&pk, b"m", &commits, &forged));
    }

    #[test]
    fn duplicate_commitments_rejected() {
        let (pk, keys, mut r) = setup(1, 4);
        let n0 = generate_nonce(&keys[0], &mut r);
        let commits = vec![n0.commitment().clone(), n0.commitment().clone()];
        assert!(validate_signer_set(pk.params, &commits).is_err());
    }

    #[test]
    fn codec_roundtrips() {
        let (pk, keys, mut r) = setup(1, 4);
        assert_eq!(PublicKey::decoded(&pk.encoded()).unwrap(), pk);
        let n = generate_nonce(&keys[0], &mut r);
        let c = n.commitment().clone();
        assert_eq!(NonceCommitment::decoded(&c.encoded()).unwrap(), c);
        let n1 = generate_nonce(&keys[1], &mut r);
        let commits = vec![c, n1.commitment().clone()];
        let s = sign_share(&keys[0], n, b"m", &commits).unwrap();
        assert_eq!(SignatureShare::decoded(&s.encoded()).unwrap(), s);
        let s1 = sign_share(&keys[1], n1, b"m", &commits).unwrap();
        let sig = combine(&pk, b"m", &commits, &[s, s1]).unwrap();
        assert_eq!(Signature::decoded(&sig.encoded()).unwrap(), sig);
    }
}
