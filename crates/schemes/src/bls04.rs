//! BLS04 — the Boneh–Lynn–Shacham threshold signature over BN254.
//!
//! Short signatures in G1, public keys in G2. Key homomorphism makes the
//! scheme directly threshold-friendly (paper §3.5): partial signatures
//! are verified with a pairing equation against per-party verification
//! keys, and the combined signature is an ordinary BLS signature.
//!
//! # Example
//!
//! ```
//! use theta_schemes::common::ThresholdParams;
//! use theta_schemes::bls04;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ThresholdParams::new(1, 4).unwrap();
//! let (pk, shares) = bls04::keygen(params, &mut rng);
//! let s1 = bls04::sign_share(&shares[0], b"block 42").unwrap();
//! let s3 = bls04::sign_share(&shares[3], b"block 42").unwrap();
//! let sig = bls04::combine(&pk, b"block 42", &[s1, s3]).unwrap();
//! assert!(bls04::verify(&pk, b"block 42", &sig));
//! ```

use crate::common::{
    bisect_invalid, lagrange_at_zero, lagrange_coeffs_at_zero, shamir_share, PartyId,
    ThresholdParams,
};
use crate::error::SchemeError;
use crate::hashing::{hash_to_fr, hash_to_g1, hash_to_key};
use crate::wire::{get_fr, get_g1, get_g2, put_fr, put_g1, put_g2};
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::bn254::{pairing_check, Fr, G1, G2};
use theta_math::msm::msm;

const D_MSG: &str = "thetacrypt/bls04/message/v1";
const D_BATCH: &str = "thetacrypt/bls04/batch-weights/v1";

/// The BLS threshold public key `Y = x·P2` with verification keys
/// `Y_i = x_i·P2`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    params: ThresholdParams,
    y: G2,
    verification_keys: Vec<G2>,
}

impl PublicKey {
    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The verification key of `party`, if in range.
    pub fn verification_key(&self, party: PartyId) -> Option<&G2> {
        let idx = party.value().checked_sub(1)? as usize;
        self.verification_keys.get(idx)
    }

    /// The group public key.
    pub fn group_key(&self) -> &G2 {
        &self.y
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        put_g2(w, &self.y);
        (self.verification_keys.len() as u32).encode(w);
        for vk in &self.verification_keys {
            put_g2(w, vk);
        }
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let params = ThresholdParams::decode(r)?;
        let y = get_g2(r)?;
        let count = u32::decode(r)? as usize;
        if count != params.n() as usize {
            return Err(theta_codec::CodecError::InvalidValue(
                "verification key count != n".into(),
            ));
        }
        let mut verification_keys = Vec::with_capacity(count);
        for _ in 0..count {
            verification_keys.push(get_g2(r)?);
        }
        Ok(PublicKey { params, y, verification_keys })
    }
}

/// One party's signing share `x_i`.
#[derive(Clone)]
pub struct KeyShare {
    id: PartyId,
    x_i: Fr,
    public: PublicKey,
}

impl KeyShare {
    /// The owning party.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The common public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Constant-time comparison: ids must match and the secret halves
    /// are compared without short-circuiting (`theta_math::ct`), so
    /// timing reveals nothing about where two shares differ.
    #[must_use]
    pub fn ct_eq(&self, other: &KeyShare) -> bool {
        self.id == other.id && self.x_i.ct_eq(&other.x_i)
    }
}

/// Redacted: a key share must never leak its secret through logs or
/// panic messages, so only the owner id is printed.
impl std::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("id", &self.id)
            .field("x_i", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// On drop the secret scalar is wiped (volatile writes the optimizer cannot elide), so
/// freed heap pages never retain key material.
impl Drop for KeyShare {
    fn drop(&mut self) {
        self.x_i.wipe();
    }
}

impl Encode for KeyShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_fr(w, &self.x_i);
        self.public.encode(w);
    }
}

impl Decode for KeyShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(KeyShare {
            id: PartyId::decode(r)?,
            x_i: get_fr(r)?,
            public: PublicKey::decode(r)?,
        })
    }
}

/// A partial signature `σ_i = x_i·H(m)` in G1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignatureShare {
    id: PartyId,
    sigma_i: G1,
}

impl SignatureShare {
    /// The producing party.
    pub fn id(&self) -> PartyId {
        self.id
    }
}

impl Encode for SignatureShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_g1(w, &self.sigma_i);
    }
}

impl Decode for SignatureShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(SignatureShare { id: PartyId::decode(r)?, sigma_i: get_g1(r)? })
    }
}

/// A combined BLS signature (one G1 point, 33 bytes compressed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    sigma: G1,
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        put_g1(w, &self.sigma);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Signature { sigma: get_g1(r)? })
    }
}

/// Dealer key generation.
pub fn keygen(params: ThresholdParams, rng: &mut dyn RngCore) -> (PublicKey, Vec<KeyShare>) {
    let x = Fr::random(rng);
    let y = G2::mul_generator(&x);
    let shares = shamir_share(&x, params, rng);
    let verification_keys: Vec<G2> =
        shares.iter().map(|(_, x_i)| G2::mul_generator(x_i)).collect();
    let public = PublicKey { params, y, verification_keys };
    let key_shares = shares
        .into_iter()
        .map(|(id, x_i)| KeyShare { id, x_i, public: public.clone() })
        .collect();
    (public, key_shares)
}

/// Hashes the message to G1 (exposed so callers can pre-hash once).
///
/// # Errors
///
/// [`SchemeError::HashToGroupFailed`] (cryptographically unreachable).
pub fn hash_message(message: &[u8]) -> Result<G1, SchemeError> {
    hash_to_g1(D_MSG, &[message])
}

/// Produces this party's partial signature.
///
/// # Errors
///
/// Propagates hash-to-group failure (cryptographically unreachable).
pub fn sign_share(key: &KeyShare, message: &[u8]) -> Result<SignatureShare, SchemeError> {
    let h = hash_message(message)?;
    Ok(SignatureShare { id: key.id, sigma_i: h.mul(&key.x_i) })
}

/// Verifies a partial signature with the pairing equation
/// `e(σ_i, P2) == e(H(m), Y_i)` (the "Pairings" verification strategy of
/// Table 1 — no ZKP needed).
pub fn verify_share(pk: &PublicKey, message: &[u8], share: &SignatureShare) -> bool {
    let Ok(h) = hash_message(message) else {
        return false;
    };
    verify_share_with_hash(pk, &h, share)
}

fn verify_share_with_hash(pk: &PublicKey, h: &G1, share: &SignatureShare) -> bool {
    let Some(vk) = pk.verification_key(share.id) else {
        return false;
    };
    pairing_check(&share.sigma_i, &G2::generator(), h, vk)
}

/// One pairing-product check for a whole sub-batch of shares: with
/// Fiat–Shamir weights `r_i`, `e(Σ r_i σ_i, P2) == e(H(m), Σ r_i Y_i)`.
/// Both sums are MSMs, so `k` shares cost two pairings + two MSMs
/// instead of `2k` pairings.
fn batch_holds(pk: &PublicKey, h: &G1, shares: &[SignatureShare]) -> bool {
    match shares.len() {
        0 => return true,
        1 => return verify_share_with_hash(pk, h, &shares[0]),
        _ => {}
    }
    let mut vks = Vec::with_capacity(shares.len());
    let mut transcript: Vec<Vec<u8>> = Vec::with_capacity(shares.len());
    for share in shares {
        let Some(vk) = pk.verification_key(share.id) else {
            return false;
        };
        vks.push(*vk);
        let mut item = Vec::with_capacity(35);
        item.extend_from_slice(&share.id.value().to_le_bytes());
        item.extend_from_slice(&share.sigma_i.to_compressed());
        transcript.push(item);
    }
    let items: Vec<&[u8]> = transcript.iter().map(|t| t.as_slice()).collect();
    let seed = hash_to_key(D_BATCH, &items);
    let weights: Vec<Fr> = (0..shares.len() as u64)
        .map(|idx| hash_to_fr(D_BATCH, &[&seed, &idx.to_le_bytes()]))
        .collect();
    let coeffs: Vec<&theta_math::BigUint> = weights.iter().map(|w| w.to_biguint()).collect();
    let sigmas: Vec<G1> = shares.iter().map(|s| s.sigma_i).collect();
    let lhs = msm(&sigmas, &coeffs);
    let rhs = msm(&vks, &coeffs);
    pairing_check(&lhs, &G2::generator(), h, &rhs)
}

/// Captures one partial-signature check as a detached
/// [`crate::batch::PendingCheck`] so the orchestration layer can fold it
/// into a cross-instance pairing product. `h` is the pre-hashed message
/// (via [`hash_message`], computed once per instance).
pub fn pending_check_with_hash(
    pk: &PublicKey,
    h: &G1,
    share: &SignatureShare,
) -> crate::batch::PendingCheck {
    match pk.verification_key(share.id) {
        Some(vk) => crate::batch::PendingCheck::Bls04 { h: *h, sigma: share.sigma_i, vk: *vk },
        None => crate::batch::PendingCheck::Invalid,
    }
}

/// Verifies a batch of partial signatures with one pairing-product
/// equation (random linear combination); on failure, bisection locates
/// the first invalid share.
///
/// # Errors
///
/// [`SchemeError::InvalidShare`] naming the first offending party.
pub fn verify_shares_batch(
    pk: &PublicKey,
    message: &[u8],
    shares: &[SignatureShare],
) -> Result<(), SchemeError> {
    let h = hash_message(message)?;
    let check = |r: std::ops::Range<usize>| batch_holds(pk, &h, &shares[r]);
    match bisect_invalid(shares.len(), &check) {
        None => Ok(()),
        Some(i) => Err(SchemeError::InvalidShare { party: shares[i].id.value() }),
    }
}

/// Combines `t+1` verified partial signatures into a full signature and
/// verifies the result (the paper always enables both checks, §4.4).
///
/// Share verification is batched into a single pairing-product equation
/// and the Lagrange combination `σ = Σ λ_i σ_i` runs as one MSM.
///
/// # Errors
///
/// - [`SchemeError::InvalidShare`] when a share fails its pairing check.
/// - [`SchemeError::NotEnoughShares`] with fewer than `t+1` shares.
/// - [`SchemeError::InvalidSignature`] if the assembled signature fails
///   final verification (cannot happen with verified shares).
pub fn combine(
    pk: &PublicKey,
    message: &[u8],
    shares: &[SignatureShare],
) -> Result<Signature, SchemeError> {
    verify_shares_batch(pk, message, shares)?;
    combine_preverified(pk, message, shares)
}

/// Combines shares that were **already verified individually** (e.g. by
/// the cross-instance batch settle), skipping the per-combine batch
/// verification so only the Lagrange MSM and the final signature check
/// remain. Callers must not pass unverified shares: an invalid share
/// would surface only as [`SchemeError::InvalidSignature`] after
/// interpolation, without naming the culprit.
pub fn combine_preverified(
    pk: &PublicKey,
    message: &[u8],
    shares: &[SignatureShare],
) -> Result<Signature, SchemeError> {
    let need = pk.params.quorum() as usize;
    if shares.len() < need {
        return Err(SchemeError::NotEnoughShares { have: shares.len(), need });
    }
    let quorum = &shares[..need];
    let ids: Vec<PartyId> = quorum.iter().map(|s| s.id).collect();
    let lambdas = lagrange_coeffs_at_zero::<Fr>(&ids)?;
    let sigmas: Vec<G1> = quorum.iter().map(|s| s.sigma_i).collect();
    let coeffs: Vec<&theta_math::BigUint> = lambdas.iter().map(|l| l.to_biguint()).collect();
    let sigma = msm(&sigmas, &coeffs);
    let sig = Signature { sigma };
    if !verify(pk, message, &sig) {
        return Err(SchemeError::InvalidSignature);
    }
    Ok(sig)
}

/// Pre-optimization reference path: one pairing check per share and a
/// serial per-share Lagrange combination. Kept (hidden from docs) so
/// benchmarks and property tests can compare the batched kernels against
/// the straightforward implementation they replaced.
#[doc(hidden)]
pub fn combine_serial_baseline(
    pk: &PublicKey,
    message: &[u8],
    shares: &[SignatureShare],
) -> Result<Signature, SchemeError> {
    for share in shares {
        if !verify_share(pk, message, share) {
            return Err(SchemeError::InvalidShare { party: share.id.value() });
        }
    }
    let need = pk.params.quorum() as usize;
    if shares.len() < need {
        return Err(SchemeError::NotEnoughShares { have: shares.len(), need });
    }
    let quorum = &shares[..need];
    let ids: Vec<PartyId> = quorum.iter().map(|s| s.id).collect();
    let mut sigma = G1::identity();
    for share in quorum {
        let lambda = lagrange_at_zero::<Fr>(share.id, &ids)?;
        sigma = sigma.add(&share.sigma_i.mul(&lambda));
    }
    let sig = Signature { sigma };
    if !verify(pk, message, &sig) {
        return Err(SchemeError::InvalidSignature);
    }
    Ok(sig)
}

/// Verifies a combined signature: `e(σ, P2) == e(H(m), Y)`.
pub fn verify(pk: &PublicKey, message: &[u8], sig: &Signature) -> bool {
    let Ok(h) = hash_message(message) else {
        return false;
    };
    pairing_check(&sig.sigma, &G2::generator(), &h, &pk.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xb15)
    }

    fn setup(t: u16, n: u16) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rng();
        let params = ThresholdParams::new(t, n).unwrap();
        let (pk, shares) = keygen(params, &mut r);
        (pk, shares, r)
    }

    #[test]
    fn sign_and_verify_quorum() {
        let (pk, shares, _) = setup(1, 4);
        let msg = b"hello threshold world";
        let partials: Vec<_> = shares[..2]
            .iter()
            .map(|s| sign_share(s, msg).unwrap())
            .collect();
        let sig = combine(&pk, msg, &partials).unwrap();
        assert!(verify(&pk, msg, &sig));
        assert!(!verify(&pk, b"other message", &sig));
    }

    #[test]
    fn signature_is_unique_across_quorums() {
        // BLS is deterministic: any quorum combines to the same signature.
        let (pk, shares, _) = setup(1, 4);
        let msg = b"deterministic";
        let all: Vec<_> = shares.iter().map(|s| sign_share(s, msg).unwrap()).collect();
        let sig_a = combine(&pk, msg, &[all[0].clone(), all[1].clone()]).unwrap();
        let sig_b = combine(&pk, msg, &[all[2].clone(), all[3].clone()]).unwrap();
        assert_eq!(sig_a, sig_b);
    }

    #[test]
    fn share_verification() {
        let (pk, shares, _) = setup(1, 4);
        let msg = b"m";
        let good = sign_share(&shares[0], msg).unwrap();
        assert!(verify_share(&pk, msg, &good));
        assert!(!verify_share(&pk, b"wrong", &good));
        let forged = SignatureShare { id: PartyId(2), sigma_i: good.sigma_i };
        assert!(!verify_share(&pk, msg, &forged));
    }

    #[test]
    fn bad_share_rejected_in_combine() {
        let (pk, shares, _) = setup(1, 4);
        let msg = b"m";
        let mut bad = sign_share(&shares[0], msg).unwrap();
        bad.sigma_i = bad.sigma_i.add(&G1::generator());
        let good = sign_share(&shares[1], msg).unwrap();
        assert!(matches!(
            combine(&pk, msg, &[bad, good]),
            Err(SchemeError::InvalidShare { party: 1 })
        ));
    }

    #[test]
    fn not_enough_shares() {
        let (pk, shares, _) = setup(2, 7);
        let msg = b"m";
        let partials: Vec<_> = shares[..2]
            .iter()
            .map(|s| sign_share(s, msg).unwrap())
            .collect();
        assert!(matches!(
            combine(&pk, msg, &partials),
            Err(SchemeError::NotEnoughShares { have: 2, need: 3 })
        ));
    }

    #[test]
    fn codec_roundtrips() {
        let (pk, shares, _) = setup(1, 4);
        assert_eq!(PublicKey::decoded(&pk.encoded()).unwrap(), pk);
        let ks = KeyShare::decoded(&shares[0].encoded()).unwrap();
        assert_eq!(ks.id(), shares[0].id());
        let msg = b"m";
        let share = sign_share(&shares[0], msg).unwrap();
        assert_eq!(SignatureShare::decoded(&share.encoded()).unwrap(), share);
        let partials: Vec<_> = shares[..2]
            .iter()
            .map(|s| sign_share(s, msg).unwrap())
            .collect();
        let sig = combine(&pk, msg, &partials).unwrap();
        assert_eq!(Signature::decoded(&sig.encoded()).unwrap(), sig);
    }

    #[test]
    fn empty_message_signable() {
        let (pk, shares, _) = setup(0, 1);
        let sig = combine(&pk, b"", &[sign_share(&shares[0], b"").unwrap()]).unwrap();
        assert!(verify(&pk, b"", &sig));
    }

    #[test]
    fn batch_verify_accepts_valid_and_names_culprit() {
        let (pk, shares, _) = setup(2, 7);
        let msg = b"batched";
        let mut partials: Vec<_> = shares
            .iter()
            .map(|s| sign_share(s, msg).unwrap())
            .collect();
        assert!(verify_shares_batch(&pk, msg, &partials).is_ok());
        // Tamper one share: the batch equation fails and bisection names
        // exactly that party.
        partials[4].sigma_i = partials[4].sigma_i.double();
        assert_eq!(
            verify_shares_batch(&pk, msg, &partials),
            Err(SchemeError::InvalidShare { party: partials[4].id.value() })
        );
        // Combine propagates the same error.
        assert!(matches!(
            combine(&pk, msg, &partials),
            Err(SchemeError::InvalidShare { .. })
        ));
    }

    #[test]
    fn batch_verify_rejects_foreign_party() {
        let (pk, shares, _) = setup(1, 4);
        let msg = b"m";
        let mut share = sign_share(&shares[0], msg).unwrap();
        share.id = PartyId(9);
        assert_eq!(
            verify_shares_batch(&pk, msg, &[share]),
            Err(SchemeError::InvalidShare { party: 9 })
        );
    }
}
