//! SG02 — the Shoup–Gennaro TDH2 threshold cryptosystem.
//!
//! The first non-interactive threshold cipher provably CCA-secure, over
//! the DDH assumption (paper Table 1: hardness DL, verification ZKP).
//! Instantiated on Ed25519 exactly as the paper does, with the hybrid
//! approach: the threshold layer protects a fresh 32-byte key, the
//! payload is sealed with ChaCha20-Poly1305 under that key.
//!
//! # Example
//!
//! ```
//! use theta_schemes::common::ThresholdParams;
//! use theta_schemes::sg02;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ThresholdParams::new(1, 4).unwrap();
//! let (pk, shares) = sg02::keygen(params, &mut rng);
//! let ct = sg02::encrypt(&pk, b"label", b"front-running protected tx", &mut rng);
//!
//! let d1 = sg02::create_decryption_share(&shares[0], &ct, &mut rng).unwrap();
//! let d2 = sg02::create_decryption_share(&shares[2], &ct, &mut rng).unwrap();
//! let plain = sg02::combine(&pk, &ct, &[d1, d2]).unwrap();
//! assert_eq!(plain, b"front-running protected tx");
//! ```

use crate::common::{
    bisect_invalid, lagrange_at_zero, lagrange_coeffs_at_zero, shamir_share, PartyId,
    ThresholdParams,
};
use crate::dleq::{DleqInstance, DleqProof};
use crate::error::SchemeError;
use crate::hashing::{hash_to_ed25519, hash_to_ed25519_scalar, hash_to_key};
use crate::wire::{get_point, get_scalar, put_point, put_scalar};
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::ed25519::{Point, Scalar};
use theta_primitives::aead;

const D_GBAR: &str = "thetacrypt/sg02/gbar/v1";
const D_MASK: &str = "thetacrypt/sg02/mask/v1";
const D_CHALLENGE: &str = "thetacrypt/sg02/challenge/v1";
const D_SHARE: &str = "thetacrypt/sg02/share-dleq/v1";
const D_NONCE: &str = "thetacrypt/sg02/nonce/v1";

/// The SG02 public key: group element `h = g^x`, the derived second
/// generator `ḡ`, and per-party verification keys `h_i = g^{x_i}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    params: ThresholdParams,
    h: Point,
    g_bar: Point,
    verification_keys: Vec<Point>,
}

impl PublicKey {
    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The verification key of `party`, if in range.
    pub fn verification_key(&self, party: PartyId) -> Option<&Point> {
        let idx = party.value().checked_sub(1)? as usize;
        self.verification_keys.get(idx)
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        put_point(w, &self.h);
        put_point(w, &self.g_bar);
        (self.verification_keys.len() as u32).encode(w);
        for vk in &self.verification_keys {
            put_point(w, vk);
        }
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let params = ThresholdParams::decode(r)?;
        let h = get_point(r)?;
        let g_bar = get_point(r)?;
        let count = u32::decode(r)? as usize;
        if count != params.n() as usize {
            return Err(theta_codec::CodecError::InvalidValue(
                "verification key count != n".into(),
            ));
        }
        let mut verification_keys = Vec::with_capacity(count);
        for _ in 0..count {
            verification_keys.push(get_point(r)?);
        }
        Ok(PublicKey { params, h, g_bar, verification_keys })
    }
}

/// One party's SG02 key share `x_i` plus the common public key.
#[derive(Clone)]
pub struct KeyShare {
    id: PartyId,
    x_i: Scalar,
    public: PublicKey,
}

impl KeyShare {
    /// The owning party.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The common public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Constant-time comparison: ids must match and the secret halves
    /// are compared without short-circuiting (`theta_math::ct`), so
    /// timing reveals nothing about where two shares differ.
    #[must_use]
    pub fn ct_eq(&self, other: &KeyShare) -> bool {
        self.id == other.id && self.x_i.ct_eq(&other.x_i)
    }
}

/// Redacted: a key share must never leak its secret through logs or
/// panic messages, so only the owner id is printed.
impl std::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("id", &self.id)
            .field("x_i", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// On drop the secret scalar is wiped (volatile writes the optimizer cannot elide), so
/// freed heap pages never retain key material.
impl Drop for KeyShare {
    fn drop(&mut self) {
        self.x_i.wipe();
    }
}

impl Encode for KeyShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_scalar(w, &self.x_i);
        self.public.encode(w);
    }
}

impl Decode for KeyShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(KeyShare {
            id: PartyId::decode(r)?,
            x_i: get_scalar(r)?,
            public: PublicKey::decode(r)?,
        })
    }
}

/// A TDH2 ciphertext: the key box `c_k` with its consistency proof
/// `(u, ū, e, f)`, the label, and the AEAD-sealed payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext {
    c_k: [u8; 32],
    label: Vec<u8>,
    u: Point,
    u_bar: Point,
    e: Scalar,
    f: Scalar,
    payload: Vec<u8>,
}

impl Ciphertext {
    /// The ciphertext label (bound by the CCA proof).
    pub fn label(&self) -> &[u8] {
        &self.label
    }

    /// Total serialized payload size in bytes.
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Stable identifier for protocol instances: hash of the encoding.
    pub fn fingerprint(&self) -> [u8; 32] {
        hash_to_key("thetacrypt/sg02/fingerprint/v1", &[&self.encoded()])
    }
}

impl Encode for Ciphertext {
    fn encode(&self, w: &mut Writer) {
        self.c_k.encode(w);
        self.label.encode(w);
        put_point(w, &self.u);
        put_point(w, &self.u_bar);
        put_scalar(w, &self.e);
        put_scalar(w, &self.f);
        self.payload.encode(w);
    }
}

impl Decode for Ciphertext {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Ciphertext {
            c_k: <[u8; 32]>::decode(r)?,
            label: Vec::<u8>::decode(r)?,
            u: get_point(r)?,
            u_bar: get_point(r)?,
            e: get_scalar(r)?,
            f: get_scalar(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// A decryption share `u_i = u^{x_i}` with its DLEQ validity proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecryptionShare {
    id: PartyId,
    u_i: Point,
    proof: DleqProof,
}

impl DecryptionShare {
    /// The producing party.
    pub fn id(&self) -> PartyId {
        self.id
    }
}

impl Encode for DecryptionShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_point(w, &self.u_i);
        self.proof.encode(w);
    }
}

impl Decode for DecryptionShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(DecryptionShare {
            id: PartyId::decode(r)?,
            u_i: get_point(r)?,
            proof: DleqProof::decode(r)?,
        })
    }
}

/// Dealer key generation: samples `x`, Shamir-shares it, and publishes
/// `h = g^x` with per-party verification keys.
pub fn keygen(params: ThresholdParams, rng: &mut dyn RngCore) -> (PublicKey, Vec<KeyShare>) {
    let x = Scalar::random(rng);
    let h = Point::mul_base(&x);
    let g_bar = hash_to_ed25519(D_GBAR, &[&h.compress()]).expect("hash-to-curve");
    let shares = shamir_share(&x, params, rng);
    let verification_keys: Vec<Point> =
        shares.iter().map(|(_, x_i)| Point::mul_base(x_i)).collect();
    let public = PublicKey { params, h, g_bar, verification_keys };
    let key_shares = shares
        .into_iter()
        .map(|(id, x_i)| KeyShare { id, x_i, public: public.clone() })
        .collect();
    (public, key_shares)
}

fn challenge(
    c_k: &[u8; 32],
    label: &[u8],
    u: &Point,
    w: &Point,
    u_bar: &Point,
    w_bar: &Point,
) -> Scalar {
    hash_to_ed25519_scalar(
        D_CHALLENGE,
        &[
            c_k,
            label,
            &u.compress(),
            &w.compress(),
            &u_bar.compress(),
            &w_bar.compress(),
        ],
    )
}

fn payload_nonce(c_k: &[u8; 32], u: &Point) -> [u8; 12] {
    let full = hash_to_key(D_NONCE, &[c_k, &u.compress()]);
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&full[..12]);
    nonce
}

/// Encrypts `message` under the threshold public key with a `label`
/// (the label binds context, e.g. a block height, into the CCA proof).
pub fn encrypt(pk: &PublicKey, label: &[u8], message: &[u8], rng: &mut dyn RngCore) -> Ciphertext {
    // Fresh symmetric key, threshold-boxed TDH2-style.
    let mut k = [0u8; 32];
    rng.fill_bytes(&mut k);
    let r = Scalar::random(rng);
    let s = Scalar::random(rng);
    let u = Point::mul_base(&r);
    let w = Point::mul_base(&s);
    let u_bar = pk.g_bar.mul(&r);
    let w_bar = pk.g_bar.mul(&s);
    let mask = hash_to_key(D_MASK, &[&pk.h.mul(&r).compress()]);
    let mut c_k = [0u8; 32];
    for i in 0..32 {
        c_k[i] = k[i] ^ mask[i];
    }
    let e = challenge(&c_k, label, &u, &w, &u_bar, &w_bar);
    let f = s.add(&r.mul(&e));
    let nonce = payload_nonce(&c_k, &u);
    let payload = aead::seal(&k, &nonce, label, message);
    Ciphertext { c_k, label: label.to_vec(), u, u_bar, e, f, payload }
}

/// Publicly checks ciphertext consistency (the TDH2 CCA validity test).
pub fn verify_ciphertext(pk: &PublicKey, ct: &Ciphertext) -> bool {
    // w = g^f · u^{−e},  w̄ = ḡ^f · ū^{−e}
    let w = Point::mul_base(&ct.f).sub(&ct.u.mul(&ct.e));
    let w_bar = pk.g_bar.mul(&ct.f).sub(&ct.u_bar.mul(&ct.e));
    let expect = challenge(&ct.c_k, &ct.label, &ct.u, &w, &ct.u_bar, &w_bar);
    expect == ct.e
}

/// Produces this party's decryption share `u^{x_i}` with a DLEQ proof.
///
/// # Errors
///
/// [`SchemeError::InvalidCiphertext`] when the ciphertext fails its
/// validity check (decrypting invalid ciphertexts would break CCA).
pub fn create_decryption_share(
    key: &KeyShare,
    ct: &Ciphertext,
    rng: &mut dyn RngCore,
) -> Result<DecryptionShare, SchemeError> {
    if !verify_ciphertext(&key.public, ct) {
        return Err(SchemeError::InvalidCiphertext("TDH2 validity check failed".into()));
    }
    let u_i = ct.u.mul(&key.x_i);
    let h_i = key
        .public
        .verification_key(key.id)
        .ok_or_else(|| SchemeError::KeyMismatch("party id outside n".into()))?;
    let proof = DleqProof::prove(D_SHARE, &Point::base(), h_i, &ct.u, &u_i, &key.x_i, rng);
    Ok(DecryptionShare { id: key.id, u_i, proof })
}

/// Verifies another party's decryption share.
pub fn verify_decryption_share(pk: &PublicKey, ct: &Ciphertext, share: &DecryptionShare) -> bool {
    let Some(h_i) = pk.verification_key(share.id) else {
        return false;
    };
    share
        .proof
        .verify(D_SHARE, &Point::base(), h_i, &ct.u, &share.u_i)
}

/// Verifies a batch of decryption shares at once.
///
/// All DLEQ proofs are folded into a single multi-scalar multiplication
/// ([`DleqProof::verify_batch`]); when the batch fails, bisection
/// pinpoints the first invalid share so the error still names the
/// offending party.
///
/// # Errors
///
/// [`SchemeError::InvalidShare`] naming the first party whose share
/// fails its proof (or whose id is out of range).
pub fn verify_decryption_shares_batch(
    pk: &PublicKey,
    ct: &Ciphertext,
    shares: &[DecryptionShare],
) -> Result<(), SchemeError> {
    let base = Point::base();
    let mut instances = Vec::with_capacity(shares.len());
    for share in shares {
        let Some(h_i) = pk.verification_key(share.id) else {
            return Err(SchemeError::InvalidShare { party: share.id.value() });
        };
        instances.push(DleqInstance { g1: &base, h1: h_i, g2: &ct.u, h2: &share.u_i, proof: &share.proof });
    }
    let check = |r: std::ops::Range<usize>| DleqProof::verify_batch(D_SHARE, &instances[r]);
    match bisect_invalid(shares.len(), &check) {
        None => Ok(()),
        Some(i) => Err(SchemeError::InvalidShare { party: shares[i].id.value() }),
    }
}

/// Captures one decryption-share check as a detached
/// [`crate::batch::PendingCheck`] so the orchestration layer can fold it
/// into a cross-instance DLEQ batch.
pub fn pending_check(
    pk: &PublicKey,
    ct: &Ciphertext,
    share: &DecryptionShare,
) -> crate::batch::PendingCheck {
    match pk.verification_key(share.id) {
        Some(h_i) => crate::batch::PendingCheck::Dleq {
            domain: D_SHARE,
            g1: Point::base(),
            h1: *h_i,
            g2: ct.u,
            h2: share.u_i,
            proof: share.proof.clone(),
        },
        None => crate::batch::PendingCheck::Invalid,
    }
}

/// Combines `t+1` verified shares and opens the payload.
///
/// Shares failing verification are rejected (robustness: the protocol
/// succeeds as long as `t+1` honest shares are present). Verification is
/// batched — one MSM for all proofs — and the Lagrange interpolation of
/// `u^x` runs as a single multi-scalar multiplication.
///
/// # Errors
///
/// - [`SchemeError::InvalidCiphertext`] when the ciphertext is invalid or
///   the AEAD layer fails to open.
/// - [`SchemeError::InvalidShare`] when a supplied share fails its proof.
/// - [`SchemeError::NotEnoughShares`] with fewer than `t+1` shares.
pub fn combine(
    pk: &PublicKey,
    ct: &Ciphertext,
    shares: &[DecryptionShare],
) -> Result<Vec<u8>, SchemeError> {
    if !verify_ciphertext(pk, ct) {
        return Err(SchemeError::InvalidCiphertext("TDH2 validity check failed".into()));
    }
    verify_decryption_shares_batch(pk, ct, shares)?;
    combine_preverified(pk, ct, shares)
}

/// Combines shares that were **already verified individually** (e.g. by
/// the cross-instance batch settle) against a ciphertext whose validity
/// check already passed (producing our own share checks it), so only the
/// Lagrange MSM and the AEAD open remain on the combine path.
pub fn combine_preverified(
    pk: &PublicKey,
    ct: &Ciphertext,
    shares: &[DecryptionShare],
) -> Result<Vec<u8>, SchemeError> {
    let need = pk.params.quorum() as usize;
    if shares.len() < need {
        return Err(SchemeError::NotEnoughShares { have: shares.len(), need });
    }
    let quorum = &shares[..need];
    let ids: Vec<PartyId> = quorum.iter().map(|s| s.id).collect();
    // h^r = u^x = Π u_i^{λ_i}, as one MSM over the quorum.
    let lambdas = lagrange_coeffs_at_zero::<Scalar>(&ids)?;
    let points: Vec<Point> = quorum.iter().map(|s| s.u_i).collect();
    let coeffs: Vec<&theta_math::BigUint> = lambdas.iter().map(|l| l.to_biguint()).collect();
    let h_r = theta_math::msm::msm(&points, &coeffs);
    let mask = hash_to_key(D_MASK, &[&h_r.compress()]);
    let mut k = [0u8; 32];
    for i in 0..32 {
        k[i] = ct.c_k[i] ^ mask[i];
    }
    let nonce = payload_nonce(&ct.c_k, &ct.u);
    aead::open(&k, &nonce, &ct.label, &ct.payload)
        .map_err(|_| SchemeError::InvalidCiphertext("payload authentication failed".into()))
}

/// Pre-optimization reference path: per-share DLEQ verification and a
/// serial per-share Lagrange interpolation of `u^x`. Kept (hidden from
/// docs) so benchmarks and property tests can compare the batched
/// kernels against the straightforward implementation they replaced.
#[doc(hidden)]
pub fn combine_serial_baseline(
    pk: &PublicKey,
    ct: &Ciphertext,
    shares: &[DecryptionShare],
) -> Result<Vec<u8>, SchemeError> {
    if !verify_ciphertext(pk, ct) {
        return Err(SchemeError::InvalidCiphertext("TDH2 validity check failed".into()));
    }
    for share in shares {
        if !verify_decryption_share(pk, ct, share) {
            return Err(SchemeError::InvalidShare { party: share.id.value() });
        }
    }
    let need = pk.params.quorum() as usize;
    if shares.len() < need {
        return Err(SchemeError::NotEnoughShares { have: shares.len(), need });
    }
    let quorum = &shares[..need];
    let ids: Vec<PartyId> = quorum.iter().map(|s| s.id).collect();
    let mut h_r = Point::identity();
    for share in quorum {
        let lambda = lagrange_at_zero::<Scalar>(share.id, &ids)?;
        h_r = h_r.add(&share.u_i.mul(&lambda));
    }
    let mask = hash_to_key(D_MASK, &[&h_r.compress()]);
    let mut k = [0u8; 32];
    for i in 0..32 {
        k[i] = ct.c_k[i] ^ mask[i];
    }
    let nonce = payload_nonce(&ct.c_k, &ct.u);
    aead::open(&k, &nonce, &ct.label, &ct.payload)
        .map_err(|_| SchemeError::InvalidCiphertext("payload authentication failed".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x5602)
    }

    fn setup(t: u16, n: u16) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rng();
        let params = ThresholdParams::new(t, n).unwrap();
        let (pk, shares) = keygen(params, &mut r);
        (pk, shares, r)
    }

    #[test]
    fn roundtrip_exact_quorum() {
        let (pk, shares, mut r) = setup(2, 7);
        let ct = encrypt(&pk, b"label", b"the message", &mut r);
        assert!(verify_ciphertext(&pk, &ct));
        let dec: Vec<DecryptionShare> = shares[..3]
            .iter()
            .map(|s| create_decryption_share(s, &ct, &mut r).unwrap())
            .collect();
        assert_eq!(combine(&pk, &ct, &dec).unwrap(), b"the message");
    }

    #[test]
    fn any_quorum_works() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        for a in 0..4 {
            for b in (a + 1)..4 {
                let dec = vec![
                    create_decryption_share(&shares[a], &ct, &mut r).unwrap(),
                    create_decryption_share(&shares[b], &ct, &mut r).unwrap(),
                ];
                assert_eq!(combine(&pk, &ct, &dec).unwrap(), b"m");
            }
        }
    }

    #[test]
    fn insufficient_shares_fail() {
        let (pk, shares, mut r) = setup(2, 7);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let dec: Vec<DecryptionShare> = shares[..2]
            .iter()
            .map(|s| create_decryption_share(s, &ct, &mut r).unwrap())
            .collect();
        assert!(matches!(
            combine(&pk, &ct, &dec),
            Err(SchemeError::NotEnoughShares { have: 2, need: 3 })
        ));
    }

    #[test]
    fn share_verification_catches_forgery() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let good = create_decryption_share(&shares[0], &ct, &mut r).unwrap();
        // Re-tag a share under another party id.
        let forged = DecryptionShare { id: PartyId(2), ..good.clone() };
        assert!(verify_decryption_share(&pk, &ct, &good));
        assert!(!verify_decryption_share(&pk, &ct, &forged));
        let other = create_decryption_share(&shares[2], &ct, &mut r).unwrap();
        assert!(matches!(
            combine(&pk, &ct, &[forged, other]),
            Err(SchemeError::InvalidShare { party: 2 })
        ));
    }

    #[test]
    fn robust_against_bad_share_exclusion() {
        // A corrupted share is detected; combining the honest quorum works.
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let mut bad = create_decryption_share(&shares[0], &ct, &mut r).unwrap();
        bad.u_i = bad.u_i.add(&Point::base()); // corrupt the share value
        assert!(!verify_decryption_share(&pk, &ct, &bad));
        let honest: Vec<_> = shares[1..3]
            .iter()
            .map(|s| create_decryption_share(s, &ct, &mut r).unwrap())
            .collect();
        assert_eq!(combine(&pk, &ct, &honest).unwrap(), b"m");
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        // Flip the key box.
        let mut bad = ct.clone();
        bad.c_k[0] ^= 1;
        assert!(!verify_ciphertext(&pk, &bad));
        assert!(create_decryption_share(&shares[0], &bad, &mut r).is_err());
        // Flip payload only: TDH2 proof still holds, AEAD must catch it.
        let mut bad = ct.clone();
        let last = bad.payload.len() - 1;
        bad.payload[last] ^= 1;
        assert!(verify_ciphertext(&pk, &bad));
        let dec: Vec<_> = shares[..2]
            .iter()
            .map(|s| create_decryption_share(s, &bad, &mut r).unwrap())
            .collect();
        assert!(matches!(
            combine(&pk, &bad, &dec),
            Err(SchemeError::InvalidCiphertext(_))
        ));
    }

    #[test]
    fn label_is_bound() {
        let (pk, _, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"label-a", b"m", &mut r);
        let mut swapped = ct.clone();
        swapped.label = b"label-b".to_vec();
        assert!(!verify_ciphertext(&pk, &swapped));
    }

    #[test]
    fn wrong_key_cannot_decrypt() {
        let (pk, _, mut r) = setup(1, 4);
        // An unrelated key pair from an *independent* RNG stream.
        let mut r2 = rand::rngs::StdRng::seed_from_u64(0x9999);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk2, shares2) = keygen(params, &mut r2);
        assert_ne!(pk, pk2);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        // Shares from an unrelated key: proofs fail against pk.
        let dec = create_decryption_share(&shares2[0], &ct, &mut r);
        // The foreign key's g_bar differs, so even the ciphertext validity
        // check fails from that key's perspective; if it somehow passed,
        // the share proof must still fail against pk.
        if let Ok(d) = dec {
            assert!(!verify_decryption_share(&pk, &ct, &d));
        }
    }

    #[test]
    fn codec_roundtrips() {
        let (pk, shares, mut r) = setup(1, 4);
        assert_eq!(PublicKey::decoded(&pk.encoded()).unwrap(), pk);
        let ks = &shares[0];
        let ks2 = KeyShare::decoded(&ks.encoded()).unwrap();
        assert_eq!(ks2.id(), ks.id());
        assert_eq!(ks2.public(), ks.public());
        let ct = encrypt(&pk, b"l", b"payload", &mut r);
        assert_eq!(Ciphertext::decoded(&ct.encoded()).unwrap(), ct);
        let d = create_decryption_share(ks, &ct, &mut r).unwrap();
        assert_eq!(DecryptionShare::decoded(&d.encoded()).unwrap(), d);
    }

    #[test]
    fn fingerprint_distinguishes_ciphertexts() {
        let (pk, _, mut r) = setup(1, 4);
        let a = encrypt(&pk, b"l", b"m", &mut r);
        let b = encrypt(&pk, b"l", b"m", &mut r);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn empty_message_and_large_message() {
        let (pk, shares, mut r) = setup(1, 4);
        for msg in [Vec::new(), vec![0xabu8; 4096]] {
            let ct = encrypt(&pk, b"l", &msg, &mut r);
            let dec: Vec<_> = shares[..2]
                .iter()
                .map(|s| create_decryption_share(s, &ct, &mut r).unwrap())
                .collect();
            assert_eq!(combine(&pk, &ct, &dec).unwrap(), msg);
        }
    }

    #[test]
    fn batch_verify_accepts_valid_and_names_culprit() {
        let (pk, shares, mut r) = setup(2, 7);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let mut ds: Vec<_> = shares
            .iter()
            .map(|s| create_decryption_share(s, &ct, &mut r).unwrap())
            .collect();
        assert!(verify_decryption_shares_batch(&pk, &ct, &ds).is_ok());
        ds[2].u_i = ds[2].u_i.add(&Point::base());
        assert_eq!(
            verify_decryption_shares_batch(&pk, &ct, &ds),
            Err(SchemeError::InvalidShare { party: ds[2].id.value() })
        );
        assert!(matches!(
            combine(&pk, &ct, &ds),
            Err(SchemeError::InvalidShare { .. })
        ));
    }
}
