//! SH00 — Shoup's practical threshold RSA signatures.
//!
//! The first non-interactive robust threshold signature (paper Table 1:
//! hardness RSA, verification ZKP). Keys use safe-prime moduli
//! `N = pq`, `p = 2p′+1`, `q = 2q′+1`; the signing exponent `d` is
//! Shamir-shared over `Z_m` with `m = p′q′`, and each signature share
//! carries Shoup's discrete-log-equality proof in `QR_N`.
//!
//! The paper benchmarks moduli of 512–4096 bits (Table 3 uses 2048).
//! Safe-prime generation is expensive; [`keygen_from_primes`] lets
//! benchmarks cache generated primes.
//!
//! # Example
//!
//! ```
//! use theta_schemes::common::ThresholdParams;
//! use theta_schemes::sh00;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ThresholdParams::new(1, 4).unwrap();
//! // 256-bit modulus keeps the doctest fast; real deployments use ≥ 2048.
//! let (pk, shares) = sh00::keygen(params, 256, &mut rng).unwrap();
//! let s0 = sh00::sign_share(&shares[0], b"msg", &mut rng);
//! let s2 = sh00::sign_share(&shares[2], b"msg", &mut rng);
//! let sig = sh00::combine(&pk, b"msg", &[s0, s2]).unwrap();
//! assert!(sh00::verify(&pk, b"msg", &sig));
//! ```

use crate::common::{PartyId, ThresholdParams};
use crate::error::SchemeError;
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::{
    ext_gcd, generate_safe_prime, mod_inverse, BigInt, BigUint, MontTable, Montgomery, Sign,
};
use theta_primitives::{expand, DomainHasher};

const D_MSG: &str = "thetacrypt/sh00/message/v1";
const D_PROOF: &str = "thetacrypt/sh00/share-proof/v1";

/// Bit length of the proof challenge (Shoup's L1).
const L1_BITS: usize = 128;

/// The SH00 public key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    params: ThresholdParams,
    /// RSA modulus `N = pq` (safe primes).
    n: BigUint,
    /// Public verification exponent (prime, > number of parties).
    e: BigUint,
    /// Verification base: a generator of `QR_N`.
    v: BigUint,
    /// Per-party verification values `v_i = v^{s_i} mod N`.
    v_keys: Vec<BigUint>,
}

impl PublicKey {
    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The RSA modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Modulus size in bits.
    pub fn modulus_bits(&self) -> usize {
        self.n.bits()
    }

    /// The verification value of `party`, if in range.
    pub fn verification_key(&self, party: PartyId) -> Option<&BigUint> {
        let idx = party.value().checked_sub(1)? as usize;
        self.v_keys.get(idx)
    }

    /// `Δ = n!`.
    fn delta(&self) -> BigUint {
        factorial(self.params.n())
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        crate::wire::put_biguint(w, &self.n);
        crate::wire::put_biguint(w, &self.e);
        crate::wire::put_biguint(w, &self.v);
        (self.v_keys.len() as u32).encode(w);
        for vk in &self.v_keys {
            crate::wire::put_biguint(w, vk);
        }
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let params = ThresholdParams::decode(r)?;
        let n = crate::wire::get_biguint(r)?;
        let e = crate::wire::get_biguint(r)?;
        let v = crate::wire::get_biguint(r)?;
        let count = u32::decode(r)? as usize;
        if count != params.n() as usize {
            return Err(theta_codec::CodecError::InvalidValue(
                "verification key count != n".into(),
            ));
        }
        let mut v_keys = Vec::with_capacity(count);
        for _ in 0..count {
            v_keys.push(crate::wire::get_biguint(r)?);
        }
        Ok(PublicKey { params, n, e, v, v_keys })
    }
}

/// One party's share `s_i` of the signing exponent.
#[derive(Clone)]
pub struct KeyShare {
    id: PartyId,
    s_i: BigUint,
    public: PublicKey,
}

impl KeyShare {
    /// The owning party.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The common public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Constant-time comparison: ids must match and the secret halves
    /// are compared without short-circuiting (`theta_math::ct`), so
    /// timing reveals nothing about where two shares differ.
    #[must_use]
    pub fn ct_eq(&self, other: &KeyShare) -> bool {
        self.id == other.id && self.s_i.ct_eq(&other.s_i)
    }
}

/// Redacted: a key share must never leak its secret through logs or
/// panic messages, so only the owner id is printed.
impl std::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("id", &self.id)
            .field("s_i", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// On drop the secret exponent share is wiped (volatile writes the optimizer cannot elide), so
/// freed heap pages never retain key material.
impl Drop for KeyShare {
    fn drop(&mut self) {
        self.s_i.wipe();
    }
}

impl Encode for KeyShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        crate::wire::put_biguint(w, &self.s_i);
        self.public.encode(w);
    }
}

impl Decode for KeyShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(KeyShare {
            id: PartyId::decode(r)?,
            s_i: crate::wire::get_biguint(r)?,
            public: PublicKey::decode(r)?,
        })
    }
}

/// A signature share `x_i = x^{2Δ s_i}` with Shoup's validity proof `(c, z)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignatureShare {
    id: PartyId,
    x_i: BigUint,
    c: BigUint,
    z: BigUint,
}

impl SignatureShare {
    /// The producing party.
    pub fn id(&self) -> PartyId {
        self.id
    }
}

impl Encode for SignatureShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        crate::wire::put_biguint(w, &self.x_i);
        crate::wire::put_biguint(w, &self.c);
        crate::wire::put_biguint(w, &self.z);
    }
}

impl Decode for SignatureShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(SignatureShare {
            id: PartyId::decode(r)?,
            x_i: crate::wire::get_biguint(r)?,
            c: crate::wire::get_biguint(r)?,
            z: crate::wire::get_biguint(r)?,
        })
    }
}

/// A standard RSA signature `y` with `y^e = H(m) mod N`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    y: BigUint,
}

impl Encode for Signature {
    fn encode(&self, w: &mut Writer) {
        crate::wire::put_biguint(w, &self.y);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Signature { y: crate::wire::get_biguint(r)? })
    }
}

fn factorial(n: u16) -> BigUint {
    let mut acc = BigUint::one();
    for k in 2..=n as u64 {
        acc = acc.mul_small(k);
    }
    acc
}

/// Dealer key generation with freshly generated safe primes.
///
/// # Errors
///
/// [`SchemeError::InvalidParameters`] when `modulus_bits < 128` or the
/// party count is not below the public exponent 65537.
pub fn keygen(
    params: ThresholdParams,
    modulus_bits: usize,
    rng: &mut dyn RngCore,
) -> Result<(PublicKey, Vec<KeyShare>), SchemeError> {
    if modulus_bits < 128 {
        return Err(SchemeError::InvalidParameters(
            "modulus must be at least 128 bits".into(),
        ));
    }
    let half = modulus_bits / 2;
    let p = generate_safe_prime(half, rng);
    let q = loop {
        let q = generate_safe_prime(modulus_bits - half, rng);
        if q != p {
            break q;
        }
    };
    keygen_from_primes(params, &p, &q, rng)
}

/// Dealer key generation from pre-generated safe primes (used by the
/// benchmark harness to cache expensive 2048/4096-bit primes).
///
/// # Errors
///
/// [`SchemeError::InvalidParameters`] on non-safe primes or too many
/// parties for the fixed exponent 65537.
pub fn keygen_from_primes(
    params: ThresholdParams,
    p: &BigUint,
    q: &BigUint,
    rng: &mut dyn RngCore,
) -> Result<(PublicKey, Vec<KeyShare>), SchemeError> {
    if params.n() as u64 >= 65537 {
        return Err(SchemeError::InvalidParameters(
            "public exponent 65537 requires fewer than 65537 parties".into(),
        ));
    }
    if p == q {
        return Err(SchemeError::InvalidParameters("p == q".into()));
    }
    let one = BigUint::one();
    let p_prime = (p - &one) >> 1;
    let q_prime = (q - &one) >> 1;
    let n = p * q;
    let m = &p_prime * &q_prime;
    let e = BigUint::from_u64(65537);
    let d = mod_inverse(&e, &m).ok_or_else(|| {
        SchemeError::InvalidParameters("e not invertible mod m (primes not safe?)".into())
    })?;

    // Shamir share d over Z_m (no inversion needed for sharing).
    let coeffs: Vec<BigUint> = std::iter::once(d)
        .chain((0..params.t()).map(|_| BigUint::random_below(rng, &m)))
        .collect();
    let shares: Vec<(PartyId, BigUint)> = params
        .parties()
        .map(|id| {
            let x = BigUint::from_u64(id.value() as u64);
            let mut acc = BigUint::zero();
            for c in coeffs.iter().rev() {
                acc = (&(&acc * &x) + c).rem(&m);
            }
            (id, acc)
        })
        .collect();

    // v: a generator of QR_N (a random square is one w.h.p. since QR_N is
    // cyclic of order m = p'q' with overwhelming probability over r).
    let v = loop {
        let r = BigUint::random_below(rng, &n);
        if r.is_zero() || !r.gcd(&n).is_one() {
            continue;
        }
        let v = (&r * &r).rem(&n);
        if !v.is_one() {
            break v;
        }
    };
    // The dealer knows the factorization, so the n verification values
    // are computed with the CRT speedup (~4× per exponentiation).
    let v_keys: Vec<BigUint> = shares
        .iter()
        .map(|(_, s_i)| theta_math::rsa_crt_pow(&v, s_i, p, q))
        .collect();

    let public = PublicKey { params, n, e, v, v_keys };
    let key_shares = shares
        .into_iter()
        .map(|(id, s_i)| KeyShare { id, s_i, public: public.clone() })
        .collect();
    Ok((public, key_shares))
}

/// Maps a message to an element of `Z_N*` (full-domain hash).
fn message_rep(pk: &PublicKey, message: &[u8]) -> BigUint {
    let n_bytes = pk.n.bits().div_ceil(8);
    let mut ctr = 0u32;
    loop {
        let mut seed = Vec::with_capacity(message.len() + 8);
        seed.extend_from_slice(message);
        seed.extend_from_slice(&ctr.to_le_bytes());
        // Oversample by 16 bytes so the reduction bias is negligible.
        let raw = expand(D_MSG, &seed, n_bytes + 16);
        let x = BigUint::from_bytes_be(&raw).rem(&pk.n);
        if !x.is_zero() && !x.is_one() && x.gcd(&pk.n).is_one() {
            return x;
        }
        ctr += 1;
    }
}

fn proof_challenge(
    pk: &PublicKey,
    x_tilde: &BigUint,
    v_i: &BigUint,
    x_i_sq: &BigUint,
    v_prime: &BigUint,
    x_prime: &BigUint,
) -> BigUint {
    let digest = DomainHasher::new(D_PROOF)
        .chain(&pk.n.to_bytes_be())
        .chain(&pk.v.to_bytes_be())
        .chain(&x_tilde.to_bytes_be())
        .chain(&v_i.to_bytes_be())
        .chain(&x_i_sq.to_bytes_be())
        .chain(&v_prime.to_bytes_be())
        .chain(&x_prime.to_bytes_be())
        .finish();
    BigUint::from_bytes_be(&digest[..L1_BITS / 8])
}

/// Produces this party's signature share `x^{2Δ s_i}` with Shoup's
/// correctness proof.
pub fn sign_share(key: &KeyShare, message: &[u8], rng: &mut dyn RngCore) -> SignatureShare {
    let pk = &key.public;
    let ctx = Montgomery::new(pk.n.clone());
    let x = message_rep(pk, message);
    let delta = pk.delta();
    let two_delta = &delta << 1;
    let x_i = ctx.pow(&x, &(&two_delta * &key.s_i));
    // Proof: knowledge of s_i with v_i = v^{s_i} and x_i² = x̃^{s_i},
    // where x̃ = x^{4Δ}.
    let x_tilde = ctx.pow(&x, &(&delta << 2));
    let x_i_sq = (&x_i * &x_i).rem(&pk.n);
    // r is sampled from [0, 2^(|N| + 2·L1)) — wide enough to hide s_i·c.
    let r = BigUint::random_bits(rng, pk.n.bits() + 2 * L1_BITS);
    let v_prime = ctx.pow(&pk.v, &r);
    let x_prime = ctx.pow(&x_tilde, &r);
    let v_i = pk.verification_key(key.id).expect("own id in range");
    let c = proof_challenge(pk, &x_tilde, v_i, &x_i_sq, &v_prime, &x_prime);
    let z = &(&key.s_i * &c) + &r;
    SignatureShare { id: key.id, x_i, c, z }
}

/// Verifies a signature share via the recomputed challenge.
pub fn verify_share(pk: &PublicKey, message: &[u8], share: &SignatureShare) -> bool {
    let ctx = Montgomery::new(pk.n.clone());
    let x = message_rep(pk, message);
    let delta = pk.delta();
    let x_tilde = ctx.pow(&x, &(&delta << 2));
    verify_share_inner(pk, &ctx, &x_tilde, None, share)
}

/// Core proof check with an optional pair of fixed-base tables for `v`
/// and `x̃` (the two message-/key-fixed bases raised to the wide exponent
/// `z`). With tables, the `z`-sized squaring chains disappear and only
/// the 128-bit challenge exponentiations remain.
fn verify_share_inner(
    pk: &PublicKey,
    ctx: &Montgomery,
    x_tilde: &BigUint,
    tables: Option<&(MontTable, MontTable)>,
    share: &SignatureShare,
) -> bool {
    let Some(v_i) = pk.verification_key(share.id) else {
        return false;
    };
    if share.x_i.is_zero() || share.x_i >= pk.n {
        return false;
    }
    let x_i_sq = (&share.x_i * &share.x_i).rem(&pk.n);
    // v' = v^z · v_i^{−c},  x' = x̃^z · (x_i²)^{−c}
    let Some(v_i_inv) = mod_inverse(v_i, &pk.n) else {
        return false;
    };
    let Some(x_i_sq_inv) = mod_inverse(&x_i_sq, &pk.n) else {
        return false;
    };
    let (v_pow_z, xt_pow_z) = match tables {
        Some((vt, xt)) => (
            ctx.pow_precomputed(vt, &share.z),
            ctx.pow_precomputed(xt, &share.z),
        ),
        None => (ctx.pow(&pk.v, &share.z), ctx.pow(x_tilde, &share.z)),
    };
    let v_prime = (&v_pow_z * &ctx.pow(&v_i_inv, &share.c)).rem(&pk.n);
    let x_prime = (&xt_pow_z * &ctx.pow(&x_i_sq_inv, &share.c)).rem(&pk.n);
    proof_challenge(pk, x_tilde, v_i, &x_i_sq, &v_prime, &x_prime) == share.c
}

/// Verifies many shares over one message with shared precomputation: the
/// Montgomery context, full-domain hash, `x̃ = x^{4Δ}` and — for two or
/// more shares — fixed-base tables for `v` and `x̃` are computed once and
/// reused, removing the per-share wide-exponent squaring chains.
///
/// # Errors
///
/// [`SchemeError::InvalidShare`] naming the first party whose proof
/// fails.
pub fn verify_shares_batch(
    pk: &PublicKey,
    message: &[u8],
    shares: &[SignatureShare],
) -> Result<(), SchemeError> {
    if shares.is_empty() {
        return Ok(());
    }
    let ctx = Montgomery::new(pk.n.clone());
    let x = message_rep(pk, message);
    let delta = pk.delta();
    let x_tilde = ctx.pow(&x, &(&delta << 2));
    // Honest z < 2^(|N| + 2·L1) + m·2^L1; oversized exponents fall back
    // to the generic pow inside pow_precomputed, so this is a fast path,
    // not a correctness bound.
    let z_bits = pk.n.bits() + 2 * L1_BITS + 8;
    let tables = (shares.len() >= 2)
        .then(|| (ctx.precompute_base(&pk.v, z_bits), ctx.precompute_base(&x_tilde, z_bits)));
    for share in shares {
        if !verify_share_inner(pk, &ctx, &x_tilde, tables.as_ref(), share) {
            return Err(SchemeError::InvalidShare { party: share.id.value() });
        }
    }
    Ok(())
}

/// Integer Lagrange coefficient `λ_i = Δ·Π_{j≠i} j / Π_{j≠i} (j − i)`;
/// exactly divisible by construction (Shoup, Lemma 1).
fn lagrange_integer(i: PartyId, ids: &[PartyId], delta: &BigUint) -> BigInt {
    let mut num = delta.clone();
    let mut den = BigUint::one();
    let mut negative = false;
    for &j in ids {
        if j == i {
            continue;
        }
        num = num.mul_small(j.value() as u64);
        let diff = j.value() as i32 - i.value() as i32;
        if diff < 0 {
            negative = !negative;
        }
        den = den.mul_small(diff.unsigned_abs() as u64);
    }
    let (q, r) = num.divrem(&den);
    debug_assert!(r.is_zero(), "Lagrange numerator must divide exactly");
    BigInt::with_sign(if negative { Sign::Negative } else { Sign::Positive }, q)
}

/// Combines `t+1` verified shares into a standard RSA signature.
///
/// # Errors
///
/// - [`SchemeError::InvalidShare`] when a share fails Shoup's proof.
/// - [`SchemeError::NotEnoughShares`] with fewer than `t+1` shares.
/// - [`SchemeError::InvalidSignature`] should assembly fail.
pub fn combine(
    pk: &PublicKey,
    message: &[u8],
    shares: &[SignatureShare],
) -> Result<Signature, SchemeError> {
    verify_shares_batch(pk, message, shares)?;
    let need = pk.params.quorum() as usize;
    if shares.len() < need {
        return Err(SchemeError::NotEnoughShares { have: shares.len(), need });
    }
    let quorum = &shares[..need];
    let ids: Vec<PartyId> = quorum.iter().map(|s| s.id).collect();
    {
        let mut seen = std::collections::HashSet::new();
        for id in &ids {
            if !seen.insert(id.value()) {
                return Err(SchemeError::InvalidShareSet("duplicate share".into()));
            }
        }
    }

    let ctx = Montgomery::new(pk.n.clone());
    let x = message_rep(pk, message);
    let delta = pk.delta();

    // w = Π x_i^{2·λ_i}; then w^e = x^{e'} with e' = 4Δ². Signed λ_i are
    // handled by inverting the base; the t+1 exponentiations then share
    // one squaring chain via Straus multi-exponentiation.
    let mut bases = Vec::with_capacity(quorum.len());
    let mut exps = Vec::with_capacity(quorum.len());
    for share in quorum {
        let lambda = lagrange_integer(share.id, &ids, &delta);
        exps.push(lambda.magnitude() << 1);
        let base = if lambda.is_negative() {
            mod_inverse(&share.x_i, &pk.n)
                .ok_or_else(|| SchemeError::InvalidShare { party: share.id.value() })?
        } else {
            share.x_i.clone()
        };
        bases.push(base);
    }
    let exp_refs: Vec<&BigUint> = exps.iter().collect();
    let w = ctx.multi_exp(&bases, &exp_refs);

    let e_prime = &(&delta * &delta) << 2; // 4Δ²
    let (g, a, b) = ext_gcd(&e_prime, &pk.e);
    if !g.is_one() {
        return Err(SchemeError::InvalidParameters(
            "gcd(4Δ², e) != 1 — exponent too small for this n".into(),
        ));
    }
    // y = w^a · x^b (signed exponents via modular inverses), again as one
    // two-base multi-exponentiation.
    let signed_base = |base: &BigUint, exp: &BigInt| -> Result<BigUint, SchemeError> {
        if exp.is_negative() {
            mod_inverse(base, &pk.n).ok_or(SchemeError::InvalidSignature)
        } else {
            Ok(base.clone())
        }
    };
    let y_bases = [signed_base(&w, &a)?, signed_base(&x, &b)?];
    let y_exps = [a.magnitude(), b.magnitude()];
    let y = ctx.multi_exp(&y_bases, &y_exps);

    let sig = Signature { y };
    if !verify(pk, message, &sig) {
        return Err(SchemeError::InvalidSignature);
    }
    Ok(sig)
}

/// Standard RSA verification: `y^e == H(m) mod N`.
pub fn verify(pk: &PublicKey, message: &[u8], sig: &Signature) -> bool {
    if sig.y.is_zero() || sig.y >= pk.n {
        return false;
    }
    let ctx = Montgomery::new(pk.n.clone());
    let x = message_rep(pk, message);
    ctx.pow(&sig.y, &pk.e) == x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x5400)
    }

    fn setup(t: u16, n: u16) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rng();
        let params = ThresholdParams::new(t, n).unwrap();
        let (pk, shares) = keygen(params, 256, &mut r).unwrap();
        (pk, shares, r)
    }

    #[test]
    fn sign_and_verify() {
        let (pk, shares, mut r) = setup(1, 4);
        let msg = b"threshold RSA";
        let partials: Vec<_> = shares[..2]
            .iter()
            .map(|s| sign_share(s, msg, &mut r))
            .collect();
        let sig = combine(&pk, msg, &partials).unwrap();
        assert!(verify(&pk, msg, &sig));
        assert!(!verify(&pk, b"other", &sig));
    }

    #[test]
    fn signature_unique_across_quorums() {
        // RSA signatures are unique: every quorum produces the same y.
        let (pk, shares, mut r) = setup(1, 4);
        let msg = b"uniqueness";
        let all: Vec<_> = shares.iter().map(|s| sign_share(s, msg, &mut r)).collect();
        let a = combine(&pk, msg, &[all[0].clone(), all[1].clone()]).unwrap();
        let b = combine(&pk, msg, &[all[2].clone(), all[3].clone()]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn share_proofs_validate() {
        let (pk, shares, mut r) = setup(1, 4);
        let msg = b"m";
        let share = sign_share(&shares[0], msg, &mut r);
        assert!(verify_share(&pk, msg, &share));
        assert!(!verify_share(&pk, b"wrong message", &share));
        let forged = SignatureShare { id: PartyId(2), ..share.clone() };
        assert!(!verify_share(&pk, msg, &forged));
    }

    #[test]
    fn corrupt_share_detected() {
        let (pk, shares, mut r) = setup(1, 4);
        let msg = b"m";
        let mut bad = sign_share(&shares[0], msg, &mut r);
        bad.x_i = (&bad.x_i * &BigUint::from_u64(2)).rem(pk.modulus());
        let good = sign_share(&shares[1], msg, &mut r);
        assert!(!verify_share(&pk, msg, &bad));
        assert!(matches!(
            combine(&pk, msg, &[bad, good]),
            Err(SchemeError::InvalidShare { party: 1 })
        ));
    }

    #[test]
    fn robustness_via_exclusion() {
        // Unlike FROST, dropping the bad share and using an honest quorum
        // succeeds — SH00 is robust.
        let (pk, shares, mut r) = setup(1, 4);
        let msg = b"m";
        let honest: Vec<_> = shares[1..3]
            .iter()
            .map(|s| sign_share(s, msg, &mut r))
            .collect();
        let sig = combine(&pk, msg, &honest).unwrap();
        assert!(verify(&pk, msg, &sig));
    }

    #[test]
    fn not_enough_shares() {
        let (pk, shares, mut r) = setup(2, 7);
        let msg = b"m";
        let partials: Vec<_> = shares[..2]
            .iter()
            .map(|s| sign_share(s, msg, &mut r))
            .collect();
        assert!(matches!(
            combine(&pk, msg, &partials),
            Err(SchemeError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn duplicate_shares_rejected() {
        let (pk, shares, mut r) = setup(1, 4);
        let msg = b"m";
        let s = sign_share(&shares[0], msg, &mut r);
        assert!(matches!(
            combine(&pk, msg, &[s.clone(), s]),
            Err(SchemeError::InvalidShareSet(_))
        ));
    }

    #[test]
    fn lagrange_integer_properties() {
        // Σ λ_i(0) = Δ when interpolating the constant 1... verified via
        // the defining property instead: interpolating f(X)=X at 0 is 0.
        let ids: Vec<PartyId> = [1u16, 2, 5].iter().map(|&v| PartyId(v)).collect();
        let delta = factorial(5);
        let mut acc = BigInt::zero();
        for &i in &ids {
            let l = lagrange_integer(i, &ids, &delta);
            acc = &acc + &(&l * &BigInt::from_i64(i.value() as i64));
        }
        // Δ·f(0) for f(X) = X is zero.
        assert!(acc.is_zero());
        // And for f(X) = 1: Σ λ_i = Δ.
        let mut acc = BigInt::zero();
        for &i in &ids {
            acc = &acc + &lagrange_integer(i, &ids, &delta);
        }
        assert_eq!(acc, BigInt::from_biguint(delta));
    }

    #[test]
    fn different_modulus_sizes() {
        let mut r = rng();
        let params = ThresholdParams::new(0, 1).unwrap();
        for bits in [128usize, 192] {
            let (pk, shares) = keygen(params, bits, &mut r).unwrap();
            // Allow ±2 bits of slack from prime sizing.
            assert!(pk.modulus_bits() >= bits - 2 && pk.modulus_bits() <= bits + 2);
            let msg = b"sized";
            let s = sign_share(&shares[0], msg, &mut r);
            let sig = combine(&pk, msg, &[s]).unwrap();
            assert!(verify(&pk, msg, &sig));
        }
    }

    #[test]
    fn rejects_tiny_modulus() {
        let mut r = rng();
        let params = ThresholdParams::new(0, 1).unwrap();
        assert!(keygen(params, 64, &mut r).is_err());
    }

    #[test]
    fn codec_roundtrips() {
        let (pk, shares, mut r) = setup(1, 4);
        assert_eq!(PublicKey::decoded(&pk.encoded()).unwrap(), pk);
        let ks = KeyShare::decoded(&shares[0].encoded()).unwrap();
        assert_eq!(ks.id(), shares[0].id());
        let s = sign_share(&shares[0], b"m", &mut r);
        assert_eq!(SignatureShare::decoded(&s.encoded()).unwrap(), s);
        let partials: Vec<_> = shares[..2]
            .iter()
            .map(|sh| sign_share(sh, b"m", &mut r))
            .collect();
        let sig = combine(&pk, b"m", &partials).unwrap();
        assert_eq!(Signature::decoded(&sig.encoded()).unwrap(), sig);
    }

    #[test]
    fn batch_verify_matches_individual_and_names_culprit() {
        let (pk, shares, mut r) = setup(1, 4);
        let msg = b"batched rsa";
        let mut partials: Vec<_> = shares
            .iter()
            .map(|s| sign_share(s, msg, &mut r))
            .collect();
        // The table-backed batch path agrees with per-share verification.
        assert!(verify_shares_batch(&pk, msg, &partials).is_ok());
        for s in &partials {
            assert!(verify_share(&pk, msg, s));
        }
        partials[1].z = &partials[1].z + &BigUint::one();
        assert_eq!(
            verify_shares_batch(&pk, msg, &partials),
            Err(SchemeError::InvalidShare { party: partials[1].id.value() })
        );
        assert!(matches!(
            combine(&pk, msg, &partials),
            Err(SchemeError::InvalidShare { .. })
        ));
    }
}
