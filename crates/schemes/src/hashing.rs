//! Hash-to-group and hash-to-scalar maps (try-and-increment, domain
//! separated), used by every scheme's random-oracle instantiation.

use crate::error::SchemeError;
use theta_math::bn254::{Fp, Fr, G1};
use theta_math::ed25519::{Point, Scalar};
use theta_primitives::DomainHasher;

/// Retry budget for try-and-increment (each attempt succeeds w.p. ≈ 1/2,
/// so 128 failures is a 2⁻¹²⁸ event — in practice unreachable).
const MAX_TRIES: u32 = 128;

/// Hashes arbitrary data to a point in the Ed25519 prime-order subgroup.
///
/// # Errors
///
/// [`SchemeError::HashToGroupFailed`] after exhausting the retry budget
/// (cryptographically unreachable).
pub fn hash_to_ed25519(domain: &str, data: &[&[u8]]) -> Result<Point, SchemeError> {
    for ctr in 0..MAX_TRIES {
        let mut h = DomainHasher::new(domain);
        for item in data {
            h.update(item);
        }
        h.update(&ctr.to_le_bytes());
        let digest = h.finish();
        let mut candidate = [0u8; 32];
        candidate.copy_from_slice(&digest[..32]);
        if let Some(p) = Point::from_uniform_bytes(&candidate) {
            return Ok(p);
        }
    }
    Err(SchemeError::HashToGroupFailed)
}

/// Hashes arbitrary data to a non-identity point of BN254 G1.
///
/// # Errors
///
/// [`SchemeError::HashToGroupFailed`] after exhausting the retry budget.
pub fn hash_to_g1(domain: &str, data: &[&[u8]]) -> Result<G1, SchemeError> {
    for ctr in 0..MAX_TRIES {
        let mut h = DomainHasher::new(domain);
        for item in data {
            h.update(item);
        }
        h.update(&ctr.to_le_bytes());
        let digest = h.finish();
        let mut xb = [0u8; 32];
        xb.copy_from_slice(&digest[..32]);
        let x = Fp::from_biguint(&theta_math::BigUint::from_bytes_le(&xb));
        let y_odd = digest[32] & 1 == 1;
        if let Some(p) = G1::from_x(x, y_odd) {
            if !p.is_identity() {
                return Ok(p);
            }
        }
    }
    Err(SchemeError::HashToGroupFailed)
}

/// Hashes arbitrary data to an Ed25519 scalar (wide reduction, no bias).
pub fn hash_to_ed25519_scalar(domain: &str, data: &[&[u8]]) -> Scalar {
    let mut h = DomainHasher::new(domain);
    for item in data {
        h.update(item);
    }
    Scalar::from_bytes_wide(&h.finish())
}

/// Hashes arbitrary data to a BN254 scalar (wide reduction, no bias).
pub fn hash_to_fr(domain: &str, data: &[&[u8]]) -> Fr {
    let mut h = DomainHasher::new(domain);
    for item in data {
        h.update(item);
    }
    Fr::from_bytes_wide(&h.finish())
}

/// Hashes arbitrary data to 32 output bytes.
pub fn hash_to_key(domain: &str, data: &[&[u8]]) -> [u8; 32] {
    let mut h = DomainHasher::new(domain);
    for item in data {
        h.update(item);
    }
    h.finish32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ed25519_deterministic_and_in_subgroup() {
        let a = hash_to_ed25519("test/h2c", &[b"hello"]).unwrap();
        let b = hash_to_ed25519("test/h2c", &[b"hello"]).unwrap();
        assert_eq!(a, b);
        assert!(a.is_in_prime_subgroup());
        assert!(!a.is_identity());
    }

    #[test]
    fn ed25519_distinct_inputs_distinct_points() {
        let a = hash_to_ed25519("test/h2c", &[b"hello"]).unwrap();
        let b = hash_to_ed25519("test/h2c", &[b"world"]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn ed25519_domain_separation() {
        let a = hash_to_ed25519("domain-1", &[b"x"]).unwrap();
        let b = hash_to_ed25519("domain-2", &[b"x"]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn g1_deterministic_nonidentity() {
        let a = hash_to_g1("test/h2g1", &[b"msg"]).unwrap();
        let b = hash_to_g1("test/h2g1", &[b"msg"]).unwrap();
        assert_eq!(a, b);
        assert!(!a.is_identity());
        assert!(a.is_torsion_free());
    }

    #[test]
    fn g1_many_messages_succeed() {
        for i in 0u32..20 {
            let p = hash_to_g1("test/h2g1", &[&i.to_le_bytes()]).unwrap();
            assert!(!p.is_identity());
        }
    }

    #[test]
    fn scalar_hashes_differ_by_domain() {
        assert_ne!(
            hash_to_ed25519_scalar("a", &[b"m"]),
            hash_to_ed25519_scalar("b", &[b"m"])
        );
        assert_ne!(hash_to_fr("a", &[b"m"]), hash_to_fr("b", &[b"m"]));
    }

    #[test]
    fn multi_item_framing() {
        let a = hash_to_key("d", &[b"ab", b"c"]);
        let b = hash_to_key("d", &[b"a", b"bc"]);
        assert_ne!(a, b);
    }
}
