//! BZ03 — the Baek–Zheng threshold cryptosystem over the Gap
//! Diffie-Hellman group BN254.
//!
//! Shares the CCA-security goals of SG02 but replaces zero-knowledge
//! proofs with pairing equations (paper Table 1: "Pairings"): both the
//! ciphertext validity check and decryption-share verification are
//! pairing checks, which makes shares proof-free.
//!
//! Asymmetric-pairing instantiation: the ElGamal element `U = r·P2` and
//! the key material live in G2, the validity element `W = r·H1(U, V)`
//! lives in G1.
//!
//! - Ciphertext validity: `e(W, P2) == e(H1(U, V), U)`.
//! - Share validity: `e(H1(U, V), δ_i) == e(W, Y_i)` where `δ_i = x_i·U`.
//!
//! The hybrid payload layout mirrors [`crate::sg02`].
//!
//! # Example
//!
//! ```
//! use theta_schemes::common::ThresholdParams;
//! use theta_schemes::bz03;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = ThresholdParams::new(1, 4).unwrap();
//! let (pk, shares) = bz03::keygen(params, &mut rng);
//! let ct = bz03::encrypt(&pk, b"label", b"pairing-protected payload", &mut rng);
//! let d0 = bz03::create_decryption_share(&shares[0], &ct).unwrap();
//! let d1 = bz03::create_decryption_share(&shares[1], &ct).unwrap();
//! let plain = bz03::combine(&pk, &ct, &[d0, d1]).unwrap();
//! assert_eq!(plain, b"pairing-protected payload");
//! ```

use crate::common::{
    bisect_invalid, lagrange_coeffs_at_zero, shamir_share, PartyId, ThresholdParams,
};
use crate::error::SchemeError;
use crate::hashing::{hash_to_fr, hash_to_g1, hash_to_key};
use crate::wire::{get_fr, get_g1, get_g2, put_fr, put_g1, put_g2};
use rand::RngCore;
use theta_codec::{Decode, Encode, Reader, Writer};
use theta_math::bn254::{pairing_check, Fr, G1, G2};
use theta_math::msm::msm;
use theta_primitives::aead;

const D_VALIDITY: &str = "thetacrypt/bz03/validity-h1/v1";
const D_MASK: &str = "thetacrypt/bz03/mask/v1";
const D_BATCH: &str = "thetacrypt/bz03/batch-weights/v1";
const D_NONCE: &str = "thetacrypt/bz03/nonce/v1";

/// The BZ03 public key: `Y = x·P2` plus per-party verification keys.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PublicKey {
    params: ThresholdParams,
    y: G2,
    verification_keys: Vec<G2>,
}

impl PublicKey {
    /// Threshold parameters.
    pub fn params(&self) -> ThresholdParams {
        self.params
    }

    /// The verification key of `party`, if in range.
    pub fn verification_key(&self, party: PartyId) -> Option<&G2> {
        let idx = party.value().checked_sub(1)? as usize;
        self.verification_keys.get(idx)
    }
}

impl Encode for PublicKey {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        put_g2(w, &self.y);
        (self.verification_keys.len() as u32).encode(w);
        for vk in &self.verification_keys {
            put_g2(w, vk);
        }
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        let params = ThresholdParams::decode(r)?;
        let y = get_g2(r)?;
        let count = u32::decode(r)? as usize;
        if count != params.n() as usize {
            return Err(theta_codec::CodecError::InvalidValue(
                "verification key count != n".into(),
            ));
        }
        let mut verification_keys = Vec::with_capacity(count);
        for _ in 0..count {
            verification_keys.push(get_g2(r)?);
        }
        Ok(PublicKey { params, y, verification_keys })
    }
}

/// One party's decryption key share `x_i`.
#[derive(Clone)]
pub struct KeyShare {
    id: PartyId,
    x_i: Fr,
    public: PublicKey,
}

impl KeyShare {
    /// The owning party.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The common public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// Constant-time comparison: ids must match and the secret halves
    /// are compared without short-circuiting (`theta_math::ct`), so
    /// timing reveals nothing about where two shares differ.
    #[must_use]
    pub fn ct_eq(&self, other: &KeyShare) -> bool {
        self.id == other.id && self.x_i.ct_eq(&other.x_i)
    }
}

/// Redacted: a key share must never leak its secret through logs or
/// panic messages, so only the owner id is printed.
impl std::fmt::Debug for KeyShare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyShare")
            .field("id", &self.id)
            .field("x_i", &"<redacted>")
            .finish_non_exhaustive()
    }
}

/// On drop the secret scalar is wiped (volatile writes the optimizer cannot elide), so
/// freed heap pages never retain key material.
impl Drop for KeyShare {
    fn drop(&mut self) {
        self.x_i.wipe();
    }
}

impl Encode for KeyShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_fr(w, &self.x_i);
        self.public.encode(w);
    }
}

impl Decode for KeyShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(KeyShare {
            id: PartyId::decode(r)?,
            x_i: get_fr(r)?,
            public: PublicKey::decode(r)?,
        })
    }
}

/// A BZ03 ciphertext `(U, c_k, W, label, payload)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ciphertext {
    u: G2,
    c_k: [u8; 32],
    w: G1,
    label: Vec<u8>,
    payload: Vec<u8>,
}

impl Ciphertext {
    /// The ciphertext label.
    pub fn label(&self) -> &[u8] {
        &self.label
    }

    /// Stable identifier for protocol instances.
    pub fn fingerprint(&self) -> [u8; 32] {
        hash_to_key("thetacrypt/bz03/fingerprint/v1", &[&self.encoded()])
    }
}

impl Encode for Ciphertext {
    fn encode(&self, w: &mut Writer) {
        put_g2(w, &self.u);
        self.c_k.encode(w);
        put_g1(w, &self.w);
        self.label.encode(w);
        self.payload.encode(w);
    }
}

impl Decode for Ciphertext {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(Ciphertext {
            u: get_g2(r)?,
            c_k: <[u8; 32]>::decode(r)?,
            w: get_g1(r)?,
            label: Vec::<u8>::decode(r)?,
            payload: Vec::<u8>::decode(r)?,
        })
    }
}

/// A decryption share `δ_i = x_i·U` (no ZKP — pairing-verified).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecryptionShare {
    id: PartyId,
    delta_i: G2,
}

impl DecryptionShare {
    /// The producing party.
    pub fn id(&self) -> PartyId {
        self.id
    }
}

impl Encode for DecryptionShare {
    fn encode(&self, w: &mut Writer) {
        self.id.encode(w);
        put_g2(w, &self.delta_i);
    }
}

impl Decode for DecryptionShare {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        Ok(DecryptionShare { id: PartyId::decode(r)?, delta_i: get_g2(r)? })
    }
}

/// Dealer key generation.
pub fn keygen(params: ThresholdParams, rng: &mut dyn RngCore) -> (PublicKey, Vec<KeyShare>) {
    let x = Fr::random(rng);
    let y = G2::mul_generator(&x);
    let shares = shamir_share(&x, params, rng);
    let verification_keys: Vec<G2> =
        shares.iter().map(|(_, x_i)| G2::mul_generator(x_i)).collect();
    let public = PublicKey { params, y, verification_keys };
    let key_shares = shares
        .into_iter()
        .map(|(id, x_i)| KeyShare { id, x_i, public: public.clone() })
        .collect();
    (public, key_shares)
}

/// The validity-base hash `H1(U, c_k, label) ∈ G1`.
fn validity_base(u: &G2, c_k: &[u8; 32], label: &[u8]) -> Result<G1, SchemeError> {
    hash_to_g1(D_VALIDITY, &[&u.to_compressed(), c_k, label])
}

fn payload_nonce(c_k: &[u8; 32], u: &G2) -> [u8; 12] {
    let full = hash_to_key(D_NONCE, &[c_k, &u.to_compressed()]);
    let mut nonce = [0u8; 12];
    nonce.copy_from_slice(&full[..12]);
    nonce
}

/// Encrypts `message` under the threshold public key (hybrid, like SG02).
pub fn encrypt(pk: &PublicKey, label: &[u8], message: &[u8], rng: &mut dyn RngCore) -> Ciphertext {
    let mut k = [0u8; 32];
    rng.fill_bytes(&mut k);
    let r = Fr::random(rng);
    let u = G2::mul_generator(&r);
    // Mask from the DH value r·Y ∈ G2.
    let mask = hash_to_key(D_MASK, &[&pk.y.mul(&r).to_compressed()]);
    let mut c_k = [0u8; 32];
    for i in 0..32 {
        c_k[i] = k[i] ^ mask[i];
    }
    let h1 = validity_base(&u, &c_k, label).expect("hash-to-curve");
    let w = h1.mul(&r);
    let nonce = payload_nonce(&c_k, &u);
    let payload = aead::seal(&k, &nonce, label, message);
    Ciphertext { u, c_k, w, label: label.to_vec(), payload }
}

/// Publicly checks ciphertext validity: `e(W, P2) == e(H1, U)`.
pub fn verify_ciphertext(ct: &Ciphertext) -> bool {
    let Ok(h1) = validity_base(&ct.u, &ct.c_k, &ct.label) else {
        return false;
    };
    // e(W, P2) == e(H1, U)
    theta_math::bn254::multi_pairing(&[(&ct.w, &G2::generator()), (&h1.neg(), &ct.u)]).is_one()
}

/// Produces this party's decryption share `δ_i = x_i·U`.
///
/// # Errors
///
/// [`SchemeError::InvalidCiphertext`] when the validity pairing fails.
pub fn create_decryption_share(
    key: &KeyShare,
    ct: &Ciphertext,
) -> Result<DecryptionShare, SchemeError> {
    if !verify_ciphertext(ct) {
        return Err(SchemeError::InvalidCiphertext("BZ03 validity pairing failed".into()));
    }
    Ok(DecryptionShare { id: key.id, delta_i: ct.u.mul(&key.x_i) })
}

/// Verifies a decryption share via `e(H1, δ_i) == e(W, Y_i)`... with the
/// caveat that `W = r·H1` so both sides equal `e(H1, U)^{x_i·r}`-matched
/// pairings; concretely checks `e(H1, δ_i) == e(W, Y_i)` rearranged for
/// our groups as `e(W, Y_i) == e(H1, δ_i)`.
pub fn verify_decryption_share(pk: &PublicKey, ct: &Ciphertext, share: &DecryptionShare) -> bool {
    let Ok(h1) = validity_base(&ct.u, &ct.c_k, &ct.label) else {
        return false;
    };
    verify_share_with_base(pk, ct, &h1, share)
}

fn verify_share_with_base(
    pk: &PublicKey,
    ct: &Ciphertext,
    h1: &G1,
    share: &DecryptionShare,
) -> bool {
    let Some(vk) = pk.verification_key(share.id) else {
        return false;
    };
    // e(W, Y_i) == e(H1, δ_i): both are e(H1, P2)^{r·x_i}.
    pairing_check(&ct.w, vk, h1, &share.delta_i)
}

/// One pairing-product check for a sub-batch: with Fiat–Shamir weights
/// `r_i`, `e(W, Σ r_i Y_i) == e(H1, Σ r_i δ_i)` — both sides share the
/// same G1 argument across all shares, so `k` shares cost two G2 MSMs
/// plus two pairings instead of `2k` pairings.
fn batch_holds(pk: &PublicKey, ct: &Ciphertext, h1: &G1, shares: &[DecryptionShare]) -> bool {
    match shares.len() {
        0 => return true,
        1 => return verify_share_with_base(pk, ct, h1, &shares[0]),
        _ => {}
    }
    let mut vks = Vec::with_capacity(shares.len());
    let mut transcript: Vec<Vec<u8>> = Vec::with_capacity(shares.len());
    for share in shares {
        let Some(vk) = pk.verification_key(share.id) else {
            return false;
        };
        vks.push(*vk);
        let mut item = Vec::with_capacity(67);
        item.extend_from_slice(&share.id.value().to_le_bytes());
        item.extend_from_slice(&share.delta_i.to_compressed());
        transcript.push(item);
    }
    let items: Vec<&[u8]> = transcript.iter().map(|t| t.as_slice()).collect();
    let seed = hash_to_key(D_BATCH, &items);
    let weights: Vec<Fr> = (0..shares.len() as u64)
        .map(|idx| hash_to_fr(D_BATCH, &[&seed, &idx.to_le_bytes()]))
        .collect();
    let coeffs: Vec<&theta_math::BigUint> = weights.iter().map(|w| w.to_biguint()).collect();
    let deltas: Vec<G2> = shares.iter().map(|s| s.delta_i).collect();
    let vk_sum = msm(&vks, &coeffs);
    let delta_sum = msm(&deltas, &coeffs);
    pairing_check(&ct.w, &vk_sum, h1, &delta_sum)
}

/// Verifies a batch of decryption shares with one pairing-product
/// equation; bisection identifies the first invalid share on failure.
///
/// # Errors
///
/// [`SchemeError::InvalidShare`] naming the first offending party, or
/// [`SchemeError::InvalidCiphertext`] when the validity base cannot be
/// derived.
pub fn verify_decryption_shares_batch(
    pk: &PublicKey,
    ct: &Ciphertext,
    shares: &[DecryptionShare],
) -> Result<(), SchemeError> {
    let h1 = validity_base(&ct.u, &ct.c_k, &ct.label)
        .map_err(|_| SchemeError::InvalidCiphertext("validity base derivation failed".into()))?;
    let check = |r: std::ops::Range<usize>| batch_holds(pk, ct, &h1, &shares[r]);
    match bisect_invalid(shares.len(), &check) {
        None => Ok(()),
        Some(i) => Err(SchemeError::InvalidShare { party: shares[i].id.value() }),
    }
}

/// Combines `t+1` verified shares and opens the payload.
///
/// Share verification is batched into one pairing-product equation and
/// the interpolation `x·U = Σ λ_i δ_i` runs as a single G2 MSM.
///
/// # Errors
///
/// Mirrors [`crate::sg02::combine`]: invalid ciphertext, invalid share,
/// or not enough shares.
pub fn combine(
    pk: &PublicKey,
    ct: &Ciphertext,
    shares: &[DecryptionShare],
) -> Result<Vec<u8>, SchemeError> {
    if !verify_ciphertext(ct) {
        return Err(SchemeError::InvalidCiphertext("BZ03 validity pairing failed".into()));
    }
    verify_decryption_shares_batch(pk, ct, shares)?;
    combine_preverified(pk, ct, shares)
}

/// Captures one decryption-share check as a detached
/// [`crate::batch::PendingCheck`] so the orchestration layer can fold it
/// into a cross-instance pairing product.
pub fn pending_check(
    pk: &PublicKey,
    ct: &Ciphertext,
    share: &DecryptionShare,
) -> crate::batch::PendingCheck {
    let Ok(h1) = validity_base(&ct.u, &ct.c_k, &ct.label) else {
        return crate::batch::PendingCheck::Invalid;
    };
    match pk.verification_key(share.id) {
        Some(vk) => {
            crate::batch::PendingCheck::Bz03 { w: ct.w, vk: *vk, h1, delta: share.delta_i }
        }
        None => crate::batch::PendingCheck::Invalid,
    }
}

/// Combines shares that were **already verified individually** (e.g. by
/// the cross-instance batch settle) against a ciphertext that already
/// passed its validity pairing (producing our own share checks it), so
/// only the G2 Lagrange MSM and the AEAD open remain on the combine path.
pub fn combine_preverified(
    pk: &PublicKey,
    ct: &Ciphertext,
    shares: &[DecryptionShare],
) -> Result<Vec<u8>, SchemeError> {
    let need = pk.params.quorum() as usize;
    if shares.len() < need {
        return Err(SchemeError::NotEnoughShares { have: shares.len(), need });
    }
    let quorum = &shares[..need];
    let ids: Vec<PartyId> = quorum.iter().map(|s| s.id).collect();
    // x·U = Σ λ_i·δ_i = r·Y, as one G2 MSM over the quorum.
    let lambdas = lagrange_coeffs_at_zero::<Fr>(&ids)?;
    let deltas: Vec<G2> = quorum.iter().map(|s| s.delta_i).collect();
    let coeffs: Vec<&theta_math::BigUint> = lambdas.iter().map(|l| l.to_biguint()).collect();
    let xu = msm(&deltas, &coeffs);
    let mask = hash_to_key(D_MASK, &[&xu.to_compressed()]);
    let mut k = [0u8; 32];
    for i in 0..32 {
        k[i] = ct.c_k[i] ^ mask[i];
    }
    let nonce = payload_nonce(&ct.c_k, &ct.u);
    aead::open(&k, &nonce, &ct.label, &ct.payload)
        .map_err(|_| SchemeError::InvalidCiphertext("payload authentication failed".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xb203)
    }

    fn setup(t: u16, n: u16) -> (PublicKey, Vec<KeyShare>, rand::rngs::StdRng) {
        let mut r = rng();
        let params = ThresholdParams::new(t, n).unwrap();
        let (pk, shares) = keygen(params, &mut r);
        (pk, shares, r)
    }

    #[test]
    fn roundtrip_exact_quorum() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"label", b"gap-DH message", &mut r);
        assert!(verify_ciphertext(&ct));
        let dec: Vec<_> = shares[..2]
            .iter()
            .map(|s| create_decryption_share(s, &ct).unwrap())
            .collect();
        assert_eq!(combine(&pk, &ct, &dec).unwrap(), b"gap-DH message");
    }

    #[test]
    fn different_quorums_agree() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let all: Vec<_> = shares
            .iter()
            .map(|s| create_decryption_share(s, &ct).unwrap())
            .collect();
        let a = combine(&pk, &ct, &[all[0].clone(), all[1].clone()]).unwrap();
        let b = combine(&pk, &ct, &[all[2].clone(), all[3].clone()]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tampered_u_rejected() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let mut bad = ct.clone();
        bad.u = bad.u.add(&G2::generator());
        assert!(!verify_ciphertext(&bad));
        assert!(create_decryption_share(&shares[0], &bad).is_err());
    }

    #[test]
    fn tampered_key_box_rejected() {
        let (pk, _, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let mut bad = ct.clone();
        bad.c_k[5] ^= 0x10;
        // c_k is hashed into H1, so the validity pairing breaks.
        assert!(!verify_ciphertext(&bad));
    }

    #[test]
    fn tampered_payload_caught_by_aead() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let mut bad = ct.clone();
        let last = bad.payload.len() - 1;
        bad.payload[last] ^= 1;
        assert!(verify_ciphertext(&bad)); // validity only covers the key box
        let dec: Vec<_> = shares[..2]
            .iter()
            .map(|s| create_decryption_share(s, &bad).unwrap())
            .collect();
        assert!(matches!(
            combine(&pk, &bad, &dec),
            Err(SchemeError::InvalidCiphertext(_))
        ));
    }

    #[test]
    fn share_verification_pairing() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let good = create_decryption_share(&shares[0], &ct).unwrap();
        assert!(verify_decryption_share(&pk, &ct, &good));
        // Wrong party attribution fails.
        let forged = DecryptionShare { id: PartyId(3), delta_i: good.delta_i };
        assert!(!verify_decryption_share(&pk, &ct, &forged));
        // Corrupted share value fails.
        let corrupt = DecryptionShare {
            id: PartyId(1),
            delta_i: good.delta_i.add(&G2::generator()),
        };
        assert!(!verify_decryption_share(&pk, &ct, &corrupt));
    }

    #[test]
    fn bad_share_rejected_in_combine() {
        let (pk, shares, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let mut bad = create_decryption_share(&shares[0], &ct).unwrap();
        bad.delta_i = bad.delta_i.double();
        let good = create_decryption_share(&shares[1], &ct).unwrap();
        assert!(matches!(
            combine(&pk, &ct, &[bad, good]),
            Err(SchemeError::InvalidShare { party: 1 })
        ));
    }

    #[test]
    fn not_enough_shares() {
        let (pk, shares, mut r) = setup(2, 7);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let dec: Vec<_> = shares[..2]
            .iter()
            .map(|s| create_decryption_share(s, &ct).unwrap())
            .collect();
        assert!(matches!(
            combine(&pk, &ct, &dec),
            Err(SchemeError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn label_bound_into_validity() {
        let (pk, _, mut r) = setup(1, 4);
        let ct = encrypt(&pk, b"label-a", b"m", &mut r);
        let mut swapped = ct.clone();
        swapped.label = b"label-b".to_vec();
        assert!(!verify_ciphertext(&swapped));
    }

    #[test]
    fn codec_roundtrips() {
        let (pk, shares, mut r) = setup(1, 4);
        assert_eq!(PublicKey::decoded(&pk.encoded()).unwrap(), pk);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        assert_eq!(Ciphertext::decoded(&ct.encoded()).unwrap(), ct);
        let d = create_decryption_share(&shares[0], &ct).unwrap();
        assert_eq!(DecryptionShare::decoded(&d.encoded()).unwrap(), d);
        let ks = KeyShare::decoded(&shares[0].encoded()).unwrap();
        assert_eq!(ks.id(), shares[0].id());
    }

    #[test]
    fn batch_verify_accepts_valid_and_names_culprit() {
        let (pk, shares, mut r) = setup(2, 7);
        let ct = encrypt(&pk, b"l", b"m", &mut r);
        let mut ds: Vec<_> = shares
            .iter()
            .map(|k| create_decryption_share(k, &ct).unwrap())
            .collect();
        assert!(verify_decryption_shares_batch(&pk, &ct, &ds).is_ok());
        ds[3].delta_i = ds[3].delta_i.double();
        assert_eq!(
            verify_decryption_shares_batch(&pk, &ct, &ds),
            Err(SchemeError::InvalidShare { party: ds[3].id.value() })
        );
        assert!(matches!(
            combine(&pk, &ct, &ds),
            Err(SchemeError::InvalidShare { .. })
        ));
    }
}
