//! Per-scheme computation cost models, calibrated by timing the *real*
//! scheme implementations on this host.
//!
//! This is the substitution that makes the virtual-time testbed honest:
//! the paper measures wall-clock latency of MIRACL-backed crypto on 1
//! vCPU; we measure our own from-scratch crypto and feed those costs into
//! the discrete-event engine. Relative scheme ordering (ECDH < pairings <
//! RSA) is therefore *measured*, not assumed.
//!
//! SH00 is calibrated at a reduced modulus (safe-prime generation at
//! 2048 bits takes minutes) and extrapolated cubically — RSA
//! exponentiation is Θ(bits³) for proportionally-sized exponents — to
//! the paper's 2048-bit setting.

use rand::SeedableRng;
use std::time::{Duration, Instant};
use theta_schemes::registry::SchemeId;
use theta_schemes::{bls04, bz03, cks05, kg20, sg02, sh00, ThresholdParams};

/// Costs of a non-interactive scheme's node-side operations.
#[derive(Clone, Copy, Debug)]
pub struct OneRoundCost {
    /// Producing this node's share (includes ciphertext validation).
    pub create: Duration,
    /// Verifying one received share.
    pub verify: Duration,
    /// Assembling the result: fixed part.
    pub combine_fixed: Duration,
    /// Assembling the result: additional cost per share in the quorum.
    pub combine_per_share: Duration,
    /// Extra cost per payload byte (hashing / AEAD).
    pub per_byte: Duration,
}

/// Costs of the two-round KG20 protocol.
#[derive(Clone, Copy, Debug)]
pub struct TwoRoundCost {
    /// Round 1: nonce/commitment generation.
    pub round1: Duration,
    /// Round 2 signing: fixed part.
    pub round2_fixed: Duration,
    /// Round 2 signing: per group member (binding factors, group nonce).
    pub round2_per_member: Duration,
    /// Verifying one response (with the group nonce cached).
    pub verify: Duration,
    /// Aggregation: fixed part.
    pub combine_fixed: Duration,
    /// Aggregation: per response.
    pub combine_per_share: Duration,
    /// Extra cost per payload byte.
    pub per_byte: Duration,
}

/// The scheme cost table driving the simulator.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// SG02 costs.
    pub sg02: OneRoundCost,
    /// BZ03 costs.
    pub bz03: OneRoundCost,
    /// SH00 costs (at the paper's 2048-bit modulus).
    pub sh00: OneRoundCost,
    /// BLS04 costs.
    pub bls04: OneRoundCost,
    /// CKS05 costs.
    pub cks05: OneRoundCost,
    /// KG20 costs.
    pub kg20: TwoRoundCost,
}

impl CostModel {
    /// Reference cost table (measured once on the development host with
    /// [`CostModel::calibrate`]; used when skipping live calibration).
    ///
    /// The *relative* ordering is what matters: ECDH-based share ops in
    /// the hundreds of microseconds, pairing-based ops in the tens of
    /// milliseconds, 2048-bit RSA slowest per the cubic extrapolation.
    pub fn reference() -> CostModel {
        let ms = Duration::from_micros;
        CostModel {
            sg02: OneRoundCost {
                create: ms(600),
                verify: ms(450),
                combine_fixed: ms(250),
                combine_per_share: ms(650),
                per_byte: Duration::from_nanos(3),
            },
            bz03: OneRoundCost {
                create: ms(11_000),
                verify: ms(21_000),
                combine_fixed: ms(11_000),
                combine_per_share: ms(21_300),
                per_byte: Duration::from_nanos(3),
            },
            sh00: OneRoundCost {
                create: ms(35_000),
                verify: ms(48_000),
                combine_fixed: ms(19_000),
                combine_per_share: ms(49_000),
                per_byte: Duration::from_nanos(2),
            },
            bls04: OneRoundCost {
                create: ms(2_300),
                verify: ms(21_000),
                combine_fixed: ms(21_200),
                combine_per_share: ms(1_300),
                per_byte: Duration::from_nanos(2),
            },
            cks05: OneRoundCost {
                create: ms(550),
                verify: ms(450),
                combine_fixed: ms(120),
                combine_per_share: ms(640),
                per_byte: Duration::from_nanos(1),
            },
            kg20: TwoRoundCost {
                round1: ms(250),
                round2_fixed: ms(350),
                round2_per_member: ms(260),
                verify: ms(500),
                combine_fixed: ms(300),
                combine_per_share: ms(5),
                per_byte: Duration::from_nanos(1),
            },
        }
    }

    /// Measures every scheme's operations on this host.
    ///
    /// `sh00_calibration_bits` controls the RSA modulus actually timed
    /// (costs are then extrapolated cubically to 2048); 512 keeps the
    /// whole calibration under ~10 s on a laptop.
    pub fn calibrate(sh00_calibration_bits: usize) -> CostModel {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xca11b8);
        let params_small = ThresholdParams::new(2, 7).expect("valid");
        let params_large = ThresholdParams::new(6, 19).expect("valid");
        let payload = vec![0x5au8; 256];

        // --- SG02 ---
        let sg02 = {
            let (pk, keys) = sg02::keygen(params_small, &mut rng);
            let (pk_l, keys_l) = sg02::keygen(params_large, &mut rng);
            let ct = sg02::encrypt(&pk, b"cal", &payload, &mut rng);
            let ct_l = sg02::encrypt(&pk_l, b"cal", &payload, &mut rng);
            let create = time_op(8, || {
                let _ = sg02::create_decryption_share(&keys[0], &ct, &mut rand::rngs::OsRng);
            });
            let share = sg02::create_decryption_share(&keys[1], &ct, &mut rng).unwrap();
            let verify = time_op(8, || {
                assert!(sg02::verify_decryption_share(&pk, &ct, &share));
            });
            let shares_3: Vec<_> = keys[..3]
                .iter()
                .map(|k| sg02::create_decryption_share(k, &ct, &mut rng).unwrap())
                .collect();
            let shares_7: Vec<_> = keys_l[..7]
                .iter()
                .map(|k| sg02::create_decryption_share(k, &ct_l, &mut rng).unwrap())
                .collect();
            let c3 = time_op(6, || {
                let _ = sg02::combine(&pk, &ct, &shares_3).unwrap();
            });
            let c7 = time_op(6, || {
                let _ = sg02::combine(&pk_l, &ct_l, &shares_7).unwrap();
            });
            let (fixed, per_share) = linear_fit(3, c3, 7, c7);
            OneRoundCost {
                create,
                verify,
                combine_fixed: fixed,
                combine_per_share: per_share,
                per_byte: aead_per_byte(),
            }
        };

        // --- BZ03 ---
        let bz03 = {
            let (pk, keys) = bz03::keygen(params_small, &mut rng);
            let ct = bz03::encrypt(&pk, b"cal", &payload, &mut rng);
            let create = time_op(3, || {
                let _ = bz03::create_decryption_share(&keys[0], &ct).unwrap();
            });
            let share = bz03::create_decryption_share(&keys[1], &ct).unwrap();
            let verify = time_op(3, || {
                assert!(bz03::verify_decryption_share(&pk, &ct, &share));
            });
            // Combine batch-verifies the quorum with one RLC pairing
            // check plus a G2 MSM, so its slope is far below a full
            // per-share verify: fit it from two measured quorum sizes.
            let shares_3: Vec<_> = keys[..3]
                .iter()
                .map(|k| bz03::create_decryption_share(k, &ct).unwrap())
                .collect();
            let shares_7: Vec<_> = keys[..7]
                .iter()
                .map(|k| bz03::create_decryption_share(k, &ct).unwrap())
                .collect();
            let c3 = time_op(2, || {
                let _ = bz03::combine(&pk, &ct, &shares_3).unwrap();
            });
            let c7 = time_op(2, || {
                let _ = bz03::combine(&pk, &ct, &shares_7).unwrap();
            });
            let (fixed, per_share) = linear_fit(3, c3, 7, c7);
            OneRoundCost {
                create,
                verify,
                combine_fixed: fixed,
                combine_per_share: per_share,
                per_byte: aead_per_byte(),
            }
        };

        // --- BLS04 ---
        let bls04 = {
            let (pk, keys) = bls04::keygen(params_small, &mut rng);
            let create = time_op(5, || {
                let _ = bls04::sign_share(&keys[0], &payload).unwrap();
            });
            let share = bls04::sign_share(&keys[1], &payload).unwrap();
            let verify = time_op(3, || {
                assert!(bls04::verify_share(&pk, &payload, &share));
            });
            let shares_3: Vec<_> = keys[..3]
                .iter()
                .map(|k| bls04::sign_share(k, &payload).unwrap())
                .collect();
            let shares_7: Vec<_> = keys[..7]
                .iter()
                .map(|k| bls04::sign_share(k, &payload).unwrap())
                .collect();
            // Combine's fixed part is the RLC batch pairing check plus
            // final verification; the slope (MSM bucket work per share)
            // is fit from two quorum sizes rather than assumed.
            let c3 = time_op(2, || {
                let _ = bls04::combine(&pk, &payload, &shares_3).unwrap();
            });
            let c7 = time_op(2, || {
                let _ = bls04::combine(&pk, &payload, &shares_7).unwrap();
            });
            let (fixed, per_share) = linear_fit(3, c3, 7, c7);
            OneRoundCost {
                create,
                verify,
                combine_fixed: fixed,
                combine_per_share: per_share,
                per_byte: hash_per_byte(),
            }
        };

        // --- CKS05 ---
        let cks05 = {
            let (pk, keys) = cks05::keygen(params_small, &mut rng);
            let (pk_l, keys_l) = cks05::keygen(params_large, &mut rng);
            let create = time_op(8, || {
                let _ = cks05::create_coin_share(&keys[0], b"cal", &mut rand::rngs::OsRng);
            });
            let share = cks05::create_coin_share(&keys[1], b"cal", &mut rng);
            let verify = time_op(8, || {
                assert!(cks05::verify_coin_share(&pk, b"cal", &share));
            });
            let s3: Vec<_> = keys[..3]
                .iter()
                .map(|k| cks05::create_coin_share(k, b"cal", &mut rng))
                .collect();
            let s7: Vec<_> = keys_l[..7]
                .iter()
                .map(|k| cks05::create_coin_share(k, b"cal", &mut rng))
                .collect();
            let c3 = time_op(6, || {
                let _ = cks05::combine(&pk, b"cal", &s3).unwrap();
            });
            let c7 = time_op(6, || {
                let _ = cks05::combine(&pk_l, b"cal", &s7).unwrap();
            });
            let (fixed, per_share) = linear_fit(3, c3, 7, c7);
            OneRoundCost {
                create,
                verify,
                combine_fixed: fixed,
                combine_per_share: per_share,
                per_byte: hash_per_byte(),
            }
        };

        // --- SH00 (calibrated small, extrapolated cubically to 2048) ---
        let sh00 = {
            let bits = sh00_calibration_bits.max(192);
            let scale = {
                let f = 2048.0 / bits as f64;
                f * f * f
            };
            let (pk, keys) = sh00::keygen(params_small, bits, &mut rng).expect("keygen");
            let create = time_op(3, || {
                let _ = sh00::sign_share(&keys[0], &payload, &mut rand::rngs::OsRng);
            });
            let share = sh00::sign_share(&keys[1], &payload, &mut rng);
            let verify = time_op(3, || {
                assert!(sh00::verify_share(&pk, &payload, &share));
            });
            let shares_3: Vec<_> = keys[..3]
                .iter()
                .map(|k| sh00::sign_share(k, &payload, &mut rng))
                .collect();
            let shares_7: Vec<_> = keys[..7]
                .iter()
                .map(|k| sh00::sign_share(k, &payload, &mut rng))
                .collect();
            // Combine shares one Montgomery context and fixed-base
            // tables across the quorum, so the per-share slope is well
            // below a standalone verify: fit it from two quorum sizes.
            let c3 = time_op(2, || {
                let _ = sh00::combine(&pk, &payload, &shares_3).unwrap();
            });
            let c7 = time_op(2, || {
                let _ = sh00::combine(&pk, &payload, &shares_7).unwrap();
            });
            let (fixed, per_share) = linear_fit(3, c3, 7, c7);
            OneRoundCost {
                create: create.mul_f64(scale),
                verify: verify.mul_f64(scale),
                combine_fixed: fixed.mul_f64(scale),
                combine_per_share: per_share.mul_f64(scale),
                per_byte: hash_per_byte(),
            }
        };

        // --- KG20 ---
        let kg20 = {
            let (pk, keys) = kg20::keygen(params_small, &mut rng);
            let round1 = time_op(10, || {
                let _ = kg20::generate_nonce(&keys[0], &mut rand::rngs::OsRng);
            });
            // Round-2 signing at two group sizes for the linear fit.
            let sign_at = |group: usize, rng: &mut rand::rngs::StdRng| {
                let nonces: Vec<_> = keys[..group]
                    .iter()
                    .map(|k| kg20::generate_nonce(k, rng))
                    .collect();
                let commits: Vec<_> = nonces.iter().map(|n| n.commitment().clone()).collect();
                let start = Instant::now();
                let nonce0 = kg20::generate_nonce(&keys[0], rng);
                let mut commits0 = commits.clone();
                commits0[0] = nonce0.commitment().clone();
                let _ = kg20::sign_share(&keys[0], nonce0, &payload, &commits0).unwrap();
                start.elapsed()
            };
            let s3 = sign_at(3, &mut rng);
            let s7 = sign_at(7, &mut rng);
            let (round2_fixed, round2_per_member) = linear_fit(3, s3, 7, s7);
            // Verify with an (assumed cached) group nonce ≈ three base
            // multiplications ≈ the DLEQ verify cost of SG02.
            let verify = sg02.verify;
            // Aggregation: scalar additions + one Schnorr verification.
            let nonces: Vec<_> = keys[..3]
                .iter()
                .map(|k| kg20::generate_nonce(k, &mut rng))
                .collect();
            let commits: Vec<_> = nonces.iter().map(|n| n.commitment().clone()).collect();
            let shares: Vec<_> = keys[..3]
                .iter()
                .zip(nonces)
                .map(|(k, n)| kg20::sign_share(k, n, &payload, &commits).unwrap())
                .collect();
            let combine_total = time_op(2, || {
                let _ = kg20::combine(&pk, &payload, &commits, &shares).unwrap();
            });
            // combine re-verifies each share (O(group) via group nonce);
            // approximate the slope by the round-2 per-member cost.
            let combine_per_share = round2_per_member;
            let combine_fixed = combine_total.saturating_sub(combine_per_share * 3);
            TwoRoundCost {
                round1,
                round2_fixed,
                round2_per_member,
                verify,
                combine_fixed,
                combine_per_share,
                per_byte: hash_per_byte(),
            }
        };

        CostModel { sg02, bz03, sh00, bls04, cks05, kg20 }
    }

    /// Ablation (paper §4.4 design choice): the cost table with share
    /// verification disabled. Per-share verification goes to zero and the
    /// combine slope keeps only its non-verification remainder (Lagrange
    /// arithmetic) — the paper's protocols always verify, "ensuring a
    /// fair comparison"; this table quantifies what that fairness costs.
    pub fn without_share_verification(&self) -> CostModel {
        fn strip(c: OneRoundCost) -> OneRoundCost {
            OneRoundCost {
                verify: Duration::ZERO,
                combine_per_share: c.combine_per_share.saturating_sub(c.verify),
                ..c
            }
        }
        CostModel {
            sg02: strip(self.sg02),
            bz03: strip(self.bz03),
            sh00: strip(self.sh00),
            bls04: strip(self.bls04),
            cks05: strip(self.cks05),
            kg20: TwoRoundCost {
                verify: Duration::ZERO,
                combine_per_share: self
                    .kg20
                    .combine_per_share
                    .saturating_sub(self.kg20.verify),
                ..self.kg20
            },
        }
    }

    /// The one-round cost row for a scheme (`None` for KG20).
    pub fn one_round(&self, scheme: SchemeId) -> Option<OneRoundCost> {
        match scheme {
            SchemeId::Sg02 => Some(self.sg02),
            SchemeId::Bz03 => Some(self.bz03),
            SchemeId::Sh00 => Some(self.sh00),
            SchemeId::Bls04 => Some(self.bls04),
            SchemeId::Cks05 => Some(self.cks05),
            SchemeId::Kg20 => None,
        }
    }
}

fn time_op(iters: u32, mut f: impl FnMut()) -> Duration {
    // One warmup, then the mean of `iters` runs.
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters
}

/// Solves `cost(k) = fixed + k · per_item` from two measurements.
fn linear_fit(k1: u32, c1: Duration, k2: u32, c2: Duration) -> (Duration, Duration) {
    let per_item = if c2 > c1 {
        (c2 - c1) / (k2 - k1)
    } else {
        Duration::ZERO
    };
    let fixed = c1.saturating_sub(per_item * k1);
    (fixed, per_item)
}

fn hash_per_byte() -> Duration {
    let data = vec![0xabu8; 1 << 16];
    let elapsed = time_op(4, || {
        let _ = theta_primitives_digest(&data);
    });
    elapsed / (1 << 16)
}

fn theta_primitives_digest(data: &[u8]) -> [u8; 32] {
    use theta_schemes::hashing::hash_to_key;
    hash_to_key("thetacrypt/sim/calibration", &[data])
}

fn aead_per_byte() -> Duration {
    use theta_primitives::aead;
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    let data = vec![0xcdu8; 1 << 16];
    let sealed = aead::seal(&key, &nonce, b"", &data);
    let elapsed = time_op(4, || {
        let _ = aead::open(&key, &nonce, b"", &sealed).unwrap();
    });
    elapsed / (1 << 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_model_ordering() {
        // The headline qualitative result of §4.5: ECDH < pairings < RSA.
        let m = CostModel::reference();
        assert!(m.sg02.create < m.bz03.create);
        assert!(m.sg02.create < m.sh00.create);
        assert!(m.bz03.verify < m.sh00.verify);
        assert!(m.cks05.create < m.bls04.combine_fixed);
    }

    #[test]
    fn linear_fit_exact() {
        let (fixed, per) = linear_fit(
            2,
            Duration::from_micros(50),
            6,
            Duration::from_micros(130),
        );
        assert_eq!(per, Duration::from_micros(20));
        assert_eq!(fixed, Duration::from_micros(10));
    }

    #[test]
    fn linear_fit_degenerate() {
        let (fixed, per) = linear_fit(
            2,
            Duration::from_micros(100),
            6,
            Duration::from_micros(90),
        );
        assert_eq!(per, Duration::ZERO);
        assert_eq!(fixed, Duration::from_micros(100));
    }

    #[test]
    fn calibration_runs_and_preserves_ordering() {
        // Full calibration at a small RSA size; asserts the qualitative
        // grouping the whole evaluation hinges on.
        let m = CostModel::calibrate(256);
        // ECDH schemes are the cheapest per share.
        assert!(m.sg02.create < m.bz03.create, "{:?} vs {:?}", m.sg02.create, m.bz03.create);
        assert!(m.cks05.create < m.bz03.create);
        // RSA at (extrapolated) 2048 bits is the most expensive.
        assert!(m.sh00.create > m.sg02.create * 4);
        // Pairing verify dominates ECDH verify.
        assert!(m.bz03.verify > m.sg02.verify);
        // One-round lookup covers five schemes.
        let mut count = 0;
        for id in SchemeId::ALL {
            if m.one_round(id).is_some() {
                count += 1;
            }
        }
        assert_eq!(count, 5);
    }
}
