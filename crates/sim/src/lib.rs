//! # theta-sim
//!
//! The evaluation testbed: a deterministic discrete-event simulator that
//! replays the paper's DigitalOcean deployments (Table 2) in virtual
//! time, driven by computation costs *measured from the real scheme
//! implementations* ([`CostModel::calibrate`]).
//!
//! This substitutes for the hardware we don't have (7–127 VMs across
//! four regions): the phenomena the paper's evaluation isolates —
//! per-op crypto cost, message complexity, WAN latency, 1-vCPU
//! saturation — are exactly the mechanisms modeled here, so the *shape*
//! of Fig. 4/5 and Table 4 is reproduced even though absolute numbers
//! track this host's CPU rather than a 2.2 GHz DO droplet.
//!
//! ## Example
//!
//! ```
//! use theta_sim::{deployment_by_name, CostModel, SimConfig, run_experiment};
//! use theta_schemes::registry::SchemeId;
//! use std::time::Duration;
//!
//! let cfg = SimConfig {
//!     deployment: deployment_by_name("DO-7-L").unwrap(),
//!     scheme: SchemeId::Cks05,
//!     rate: 8.0,
//!     duration: Duration::from_secs(2),
//!     payload_bytes: 256,
//!     drain: Duration::from_secs(30),
//!     seed: 1,
//!     kg20_precomputed: false,
//!     worker_lanes: 1,
//! };
//! let out = run_experiment(&cfg, &CostModel::reference()).unwrap();
//! assert!(out.throughput > 0.0);
//! ```

mod cost;
mod deployment;
mod engine;
mod experiment;

pub use cost::{CostModel, OneRoundCost, TwoRoundCost};
pub use deployment::{
    deployment_by_name, one_way, rtt, table2_deployments, Deployment, Region,
};
pub use engine::{run, SimConfig, SimResult, SimTime};
pub use experiment::{
    capacity_sweep, capacity_sweep_lanes, knee_of, run_experiment, steady_state, usable_of,
    ExperimentOutput,
};
