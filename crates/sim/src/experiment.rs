//! Experiment drivers: single runs, capacity sweeps (Fig. 4), steady-state
//! runs (Fig. 5a / Table 4) and payload sweeps (Fig. 5b).

use crate::cost::CostModel;
use crate::deployment::Deployment;
use crate::engine::{run, SimConfig, SimResult};
use std::time::Duration;
use theta_metrics::{
    knee_capacity, latency_summary, throughput, usable_capacity, CapacityPoint, LatencySummary,
};
use theta_schemes::registry::SchemeId;

/// Aggregated output of one (scheme, deployment, rate) experiment.
#[derive(Clone, Debug)]
pub struct ExperimentOutput {
    /// Offered load (req/s).
    pub rate: f64,
    /// Pooled per-node latency metrics (L50/L95/Lθ/δ_res/η_θ).
    pub latency: LatencySummary,
    /// Measured throughput (req/s) per the paper's §4.3 estimator.
    pub throughput: f64,
    /// Injected / completed request counts.
    pub injected: usize,
    /// Requests that reached quorum completion.
    pub completed: usize,
}

impl ExperimentOutput {
    /// The (rate, throughput, L95) triple for knee detection.
    pub fn capacity_point(&self) -> CapacityPoint {
        CapacityPoint {
            offered_rate: self.rate,
            throughput: self.throughput,
            l95: self.latency.l95,
        }
    }
}

/// Runs one experiment and reduces it to the paper's metrics.
///
/// Returns `None` when the run produced no completions at all (far past
/// saturation) — the paper likewise reports latency only for completed
/// requests.
pub fn run_experiment(config: &SimConfig, cost: &CostModel) -> Option<ExperimentOutput> {
    let result: SimResult = run(config, cost);
    if result.node_latencies.is_empty() {
        return None;
    }
    let d = &config.deployment;
    let latency = latency_summary(&result.node_latencies, d.t, d.n);
    let first_start = result
        .quorum_completions
        .iter()
        .zip(&result.quorum_latencies)
        .map(|(end, lat)| end - lat)
        .fold(f64::INFINITY, f64::min);
    let tput = throughput(
        &result.quorum_completions,
        if first_start.is_finite() { first_start } else { 0.0 },
        config.duration.as_secs_f64(),
        result.all_processed(),
    );
    Some(ExperimentOutput {
        rate: config.rate,
        latency,
        throughput: tput,
        injected: result.injected,
        completed: result.completed,
    })
}

/// One scheme's capacity-test series for one deployment (a line of Fig. 4):
/// rate doubling from 1 req/s to the deployment's max rate. Nodes run
/// one crypto lane — the paper's one-vCPU droplets.
pub fn capacity_sweep(
    deployment: &Deployment,
    scheme: SchemeId,
    cost: &CostModel,
    duration: Duration,
    payload_bytes: usize,
    seed: u64,
) -> Vec<ExperimentOutput> {
    capacity_sweep_lanes(deployment, scheme, cost, duration, payload_bytes, seed, 1)
}

/// [`capacity_sweep`] on nodes with `worker_lanes` parallel crypto
/// lanes — the worker-pool orchestration on multi-core nodes.
pub fn capacity_sweep_lanes(
    deployment: &Deployment,
    scheme: SchemeId,
    cost: &CostModel,
    duration: Duration,
    payload_bytes: usize,
    seed: u64,
    worker_lanes: u16,
) -> Vec<ExperimentOutput> {
    let mut out = Vec::new();
    let mut rate = 1u64;
    while rate <= deployment.max_rate {
        let config = SimConfig {
            deployment: deployment.clone(),
            scheme,
            rate: rate as f64,
            duration,
            payload_bytes,
            // The paper's grace period: up to 10 % past the experiment end.
            drain: duration / 10,
            seed: seed ^ rate,
            kg20_precomputed: false,
            worker_lanes,
        };
        if let Some(exp) = run_experiment(&config, cost) {
            out.push(exp);
        }
        rate *= 2;
    }
    out
}

/// Knee capacity of a capacity series (req/s), per §4.4.
pub fn knee_of(series: &[ExperimentOutput]) -> Option<f64> {
    let points: Vec<CapacityPoint> = series.iter().map(|e| e.capacity_point()).collect();
    knee_capacity(&points).map(|p| p.offered_rate)
}

/// Usable capacity of a capacity series (req/s).
pub fn usable_of(series: &[ExperimentOutput]) -> Option<f64> {
    let points: Vec<CapacityPoint> = series.iter().map(|e| e.capacity_point()).collect();
    usable_capacity(&points).map(|p| p.offered_rate)
}

/// A steady-state run at a fixed rate (Fig. 5a / Table 4 use the knee
/// capacity on DO-31-G for five minutes).
pub fn steady_state(
    deployment: &Deployment,
    scheme: SchemeId,
    cost: &CostModel,
    rate: f64,
    duration: Duration,
    payload_bytes: usize,
    seed: u64,
) -> Option<ExperimentOutput> {
    let config = SimConfig {
        deployment: deployment.clone(),
        scheme,
        rate,
        duration,
        payload_bytes,
        drain: duration / 10,
        seed,
        kg20_precomputed: false,
        worker_lanes: 1,
    };
    run_experiment(&config, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::deployment_by_name;

    #[test]
    fn capacity_sweep_shows_knee_for_sh00_small() {
        let cost = CostModel::reference();
        let d = {
            let mut d = deployment_by_name("DO-7-L").unwrap();
            d.max_rate = 64; // trimmed sweep keeps the test fast
            d
        };
        let series = capacity_sweep(&d, SchemeId::Sh00, &cost, Duration::from_secs(3), 256, 1);
        assert!(series.len() >= 5);
        // Throughput must saturate: the last point's throughput is well
        // below its offered rate for RSA on 7 nodes.
        let last = series.last().unwrap();
        assert!(last.throughput < 0.9 * last.rate, "expected saturation");
        let knee = knee_of(&series).expect("knee exists");
        assert!(knee <= 16.0, "SH00 knee should be small, got {knee}");
    }

    #[test]
    fn ecdh_knee_beats_rsa_knee() {
        let cost = CostModel::reference();
        let mut d = deployment_by_name("DO-7-L").unwrap();
        d.max_rate = 256;
        let dur = Duration::from_secs(3);
        let sg = capacity_sweep(&d, SchemeId::Sg02, &cost, dur, 256, 1);
        let sh = capacity_sweep(&d, SchemeId::Sh00, &cost, dur, 256, 1);
        let sg_knee = knee_of(&sg).unwrap();
        let sh_knee = knee_of(&sh).unwrap();
        assert!(
            sg_knee > sh_knee,
            "ECDH knee {sg_knee} must beat RSA knee {sh_knee}"
        );
    }

    #[test]
    fn worker_lanes_raise_the_knee() {
        let cost = CostModel::reference();
        let mut d = deployment_by_name("DO-7-L").unwrap();
        d.max_rate = 64;
        let dur = Duration::from_secs(3);
        let one = capacity_sweep_lanes(&d, SchemeId::Sh00, &cost, dur, 256, 1, 1);
        let four = capacity_sweep_lanes(&d, SchemeId::Sh00, &cost, dur, 256, 1, 4);
        let k1 = knee_of(&one).expect("1-lane knee");
        let k4 = knee_of(&four).expect("4-lane knee");
        assert!(
            k4 >= 2.0 * k1,
            "4 crypto lanes should at least double the CPU-bound knee: {k1} -> {k4}"
        );
    }

    #[test]
    fn steady_state_produces_fairness_metrics() {
        let cost = CostModel::reference();
        let d = deployment_by_name("DO-31-G").unwrap();
        let out = steady_state(&d, SchemeId::Sg02, &cost, 8.0, Duration::from_secs(5), 256, 2)
            .expect("completions");
        assert!(out.latency.eta_theta > 0.0 && out.latency.eta_theta <= 1.0);
        assert!(out.latency.delta_res >= 0.0);
        // Global deployment with a cheap scheme: strong quorum/tail gap.
        assert!(
            out.latency.delta_res > 0.3,
            "expected visible residual delay, got {}",
            out.latency.delta_res
        );
    }
}
