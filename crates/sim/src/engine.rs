//! The discrete-event engine: virtual clock, per-node FIFO CPU queues
//! and the message-level protocol models for all six schemes.
//!
//! The model reproduces exactly the mechanisms the paper's evaluation
//! attributes its findings to (§4.5):
//!
//! - local crypto cost per operation (from the calibrated [`CostModel`]),
//! - `O(n)` share traffic for the non-interactive schemes and the
//!   `O(n²)`/two-round pattern of KG20 with its TOB'd first round,
//! - WAN latency between the Table 2 regions,
//! - CPU saturation of the node's crypto lanes (queueing → the knee).
//!
//! Each node serves its crypto queue with [`SimConfig::worker_lanes`]
//! identical lanes (an M/G/W queue). `worker_lanes = 1` is the paper's
//! one-vCPU droplet; `worker_lanes = W` models the router + worker-pool
//! orchestration on a W-core node, where distinct instances verify and
//! combine truly in parallel. The serial router stage measured in
//! `BENCH_parallel.json` (~0.5 ms/instance) is far below every scheme's
//! crypto cost at the rates simulated here, so the sim deliberately
//! omits it; its bound only matters past ~18 lanes for the cheapest
//! scheme.

use crate::cost::CostModel;
use crate::deployment::{one_way, Deployment, Region};
use rand::{Rng, SeedableRng};
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;
use theta_schemes::registry::SchemeId;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// One experiment's configuration.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Deployment (size, regions, threshold) under test.
    pub deployment: Deployment,
    /// Scheme under test.
    pub scheme: SchemeId,
    /// Offered load in requests per second (open loop).
    pub rate: f64,
    /// Injection window (virtual time). The paper uses 60 s runs for the
    /// capacity test and 300 s for steady state.
    pub duration: Duration,
    /// Request payload size in bytes (paper: 256 B – 4 KiB).
    pub payload_bytes: usize,
    /// Extra drain time after injection stops before the run is cut off.
    pub drain: Duration,
    /// Seed for link jitter / CPU noise.
    pub seed: u64,
    /// KG20 ablation: when true, round-1 commitments are assumed to have
    /// been exchanged during preprocessing (the paper's precomputation
    /// mode), so signing needs a single round.
    pub kg20_precomputed: bool,
    /// Parallel crypto lanes per node (clamped to ≥ 1). `1` models the
    /// paper's one-vCPU droplets; `W` models the worker-pool
    /// orchestration on a W-core node.
    pub worker_lanes: u16,
}

/// Samples collected from one run.
#[derive(Clone, Debug, Default)]
pub struct SimResult {
    /// Server-side latency per (request, node) completion, seconds.
    pub node_latencies: Vec<f64>,
    /// Per-request latency until the `t+1`-th node finished, seconds.
    pub quorum_latencies: Vec<f64>,
    /// Absolute virtual completion times (quorum) in seconds, for
    /// throughput estimation.
    pub quorum_completions: Vec<f64>,
    /// Requests injected.
    pub injected: usize,
    /// Requests whose quorum completed within the run.
    pub completed: usize,
}

impl SimResult {
    /// True when every injected request reached quorum completion.
    pub fn all_processed(&self) -> bool {
        self.completed == self.injected
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MsgKind {
    Share,
    Commit,
    Round2,
}

#[derive(Clone, Copy, Debug)]
enum EventKind {
    Arrival { req: u32 },
    Msg { req: u32, kind: MsgKind },
    CpuDone { task: Task },
}

#[derive(Clone, Copy, Debug)]
struct Event {
    at: SimTime,
    node: u16,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq).
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskKind {
    Create,
    Verify,
    Round2Sign,
    VerifyR2,
    Combine,
}

#[derive(Clone, Copy, Debug)]
struct Task {
    req: u32,
    kind: TaskKind,
}

/// Per-(node, request) protocol progress.
#[derive(Clone, Copy, Debug)]
#[derive(Default)]
struct ReqState {
    arrival: SimTime,
    arrived: bool,
    verified: u16,
    commits: u16,
    round1_done: bool,
    round2_started: bool,
    combining: bool,
    done: bool,
}


struct Node {
    region: Region,
    /// Crypto lanes currently occupied (≤ `SimConfig::worker_lanes`).
    busy: u16,
    queue: VecDeque<Task>,
}

/// Runs one experiment and collects its samples.
pub fn run(config: &SimConfig, cost: &CostModel) -> SimResult {
    Engine::new(config, cost).run()
}

struct Engine<'a> {
    config: &'a SimConfig,
    cost: &'a CostModel,
    n: u16,
    quorum: u16,
    heap: BinaryHeap<Event>,
    seq: u64,
    nodes: Vec<Node>,
    /// state[req][node]
    state: Vec<Vec<ReqState>>,
    /// completions per request (count, quorum time recorded?)
    req_done_count: Vec<u16>,
    result: SimResult,
    rng: rand::rngs::StdRng,
    hard_end: SimTime,
    request_send_time: Vec<SimTime>,
}

impl<'a> Engine<'a> {
    fn new(config: &'a SimConfig, cost: &'a CostModel) -> Self {
        let n = config.deployment.n;
        let nodes = (1..=n)
            .map(|id| Node {
                region: config.deployment.region_of(id),
                busy: 0,
                queue: VecDeque::new(),
            })
            .collect();
        Engine {
            config,
            cost,
            n,
            quorum: config.deployment.quorum(),
            heap: BinaryHeap::new(),
            seq: 0,
            nodes,
            state: Vec::new(),
            req_done_count: Vec::new(),
            result: SimResult::default(),
            rng: rand::rngs::StdRng::seed_from_u64(config.seed),
            hard_end: (config.duration + config.drain).as_nanos() as SimTime,
            request_send_time: Vec::new(),
        }
    }

    fn push(&mut self, at: SimTime, node: u16, kind: EventKind) {
        self.seq += 1;
        self.heap.push(Event { at, node, seq: self.seq, kind });
    }

    /// One-way link latency with ±10 % jitter plus a 50–250 µs stack cost.
    fn link(&mut self, a: Region, b: Region) -> SimTime {
        let base = one_way(a, b).as_nanos() as f64;
        let jitter = self.rng.gen_range(0.95..1.10);
        let stack = self.rng.gen_range(50_000.0..250_000.0);
        (base * jitter + stack) as SimTime
    }

    /// CPU cost with ±5 % noise.
    fn cpu(&mut self, d: Duration) -> SimTime {
        let noise = self.rng.gen_range(0.97..1.05);
        (d.as_nanos() as f64 * noise) as SimTime
    }

    fn task_cost(&mut self, task: Task) -> SimTime {
        let payload = self.config.payload_bytes as u32;
        let scheme = self.config.scheme;
        let d = if let Some(c) = self.cost.one_round(scheme) {
            match task.kind {
                TaskKind::Create => c.create + c.per_byte * payload,
                TaskKind::Verify => c.verify,
                TaskKind::Combine => {
                    c.combine_fixed
                        + c.combine_per_share * self.quorum as u32
                        + c.per_byte * payload
                }
                TaskKind::Round2Sign | TaskKind::VerifyR2 => Duration::ZERO,
            }
        } else {
            let c = self.cost.kg20;
            match task.kind {
                TaskKind::Create => c.round1 + c.per_byte * payload,
                TaskKind::Round2Sign => c.round2_fixed + c.round2_per_member * self.n as u32,
                TaskKind::VerifyR2 => c.verify,
                TaskKind::Combine => c.combine_fixed + c.combine_per_share * self.n as u32,
                TaskKind::Verify => Duration::ZERO,
            }
        };
        self.cpu(d)
    }

    fn run(mut self) -> SimResult {
        // Open-loop injection from a client in FRA1 to every node.
        let interval_ns = (1e9 / self.config.rate) as SimTime;
        let injection_end = self.config.duration.as_nanos() as SimTime;
        let mut t = 0;
        let mut req: u32 = 0;
        while t < injection_end {
            self.state.push(vec![ReqState::default(); self.n as usize]);
            self.req_done_count.push(0);
            self.request_send_time.push(t);
            for node in 1..=self.n {
                let delay = self.link(Region::Fra1, self.nodes[node as usize - 1].region);
                self.push(t + delay, node, EventKind::Arrival { req });
            }
            req += 1;
            t += interval_ns.max(1);
        }
        self.result.injected = req as usize;

        while let Some(ev) = self.heap.pop() {
            if ev.at > self.hard_end {
                break;
            }
            match ev.kind {
                EventKind::Arrival { req } => self.on_arrival(ev.at, ev.node, req),
                EventKind::Msg { req, kind } => self.on_msg(ev.at, ev.node, req, kind),
                EventKind::CpuDone { task } => self.on_cpu_done(ev.at, ev.node, task),
            }
        }
        self.result
    }

    fn on_arrival(&mut self, now: SimTime, node: u16, req: u32) {
        let kg20_pre = self.config.scheme == SchemeId::Kg20 && self.config.kg20_precomputed;
        let st = &mut self.state[req as usize][node as usize - 1];
        st.arrival = now;
        st.arrived = true;
        if kg20_pre {
            // Precomputation mode: commitments were exchanged offline, so
            // the request goes straight to the single signing round.
            st.commits = self.n;
            st.round1_done = true;
            st.round2_started = true;
            self.enqueue(now, node, Task { req, kind: TaskKind::Round2Sign });
        } else {
            self.enqueue(now, node, Task { req, kind: TaskKind::Create });
        }
    }

    fn on_msg(&mut self, now: SimTime, node: u16, req: u32, kind: MsgKind) {
        let st = &mut self.state[req as usize][node as usize - 1];
        match kind {
            MsgKind::Share => {
                if st.done || st.combining {
                    return; // residual message — dropped for free
                }
                self.enqueue(now, node, Task { req, kind: TaskKind::Verify });
            }
            MsgKind::Commit => {
                st.commits += 1;
                let ready =
                    st.commits == self.n && st.round1_done && !st.round2_started && st.arrived;
                if ready {
                    st.round2_started = true;
                    self.enqueue(now, node, Task { req, kind: TaskKind::Round2Sign });
                }
            }
            MsgKind::Round2 => {
                if st.done || st.combining {
                    return;
                }
                self.enqueue(now, node, Task { req, kind: TaskKind::VerifyR2 });
            }
        }
    }

    fn enqueue(&mut self, now: SimTime, node: u16, task: Task) {
        self.nodes[node as usize - 1].queue.push_back(task);
        self.maybe_start(now, node);
    }

    fn maybe_start(&mut self, now: SimTime, node: u16) {
        let lanes = self.config.worker_lanes.max(1);
        // Fill every free lane from the FIFO, skipping tasks made
        // obsolete while queued (request already done).
        while self.nodes[node as usize - 1].busy < lanes {
            let Some(task) = self.nodes[node as usize - 1].queue.pop_front() else {
                return;
            };
            let st = self.state[task.req as usize][node as usize - 1];
            let obsolete = match task.kind {
                TaskKind::Verify | TaskKind::VerifyR2 => st.done || st.combining,
                _ => false,
            };
            if obsolete {
                continue;
            }
            let cost = self.task_cost(task);
            self.nodes[node as usize - 1].busy += 1;
            self.push(now + cost, node, EventKind::CpuDone { task });
        }
    }

    fn on_cpu_done(&mut self, now: SimTime, node: u16, task: Task) {
        self.nodes[node as usize - 1].busy -= 1;
        self.apply_task_effect(now, node, task);
        self.maybe_start(now, node);
    }

    fn apply_task_effect(&mut self, now: SimTime, node: u16, task: Task) {
        let req = task.req;
        let quorum = self.quorum;
        let is_kg20 = self.config.scheme == SchemeId::Kg20;
        match task.kind {
            TaskKind::Create => {
                if is_kg20 {
                    // Round-1 commitment: distributed via the TOB
                    // sequencer (node 1), adding the extra hop.
                    {
                        let st = &mut self.state[req as usize][node as usize - 1];
                        st.round1_done = true;
                        st.commits += 1; // own commitment
                        if st.commits == self.n && !st.round2_started {
                            st.round2_started = true;
                            self.enqueue(now, node, Task { req, kind: TaskKind::Round2Sign });
                        }
                    }
                    let my_region = self.nodes[node as usize - 1].region;
                    let seq_region = self.nodes[0].region;
                    let to_seq = if node == 1 { 0 } else { self.link(my_region, seq_region) };
                    for peer in 1..=self.n {
                        if peer == node {
                            continue;
                        }
                        let peer_region = self.nodes[peer as usize - 1].region;
                        let hop = self.link(seq_region, peer_region);
                        self.push(
                            now + to_seq + hop,
                            peer,
                            EventKind::Msg { req, kind: MsgKind::Commit },
                        );
                    }
                } else {
                    {
                        let st = &mut self.state[req as usize][node as usize - 1];
                        st.verified += 1; // own share needs no verification
                        if st.verified >= quorum && !st.combining {
                            st.combining = true;
                            self.enqueue(now, node, Task { req, kind: TaskKind::Combine });
                        }
                    }
                    self.broadcast(now, node, req, MsgKind::Share);
                }
            }
            TaskKind::Verify => {
                let st = &mut self.state[req as usize][node as usize - 1];
                st.verified += 1;
                if st.verified >= quorum && !st.combining && st.arrived {
                    st.combining = true;
                    self.enqueue(now, node, Task { req, kind: TaskKind::Combine });
                }
            }
            TaskKind::Round2Sign => {
                {
                    let st = &mut self.state[req as usize][node as usize - 1];
                    st.verified += 1; // own response
                }
                self.broadcast(now, node, req, MsgKind::Round2);
                let st = self.state[req as usize][node as usize - 1];
                if st.verified == self.n && !st.combining {
                    self.state[req as usize][node as usize - 1].combining = true;
                    self.enqueue(now, node, Task { req, kind: TaskKind::Combine });
                }
            }
            TaskKind::VerifyR2 => {
                let st = &mut self.state[req as usize][node as usize - 1];
                st.verified += 1;
                // KG20 waits for the full signing group.
                if st.verified == self.n && !st.combining && st.round2_started {
                    st.combining = true;
                    self.enqueue(now, node, Task { req, kind: TaskKind::Combine });
                }
            }
            TaskKind::Combine => {
                let st = &mut self.state[req as usize][node as usize - 1];
                st.done = true;
                let latency_s = (now - st.arrival) as f64 / 1e9;
                self.result.node_latencies.push(latency_s);
                self.req_done_count[req as usize] += 1;
                if self.req_done_count[req as usize] == quorum {
                    let send = self.request_send_time[req as usize];
                    self.result
                        .quorum_latencies
                        .push((now - send) as f64 / 1e9);
                    self.result.quorum_completions.push(now as f64 / 1e9);
                    self.result.completed += 1;
                }
            }
        }
    }

    fn broadcast(&mut self, now: SimTime, node: u16, req: u32, kind: MsgKind) {
        let my_region = self.nodes[node as usize - 1].region;
        for peer in 1..=self.n {
            if peer == node {
                continue;
            }
            let peer_region = self.nodes[peer as usize - 1].region;
            let delay = self.link(my_region, peer_region);
            self.push(now + delay, peer, EventKind::Msg { req, kind });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::deployment_by_name;

    fn quick_config(name: &str, scheme: SchemeId, rate: f64) -> SimConfig {
        SimConfig {
            deployment: deployment_by_name(name).unwrap(),
            scheme,
            rate,
            duration: Duration::from_secs(2),
            payload_bytes: 256,
            drain: Duration::from_secs(30),
            seed: 7,
            kg20_precomputed: false,
            worker_lanes: 1,
        }
    }

    #[test]
    fn low_load_completes_everything() {
        let cost = CostModel::reference();
        for scheme in [SchemeId::Sg02, SchemeId::Bls04, SchemeId::Kg20] {
            let cfg = quick_config("DO-7-L", scheme, 4.0);
            let r = run(&cfg, &cost);
            assert_eq!(r.injected, 8, "{scheme}");
            assert!(r.all_processed(), "{scheme}: {}/{}", r.completed, r.injected);
            // Every node completes every request at low load.
            assert_eq!(r.node_latencies.len(), 8 * 7, "{scheme}");
        }
    }

    #[test]
    fn local_latency_below_global() {
        let cost = CostModel::reference();
        let local = run(&quick_config("DO-7-L", SchemeId::Sg02, 4.0), &cost);
        let global = run(&quick_config("DO-7-G", SchemeId::Sg02, 4.0), &cost);
        let l_avg: f64 =
            local.quorum_latencies.iter().sum::<f64>() / local.quorum_latencies.len() as f64;
        let g_avg: f64 =
            global.quorum_latencies.iter().sum::<f64>() / global.quorum_latencies.len() as f64;
        assert!(
            g_avg > l_avg * 3.0,
            "global ({g_avg:.4}s) must dwarf local ({l_avg:.4}s)"
        );
    }

    #[test]
    fn heavier_crypto_is_slower() {
        let cost = CostModel::reference();
        let ecdh = run(&quick_config("DO-7-L", SchemeId::Sg02, 2.0), &cost);
        let rsa = run(&quick_config("DO-7-L", SchemeId::Sh00, 2.0), &cost);
        let e_avg: f64 =
            ecdh.quorum_latencies.iter().sum::<f64>() / ecdh.quorum_latencies.len() as f64;
        let r_avg: f64 =
            rsa.quorum_latencies.iter().sum::<f64>() / rsa.quorum_latencies.len() as f64;
        assert!(r_avg > e_avg * 5.0, "rsa {r_avg:.4}s vs ecdh {e_avg:.4}s");
    }

    #[test]
    fn saturation_leaves_requests_unfinished() {
        let cost = CostModel::reference();
        // SH00 at 512 req/s on 7 nodes is far past its knee.
        let cfg = quick_config("DO-7-L", SchemeId::Sh00, 512.0);
        let r = run(&cfg, &cost);
        assert!(r.injected > 500);
        assert!(
            (r.completed as f64) < 0.9 * r.injected as f64,
            "saturated run should not keep up: {}/{}",
            r.completed,
            r.injected
        );
    }

    #[test]
    fn kg20_latency_tracks_farthest_node_in_global() {
        // KG20 waits for all n nodes, so even the fastest quorum sees
        // ~the full WAN diameter (two rounds + TOB hop).
        let cost = CostModel::reference();
        let r = run(&quick_config("DO-7-G", SchemeId::Kg20, 2.0), &cost);
        assert!(r.all_processed());
        let min = r
            .node_latencies
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        // At least two WAN one-way hops (~0.1 s) even for the luckiest node.
        assert!(min > 0.1, "min node latency {min:.4}s");
    }

    #[test]
    fn worker_lanes_absorb_load_a_single_lane_cannot() {
        let cost = CostModel::reference();
        // SH00 on 7 local nodes at 8 req/s for 2 s: the per-request CPU
        // work (create + t+… verifies + combine, each tens of ms) is ~4×
        // past what one lane clears inside the window + short drain, but
        // well within 8 lanes.
        let mut cfg = quick_config("DO-7-L", SchemeId::Sh00, 8.0);
        cfg.drain = Duration::from_secs(2);
        let one = run(&cfg, &cost);
        cfg.worker_lanes = 8;
        let eight = run(&cfg, &cost);
        assert_eq!(one.injected, eight.injected);
        assert!(
            !one.all_processed(),
            "one lane should saturate: {}/{}",
            one.completed,
            one.injected
        );
        assert!(
            eight.all_processed(),
            "eight lanes should keep up: {}/{}",
            eight.completed,
            eight.injected
        );
        // And where both complete, parallel lanes strictly cut queueing.
        let mean = |r: &SimResult| {
            r.quorum_latencies.iter().sum::<f64>() / r.quorum_latencies.len().max(1) as f64
        };
        assert!(mean(&eight) < mean(&one));
    }

    #[test]
    fn deterministic_given_seed() {
        let cost = CostModel::reference();
        let cfg = quick_config("DO-7-G", SchemeId::Cks05, 8.0);
        let a = run(&cfg, &cost);
        let b = run(&cfg, &cost);
        assert_eq!(a.node_latencies, b.node_latencies);
        assert_eq!(a.quorum_latencies, b.quorum_latencies);
    }

    #[test]
    fn quorum_latency_less_than_worst_node() {
        let cost = CostModel::reference();
        let r = run(&quick_config("DO-31-G", SchemeId::Sg02, 2.0), &cost);
        assert!(r.all_processed());
        let max_node = r.node_latencies.iter().cloned().fold(0.0, f64::max);
        let max_quorum = r.quorum_latencies.iter().cloned().fold(0.0, f64::max);
        assert!(max_quorum <= max_node + 1e-9);
    }
}
