//! Deployment descriptions reproducing the paper's Table 2.
//!
//! Six configurations: small (7), medium (31) and large (127) node
//! fleets, each in a *local* (single datacenter, FRA1) and a *global*
//! (FRA1/SYD1/TOR1/SFO3) variant, with the paper's measured RTTs
//! (≈ 0.65 ms local; ≈ 43 ms / ≈ 100 ms between regions).

use std::time::Duration;

/// A DigitalOcean region from the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// Frankfurt (also hosts the benchmarking client).
    Fra1,
    /// Sydney.
    Syd1,
    /// Toronto.
    Tor1,
    /// San Francisco.
    Sfo3,
}

impl Region {
    /// The four regions of the global deployments.
    pub const ALL: [Region; 4] = [Region::Fra1, Region::Syd1, Region::Tor1, Region::Sfo3];

    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Region::Fra1 => "FRA1",
            Region::Syd1 => "SYD1",
            Region::Tor1 => "TOR1",
            Region::Sfo3 => "SFO3",
        }
    }
}

/// Round-trip time between two regions (paper Table 2: ≈ 0.65 ms
/// intra-region, ≈ 43 ms for nearer inter-region pairs, ≈ 100 ms for
/// far pairs).
pub fn rtt(a: Region, b: Region) -> Duration {
    use Region::*;
    if a == b {
        return Duration::from_micros(650);
    }
    match (a, b) {
        // Nearer pairs (~43 ms): transatlantic FRA–TOR and coastal TOR–SFO.
        (Fra1, Tor1) | (Tor1, Fra1) | (Tor1, Sfo3) | (Sfo3, Tor1) => Duration::from_millis(43),
        // Far pairs (~100 ms): anything involving SYD, plus FRA–SFO.
        _ => Duration::from_millis(100),
    }
}

/// One-way latency between regions (half the RTT).
pub fn one_way(a: Region, b: Region) -> Duration {
    rtt(a, b) / 2
}

/// One row of the paper's Table 2.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// Acronym (e.g. "DO-31-G").
    pub name: &'static str,
    /// Node count.
    pub n: u16,
    /// Corruption bound (`n = 3t + 1`).
    pub t: u16,
    /// Regions hosting nodes (nodes assigned round-robin).
    pub regions: &'static [Region],
    /// The capacity test's maximum request rate (req/s).
    pub max_rate: u64,
}

impl Deployment {
    /// The region of node `id` (1-based, round-robin assignment).
    pub fn region_of(&self, node: u16) -> Region {
        self.regions[(node as usize - 1) % self.regions.len()]
    }

    /// True for single-region (local) deployments.
    pub fn is_local(&self) -> bool {
        self.regions.len() == 1
    }

    /// Reconstruction quorum `t + 1`.
    pub fn quorum(&self) -> u16 {
        self.t + 1
    }
}

const LOCAL: &[Region] = &[Region::Fra1];
const GLOBAL: &[Region] = &[Region::Fra1, Region::Syd1, Region::Tor1, Region::Sfo3];

/// All six deployments of Table 2.
pub fn table2_deployments() -> Vec<Deployment> {
    vec![
        Deployment { name: "DO-7-L", n: 7, t: 2, regions: LOCAL, max_rate: 1024 },
        Deployment { name: "DO-7-G", n: 7, t: 2, regions: GLOBAL, max_rate: 1024 },
        Deployment { name: "DO-31-L", n: 31, t: 10, regions: LOCAL, max_rate: 512 },
        Deployment { name: "DO-31-G", n: 31, t: 10, regions: GLOBAL, max_rate: 512 },
        Deployment { name: "DO-127-L", n: 127, t: 42, regions: LOCAL, max_rate: 64 },
        Deployment { name: "DO-127-G", n: 127, t: 42, regions: GLOBAL, max_rate: 64 },
    ]
}

/// Looks a deployment up by acronym.
pub fn deployment_by_name(name: &str) -> Option<Deployment> {
    table2_deployments().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape() {
        let all = table2_deployments();
        assert_eq!(all.len(), 6);
        for d in &all {
            // BFT sizing n = 3t + 1.
            assert_eq!(d.n, 3 * d.t + 1, "{}", d.name);
            assert_eq!(d.is_local(), d.name.ends_with("-L"));
        }
        assert_eq!(deployment_by_name("DO-31-G").unwrap().max_rate, 512);
        assert!(deployment_by_name("DO-99-X").is_none());
    }

    #[test]
    fn rtt_symmetric_and_sized() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(rtt(a, b), rtt(b, a));
                if a == b {
                    assert!(rtt(a, b) < Duration::from_millis(1));
                } else {
                    assert!(rtt(a, b) >= Duration::from_millis(43));
                    assert!(rtt(a, b) <= Duration::from_millis(100));
                }
            }
        }
        assert_eq!(rtt(Region::Fra1, Region::Tor1), Duration::from_millis(43));
        assert_eq!(rtt(Region::Fra1, Region::Syd1), Duration::from_millis(100));
    }

    #[test]
    fn round_robin_regions() {
        let d = deployment_by_name("DO-7-G").unwrap();
        assert_eq!(d.region_of(1), Region::Fra1);
        assert_eq!(d.region_of(2), Region::Syd1);
        assert_eq!(d.region_of(5), Region::Fra1);
        let l = deployment_by_name("DO-7-L").unwrap();
        for node in 1..=7 {
            assert_eq!(l.region_of(node), Region::Fra1);
        }
    }
}
