//! Loom models of the lock-free metrics primitives.
//!
//! Run with `cargo test -p theta-metrics --features loom`. These pin
//! down the documented `Relaxed` contract of the histogram and the
//! event-loop counters: every concurrently observed cell is bounded by
//! its true final value (per-cell monotonicity — no torn or
//! out-of-thin-air counts), and once writers join, a snapshot is exact.

#![cfg(feature = "loom")]

use std::sync::Arc;
use theta_metrics::{EventLoopCounters, Histogram};
use theta_sync::{model, model_bounded, thread};

/// Sanity: these tests are meaningless against the std passthrough.
#[test]
fn models_are_actually_model_checked() {
    assert!(theta_sync::LOOM, "tests/loom.rs must run with --features loom");
}

/// A recorder races a snapshotter. Every snapshot the reader takes —
/// wherever the checker interleaves it — must satisfy the histogram's
/// contract: count between 0 and 2, sum between 0 and the true total,
/// and the two snapshots it takes in sequence must be monotone. After
/// join, the final snapshot is exact.
#[test]
fn histogram_snapshots_are_bounded_and_monotone() {
    // 10 µs and 50 ms land in different buckets, so a torn snapshot
    // that duplicated or invented a count would break the bounds.
    const FAST: u64 = 10;
    const SLOW: u64 = 50_000;
    // Preemption bound 1: every property here (a bounded or torn value,
    // a non-monotone pair of reads) is witnessed by a single preemption
    // of the reader mid-snapshot, and the 54-bucket load loops make the
    // default bound-2 sweep needlessly slow.
    model_bounded(1, || {
        let h = Arc::new(Histogram::new());

        let recorder = {
            let h = h.clone();
            thread::spawn(move || {
                h.record_micros(FAST);
                h.record_micros(SLOW);
            })
        };
        let reader = {
            let h = h.clone();
            thread::spawn(move || {
                let a = h.snapshot();
                let b = h.snapshot();
                for s in [&a, &b] {
                    assert!(s.count() <= 2, "count out of thin air: {}", s.count());
                    assert!(s.sum_micros <= FAST + SLOW, "sum out of thin air");
                    for &c in &s.buckets {
                        assert!(c <= 1, "torn bucket count: {c}");
                    }
                }
                // Monotonicity: a bucket never shrinks between reads.
                for (x, y) in a.buckets.iter().zip(&b.buckets) {
                    assert!(x <= y, "bucket count went backwards");
                }
                assert!(a.sum_micros <= b.sum_micros);
            })
        };

        recorder.join().unwrap();
        reader.join().unwrap();

        let fin = h.snapshot();
        assert_eq!(fin.count(), 2, "quiescent snapshot must be exact");
        assert_eq!(fin.sum_micros, FAST + SLOW);
    });
}

/// Two threads bump the same event-loop counter; a concurrent snapshot
/// is bounded by the true total, and the post-join snapshot is exact —
/// relaxed increments are never lost.
#[test]
fn counter_increments_are_never_lost() {
    // Default preemption bound (2): with three threads the unbounded
    // schedule space runs to minutes, and both failure modes under test
    // (a lost increment, a torn observation) already appear with one
    // preemption.
    model(|| {
        let c = Arc::new(EventLoopCounters::new());

        let writers: Vec<_> = (0..2)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    EventLoopCounters::bump(&c.wakeups);
                    EventLoopCounters::add(&c.events_processed, 3);
                })
            })
            .collect();
        let observer = {
            let c = c.clone();
            thread::spawn(move || {
                let s = c.snapshot();
                assert!(s.wakeups <= 2, "wakeups over-counted: {}", s.wakeups);
                assert!(s.events_processed <= 6);
                assert_eq!(s.events_processed % 3, 0, "torn add observed");
            })
        };

        for h in writers {
            h.join().unwrap();
        }
        observer.join().unwrap();

        let s = c.snapshot();
        assert_eq!(s.wakeups, 2, "an increment was lost");
        assert_eq!(s.events_processed, 6);
    });
}
