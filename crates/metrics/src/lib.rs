//! # theta-metrics
//!
//! The evaluation metrics of the paper's §4.3, reproduced exactly:
//!
//! - percentile latencies `L_k` (nearest-rank),
//! - the **threshold latency** `L_θ` with `θ = (t+1)/n · 100` — how fast
//!   the fastest quorum finishes,
//! - the **residual delay factor** `δ_res = (L95 − L_θ)/L_θ` — how much
//!   slow nodes keep loading the network after the result is ready,
//! - the **latency fairness index** `η_θ = L_θ/L95 ∈ (0, 1]` — how evenly
//!   nodes contribute,
//! - throughput with the paper's 10 % grace-period rule, and
//! - knee-capacity detection (rate maximizing throughput/latency).

pub mod counters;
pub mod histogram;
pub mod observability;
pub mod profiler;
pub mod registry;
pub mod trace;

pub use counters::{EventLoopCounters, EventLoopSnapshot};
pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use observability::{NodeObservability, PhaseTimers, PoolMetrics};
pub use profiler::{PhaseScope, WorkerPhase, WorkerPhases, WORKER_PHASE_HISTOGRAM};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use trace::{TraceEvent, TraceEventKind, TraceJournal, DEFAULT_JOURNAL_CAPACITY};

/// Latency values in seconds.
pub type Seconds = f64;

/// Nearest-rank percentile of an unsorted sample set.
///
/// # Panics
///
/// Panics when `samples` is empty or `pct` is outside `[0, 100]`.
pub fn percentile(samples: &[Seconds], pct: f64) -> Seconds {
    assert!(!samples.is_empty(), "percentile of empty sample set");
    assert!((0.0..=100.0).contains(&pct), "percentile out of range");
    let mut sorted: Vec<Seconds> = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    if pct == 0.0 {
        return sorted[0];
    }
    // Nearest-rank: ⌈p/100 · N⌉-th smallest (1-based).
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The θ parameter of the paper: `(t+1)/n · 100`.
pub fn theta_percentile(t: u16, n: u16) -> f64 {
    (t as f64 + 1.0) / n as f64 * 100.0
}

/// Summary of a latency distribution pooled across nodes (the paper's
/// `L^net` metrics plus the derived indices).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencySummary {
    /// Median `L50`.
    pub l50: Seconds,
    /// Tail `L95`.
    pub l95: Seconds,
    /// Threshold latency `L_θ`.
    pub l_theta: Seconds,
    /// Residual delay factor `δ_res`.
    pub delta_res: f64,
    /// Fairness index `η_θ`.
    pub eta_theta: f64,
}

/// Computes the paper's latency metrics from pooled per-node latencies.
///
/// `samples` holds one latency per (request, node) completion; `t`/`n`
/// define θ. The derived indices assume the paper's BFT sizing, where
/// θ ≈ 34 < 95; for degenerate parameters with θ > 95 the quorum
/// percentile exceeds the tail and `δ_res` goes negative.
///
/// # Panics
///
/// Panics when `samples` is empty.
pub fn latency_summary(samples: &[Seconds], t: u16, n: u16) -> LatencySummary {
    let theta = theta_percentile(t, n);
    let l50 = percentile(samples, 50.0);
    let l95 = percentile(samples, 95.0);
    let l_theta = percentile(samples, theta);
    let delta_res = if l_theta > 0.0 { (l95 - l_theta) / l_theta } else { 0.0 };
    let eta_theta = if l95 > 0.0 { l_theta / l95 } else { 1.0 };
    LatencySummary { l50, l95, l_theta, delta_res, eta_theta }
}

/// Throughput estimation per §4.3: completed requests over the span from
/// first to last completion, except that when processing drags more than
/// 10 % past the nominal experiment duration (or requests were left
/// unprocessed), the full experiment duration is used instead.
///
/// - `completions`: completion timestamps (seconds from experiment start)
///   of successfully processed requests;
/// - `first_start`: start timestamp of the first request (seconds);
/// - `experiment_duration`: the nominal duration (seconds);
/// - `all_processed`: whether every injected request completed.
pub fn throughput(
    completions: &[Seconds],
    first_start: Seconds,
    experiment_duration: Seconds,
    all_processed: bool,
) -> f64 {
    if completions.is_empty() {
        return 0.0;
    }
    let last = completions.iter().cloned().fold(f64::MIN, f64::max);
    let grace_limit = experiment_duration * 1.10;
    // The grace check is on the measured span (last completion relative
    // to the first start), not the raw completion timestamp: a run whose
    // first request starts late must not be misclassified as dragging.
    let span = if !all_processed || last - first_start > grace_limit {
        experiment_duration
    } else {
        (last - first_start).max(f64::EPSILON)
    };
    completions.len() as f64 / span
}

/// One point of a capacity-test series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CapacityPoint {
    /// Offered load (requests/s).
    pub offered_rate: f64,
    /// Measured throughput (requests/s).
    pub throughput: f64,
    /// `L95` latency at this load (seconds).
    pub l95: Seconds,
}

/// Finds the knee capacity: the offered rate maximizing the ratio of
/// throughput to latency (§4.4). Returns `None` for an empty series.
pub fn knee_capacity(series: &[CapacityPoint]) -> Option<CapacityPoint> {
    series
        .iter()
        .copied()
        .filter(|p| p.l95 > 0.0)
        .max_by(|a, b| {
            let ra = a.throughput / a.l95;
            let rb = b.throughput / b.l95;
            ra.partial_cmp(&rb).expect("finite ratios")
        })
}

/// Usable capacity: the highest offered rate whose throughput kept up
/// with (≥ 90 % of) the offered load. Returns `None` when no point did.
pub fn usable_capacity(series: &[CapacityPoint]) -> Option<CapacityPoint> {
    series
        .iter()
        .copied()
        .filter(|p| p.throughput >= 0.9 * p.offered_rate)
        .max_by(|a, b| a.offered_rate.partial_cmp(&b.offered_rate).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 50.0), 5.0);
        assert_eq!(percentile(&s, 95.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 10.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 10.0), 1.0);
        assert_eq!(percentile(&s, 34.0), 4.0);
    }

    #[test]
    fn percentile_unsorted_input() {
        let s = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&s, 50.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn theta_for_bft_sizes() {
        // Paper: θ ≈ 34 for n = 3t+1 deployments.
        assert!((theta_percentile(2, 7) - 42.857).abs() < 0.01);
        assert!((theta_percentile(10, 31) - 35.48).abs() < 0.01);
        assert!((theta_percentile(42, 127) - 33.86).abs() < 0.01);
    }

    #[test]
    fn summary_relationships() {
        // A skewed distribution: fast quorum, slow stragglers.
        let mut samples = vec![0.1; 40]; // fast third
        samples.extend(vec![0.3; 40]);
        samples.extend(vec![0.9; 20]); // slow tail
        let s = latency_summary(&samples, 10, 31);
        assert!(s.l_theta <= s.l50);
        assert!(s.l50 <= s.l95);
        assert!(s.delta_res > 0.0);
        assert!(s.eta_theta > 0.0 && s.eta_theta <= 1.0);
        // δ_res and η_θ are inversely related: (l95−lθ)/lθ and lθ/l95.
        let expect_eta = s.l_theta / s.l95;
        assert!((s.eta_theta - expect_eta).abs() < 1e-12);
        let expect_delta = (s.l95 - s.l_theta) / s.l_theta;
        assert!((s.delta_res - expect_delta).abs() < 1e-12);
    }

    #[test]
    fn summary_uniform_distribution_is_fair() {
        let samples = vec![0.2; 100];
        let s = latency_summary(&samples, 2, 7);
        assert_eq!(s.delta_res, 0.0);
        assert_eq!(s.eta_theta, 1.0);
    }

    #[test]
    fn throughput_normal_case() {
        // 60 completions over [0, 60]s, all processed in time.
        let completions: Vec<f64> = (1..=60).map(|i| i as f64).collect();
        let tput = throughput(&completions, 0.0, 60.0, true);
        assert!((tput - 1.0).abs() < 0.05);
    }

    #[test]
    fn throughput_grace_period() {
        // Slightly past the end (< 10%): still measured on actual span.
        let completions: Vec<f64> = (1..=65).map(|i| i as f64).collect();
        let tput = throughput(&completions, 0.0, 60.0, true);
        assert!((tput - 1.0).abs() < 0.05);
        // Far past the end: clamped to experiment duration.
        let completions = vec![10.0, 90.0];
        let tput = throughput(&completions, 0.0, 60.0, true);
        assert!((tput - 2.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_grace_is_relative_to_first_start() {
        // The first request starts at t=10 and the last completion lands
        // at t=68: the measured span is 58 s — inside the 66 s grace
        // limit — so throughput must use the measured span, not be
        // clamped to the nominal duration.
        let completions: Vec<f64> = (11..=68).map(|i| i as f64).collect();
        let tput = throughput(&completions, 10.0, 60.0, true);
        assert!((tput - 58.0 / 58.0).abs() < 0.05, "tput {tput}");
        // And a genuinely dragging run (span 75 s > 66 s) is clamped.
        let completions = vec![20.0, 85.0];
        let tput = throughput(&completions, 10.0, 60.0, true);
        assert!((tput - 2.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_unprocessed_requests_use_full_duration() {
        let completions = vec![1.0, 2.0];
        let tput = throughput(&completions, 0.0, 60.0, false);
        assert!((tput - 2.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_empty_is_zero() {
        assert_eq!(throughput(&[], 0.0, 60.0, true), 0.0);
    }

    #[test]
    fn knee_detection() {
        // Throughput saturates at 8 req/s while latency explodes.
        let series = vec![
            CapacityPoint { offered_rate: 1.0, throughput: 1.0, l95: 0.10 },
            CapacityPoint { offered_rate: 2.0, throughput: 2.0, l95: 0.10 },
            CapacityPoint { offered_rate: 4.0, throughput: 4.0, l95: 0.11 },
            CapacityPoint { offered_rate: 8.0, throughput: 8.0, l95: 0.15 },
            CapacityPoint { offered_rate: 16.0, throughput: 9.0, l95: 1.2 },
            CapacityPoint { offered_rate: 32.0, throughput: 9.0, l95: 4.0 },
        ];
        let knee = knee_capacity(&series).unwrap();
        assert_eq!(knee.offered_rate, 8.0);
        let usable = usable_capacity(&series).unwrap();
        assert_eq!(usable.offered_rate, 8.0);
    }

    #[test]
    fn knee_empty_series() {
        assert!(knee_capacity(&[]).is_none());
        assert!(usable_capacity(&[]).is_none());
    }
}
