//! Request-scoped tracing: a bounded ring-buffer journal of lifecycle
//! events for protocol instances.
//!
//! Every node keeps one [`TraceJournal`]. Instrumentation sites append
//! [`TraceEvent`]s keyed by the 32-byte instance id; a trace query
//! filters the ring by instance and returns the events in the order
//! they were recorded. Timestamps are microseconds since the journal's
//! creation (a monotonic clock), so within one node event ordering and
//! phase durations are exact. A wall-clock anchor (UNIX-epoch
//! microseconds captured once at creation) maps the monotonic epoch to
//! absolute time, which is what lets per-node journals from different
//! machines be merged into one cluster timeline.
//!
//! The journal is bounded: when full, the oldest events are dropped
//! (and counted) rather than growing without limit — tracing must never
//! become the memory leak it is supposed to detect. Instances that lose
//! events to eviction while later events survive are remembered as
//! *truncated*, so a trace query can say "partial lifecycle" instead of
//! silently presenting an incomplete one as complete.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use theta_sync::atomic::{AtomicU64, Ordering};
use theta_sync::{Mutex, MutexGuard};

/// What happened, in instance-lifecycle order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEventKind {
    /// An RPC request referencing this instance arrived at the service
    /// layer.
    RpcReceived,
    /// The manager created the protocol instance.
    InstanceStarted,
    /// This node finished computing its own share.
    ShareComputed,
    /// This node broadcast its share to the peers.
    ShareSent,
    /// A share message from a peer was received by the manager.
    ShareReceived,
    /// A received share passed verification.
    ShareVerified,
    /// A received share failed verification and was discarded.
    ShareRejected,
    /// Enough shares were assembled to attempt combination.
    QuorumReached,
    /// The shares were combined into the final result.
    Combined,
    /// The result was handed to the waiting subscriber(s).
    ResultDelivered,
    /// The instance hit its deadline before reaching quorum.
    InstanceTimedOut,
    /// The instance failed for a non-timeout reason.
    InstanceFailed,
    /// The manager re-broadcast this node's share (retry/backoff).
    RetryBroadcast,
    /// A duplicate request was answered from the result cache.
    CacheHit,
    /// A message for this instance was dropped (malformed, spoofed, or
    /// residual traffic for a finished instance).
    MessageDropped,
    /// An internal error on the event loop was contained and counted.
    Error,
    /// A received share's validity check was handed to the pool-scoped
    /// cross-instance batch aggregator instead of being verified inline.
    BatchEnqueued,
    /// A cross-instance batch settle returned this instance's verdicts
    /// (the detail notes the batch size and flush reason).
    BatchSettled,
    /// A gossip node relayed a flood frame carrying this instance's
    /// traffic (the peer field is the link it arrived on, the detail
    /// notes origin/span/hop of the trace context).
    RelayHop,
    /// An envelope for this instance left this node toward a peer (the
    /// detail carries the span id).
    PeerSend,
    /// An envelope for this instance arrived from a peer (the detail
    /// carries the span id and hop count it travelled).
    PeerRecv,
    /// The key manager pulled a tenant key into the hot cache (the
    /// detail names the tenant/key).
    KeyLoaded,
    /// The hot cache evicted a tenant key to make room (the detail
    /// names the tenant/key).
    KeyEvicted,
    /// A request was refused because its tenant's in-flight quota was
    /// exhausted (the detail names the tenant).
    QuotaRejected,
}

impl TraceEventKind {
    /// Stable wire code for RPC transport.
    pub fn code(self) -> u8 {
        match self {
            TraceEventKind::RpcReceived => 0,
            TraceEventKind::InstanceStarted => 1,
            TraceEventKind::ShareComputed => 2,
            TraceEventKind::ShareSent => 3,
            TraceEventKind::ShareReceived => 4,
            TraceEventKind::ShareVerified => 5,
            TraceEventKind::ShareRejected => 6,
            TraceEventKind::QuorumReached => 7,
            TraceEventKind::Combined => 8,
            TraceEventKind::ResultDelivered => 9,
            TraceEventKind::InstanceTimedOut => 10,
            TraceEventKind::InstanceFailed => 11,
            TraceEventKind::RetryBroadcast => 12,
            TraceEventKind::CacheHit => 13,
            TraceEventKind::MessageDropped => 14,
            TraceEventKind::Error => 15,
            TraceEventKind::BatchEnqueued => 16,
            TraceEventKind::BatchSettled => 17,
            TraceEventKind::RelayHop => 18,
            TraceEventKind::PeerSend => 19,
            TraceEventKind::PeerRecv => 20,
            TraceEventKind::KeyLoaded => 21,
            TraceEventKind::KeyEvicted => 22,
            TraceEventKind::QuotaRejected => 23,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes from a
    /// newer peer.
    pub fn from_code(code: u8) -> Option<TraceEventKind> {
        Some(match code {
            0 => TraceEventKind::RpcReceived,
            1 => TraceEventKind::InstanceStarted,
            2 => TraceEventKind::ShareComputed,
            3 => TraceEventKind::ShareSent,
            4 => TraceEventKind::ShareReceived,
            5 => TraceEventKind::ShareVerified,
            6 => TraceEventKind::ShareRejected,
            7 => TraceEventKind::QuorumReached,
            8 => TraceEventKind::Combined,
            9 => TraceEventKind::ResultDelivered,
            10 => TraceEventKind::InstanceTimedOut,
            11 => TraceEventKind::InstanceFailed,
            12 => TraceEventKind::RetryBroadcast,
            13 => TraceEventKind::CacheHit,
            14 => TraceEventKind::MessageDropped,
            15 => TraceEventKind::Error,
            16 => TraceEventKind::BatchEnqueued,
            17 => TraceEventKind::BatchSettled,
            18 => TraceEventKind::RelayHop,
            19 => TraceEventKind::PeerSend,
            20 => TraceEventKind::PeerRecv,
            21 => TraceEventKind::KeyLoaded,
            22 => TraceEventKind::KeyEvicted,
            23 => TraceEventKind::QuotaRejected,
            _ => return None,
        })
    }

    /// Human-readable label used by the CLI pretty-printer.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::RpcReceived => "rpc-received",
            TraceEventKind::InstanceStarted => "instance-started",
            TraceEventKind::ShareComputed => "share-computed",
            TraceEventKind::ShareSent => "share-sent",
            TraceEventKind::ShareReceived => "share-received",
            TraceEventKind::ShareVerified => "share-verified",
            TraceEventKind::ShareRejected => "share-rejected",
            TraceEventKind::QuorumReached => "quorum-reached",
            TraceEventKind::Combined => "combined",
            TraceEventKind::ResultDelivered => "result-delivered",
            TraceEventKind::InstanceTimedOut => "instance-timed-out",
            TraceEventKind::InstanceFailed => "instance-failed",
            TraceEventKind::RetryBroadcast => "retry-broadcast",
            TraceEventKind::CacheHit => "cache-hit",
            TraceEventKind::MessageDropped => "message-dropped",
            TraceEventKind::Error => "error",
            TraceEventKind::BatchEnqueued => "batch-enqueued",
            TraceEventKind::BatchSettled => "batch-settled",
            TraceEventKind::RelayHop => "relay-hop",
            TraceEventKind::PeerSend => "peer-send",
            TraceEventKind::PeerRecv => "peer-recv",
            TraceEventKind::KeyLoaded => "key-loaded",
            TraceEventKind::KeyEvicted => "key-evicted",
            TraceEventKind::QuotaRejected => "quota-rejected",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The 32-byte protocol-instance id the event belongs to.
    pub instance: [u8; 32],
    /// What happened.
    pub kind: TraceEventKind,
    /// Microseconds since the journal was created (monotonic).
    pub at_micros: u64,
    /// Peer the event refers to, when any (0 = not peer-related; node
    /// ids in this codebase start at 1).
    pub peer: u16,
    /// Free-form context (error text, drop reason, share index…).
    pub detail: String,
}

/// Default journal capacity: enough for several hundred instances'
/// full lifecycles without unbounded growth.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 16_384;

struct Ring {
    events: VecDeque<TraceEvent>,
    /// Live event count per instance still present in the ring. An
    /// entry exists iff the instance has ≥1 event buffered, so the map
    /// (and the truncated set below) stay bounded by ring occupancy.
    live: HashMap<[u8; 32], u32>,
    /// Instances that lost at least one event to eviction while later
    /// events survive. Once the last event goes, the flag goes with it
    /// (an empty trace reads as "nothing recorded", not "partial").
    truncated: HashSet<[u8; 32]>,
}

/// Bounded ring buffer of [`TraceEvent`]s, one per node.
pub struct TraceJournal {
    epoch: Instant,
    wall_anchor_micros: u64,
    capacity: usize,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
}

impl Default for TraceJournal {
    fn default() -> Self {
        TraceJournal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl TraceJournal {
    /// A journal holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceJournal {
        let wall_anchor_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        TraceJournal {
            epoch: Instant::now(),
            wall_anchor_micros,
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                live: HashMap::new(),
                truncated: HashSet::new(),
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// The journal's ring is always structurally consistent; a panic in
    /// a holder must not disable tracing for the rest of the node's
    /// life, so lock poisoning is ignored.
    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Microseconds elapsed since the journal was created.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// UNIX-epoch microseconds at journal creation. Adding this anchor
    /// to an event's `at_micros` dates it absolutely (up to the wall
    /// clock's own accuracy), which makes single-node traces datable
    /// and cross-node traces mergeable.
    pub fn wall_anchor_micros(&self) -> u64 {
        self.wall_anchor_micros
    }

    /// Records an event with no peer / detail context.
    pub fn record(&self, instance: [u8; 32], kind: TraceEventKind) {
        self.record_full(instance, kind, 0, String::new());
    }

    /// Records an event attributed to a peer.
    pub fn record_peer(&self, instance: [u8; 32], kind: TraceEventKind, peer: u16) {
        self.record_full(instance, kind, peer, String::new());
    }

    /// Records an event with detail text.
    pub fn record_detail(&self, instance: [u8; 32], kind: TraceEventKind, detail: impl Into<String>) {
        self.record_full(instance, kind, 0, detail.into());
    }

    /// Records a fully specified event.
    pub fn record_full(
        &self,
        instance: [u8; 32],
        kind: TraceEventKind,
        peer: u16,
        detail: String,
    ) {
        let ev = TraceEvent { instance, kind, at_micros: self.now_micros(), peer, detail };
        let mut guard = self.lock();
        let ring = &mut *guard;
        if ring.events.len() == self.capacity {
            if let Some(old) = ring.events.pop_front() {
                match ring.live.get_mut(&old.instance) {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        ring.truncated.insert(old.instance);
                    }
                    _ => {
                        ring.live.remove(&old.instance);
                        ring.truncated.remove(&old.instance);
                    }
                }
            }
            // Relaxed: the only writer path runs under the ring lock,
            // so increments are already serialized; readers treat the
            // value as a monotone statistic, never a synchronization
            // signal.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        *ring.live.entry(instance).or_insert(0) += 1;
        ring.events.push_back(ev);
    }

    /// All events for one instance, in recording order.
    pub fn events_for(&self, instance: &[u8; 32]) -> Vec<TraceEvent> {
        self.lock().events.iter().filter(|e| &e.instance == instance).cloned().collect()
    }

    /// All events for one instance plus whether the ring evicted part
    /// of that instance's lifecycle (`true` = the returned events are a
    /// truncated suffix, not the full story).
    pub fn events_for_flagged(&self, instance: &[u8; 32]) -> (Vec<TraceEvent>, bool) {
        let ring = self.lock();
        let events: Vec<TraceEvent> =
            ring.events.iter().filter(|e| &e.instance == instance).cloned().collect();
        let truncated = ring.truncated.contains(instance);
        (events, truncated)
    }

    /// Number of distinct instances with at least one
    /// `InstanceStarted` event still in the ring.
    pub fn instances_started(&self) -> usize {
        let ring = self.lock();
        let mut seen: Vec<[u8; 32]> = ring
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::InstanceStarted)
            .map(|e| e.instance)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(b: u8) -> [u8; 32] {
        let mut x = [0u8; 32];
        x[0] = b;
        x
    }

    #[test]
    fn records_in_order_and_filters_by_instance() {
        let j = TraceJournal::new(64);
        j.record(id(1), TraceEventKind::InstanceStarted);
        j.record(id(2), TraceEventKind::InstanceStarted);
        j.record(id(1), TraceEventKind::ShareComputed);
        j.record_peer(id(1), TraceEventKind::ShareReceived, 3);
        j.record(id(1), TraceEventKind::ResultDelivered);

        let evs = j.events_for(&id(1));
        let kinds: Vec<_> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::InstanceStarted,
                TraceEventKind::ShareComputed,
                TraceEventKind::ShareReceived,
                TraceEventKind::ResultDelivered,
            ]
        );
        // Timestamps are monotone non-decreasing.
        for w in evs.windows(2) {
            assert!(w[0].at_micros <= w[1].at_micros);
        }
        assert_eq!(evs[2].peer, 3);
        assert_eq!(j.instances_started(), 2);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let j = TraceJournal::new(4);
        for i in 0..10u8 {
            j.record(id(i), TraceEventKind::InstanceStarted);
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        // Only the newest 4 instances survive.
        assert!(j.events_for(&id(0)).is_empty());
        assert_eq!(j.events_for(&id(9)).len(), 1);
    }

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=23u8 {
            let kind = TraceEventKind::from_code(code).unwrap();
            assert_eq!(kind.code(), code);
            assert!(!kind.label().is_empty());
        }
        assert!(TraceEventKind::from_code(24).is_none());
        assert!(TraceEventKind::from_code(200).is_none());
    }

    #[test]
    fn unknown_instance_yields_empty() {
        let j = TraceJournal::new(8);
        j.record(id(1), TraceEventKind::InstanceStarted);
        assert!(j.events_for(&id(7)).is_empty());
    }

    #[test]
    fn wall_anchor_is_plausible_unix_time() {
        let j = TraceJournal::new(8);
        // After 2020-01-01 (in µs) and before 2100-01-01: catches a
        // zeroed or nanosecond-vs-microsecond-confused anchor.
        assert!(j.wall_anchor_micros() > 1_577_836_800_000_000);
        assert!(j.wall_anchor_micros() < 4_102_444_800_000_000);
    }

    #[test]
    fn partial_eviction_flags_instance_truncated() {
        let j = TraceJournal::new(4);
        // Instance 1 records two events, then churn from instance 2
        // evicts the first of them.
        j.record(id(1), TraceEventKind::InstanceStarted);
        j.record(id(1), TraceEventKind::ShareComputed);
        let (evs, truncated) = j.events_for_flagged(&id(1));
        assert_eq!(evs.len(), 2);
        assert!(!truncated, "untouched instance must not read truncated");

        j.record(id(2), TraceEventKind::InstanceStarted);
        j.record(id(2), TraceEventKind::ShareComputed);
        j.record(id(2), TraceEventKind::Combined); // evicts id(1) InstanceStarted

        let (evs, truncated) = j.events_for_flagged(&id(1));
        assert_eq!(evs.len(), 1, "one id(1) event must survive");
        assert_eq!(evs[0].kind, TraceEventKind::ShareComputed);
        assert!(truncated, "partially evicted instance must read truncated");
    }

    #[test]
    fn full_eviction_clears_truncation_flag() {
        let j = TraceJournal::new(2);
        j.record(id(1), TraceEventKind::InstanceStarted);
        j.record(id(1), TraceEventKind::ShareComputed);
        j.record(id(2), TraceEventKind::InstanceStarted); // id(1) now partial
        let (_, truncated) = j.events_for_flagged(&id(1));
        assert!(truncated);
        j.record(id(2), TraceEventKind::ShareComputed); // id(1) fully gone
        let (evs, truncated) = j.events_for_flagged(&id(1));
        assert!(evs.is_empty());
        assert!(!truncated, "empty trace is 'nothing recorded', not 'partial'");
    }

    #[test]
    fn wraparound_truncation_across_many_instances() {
        let j = TraceJournal::new(6);
        // Three instances, three events each, interleaved; capacity 6
        // keeps exactly the newest six events.
        for round in 0..3u8 {
            for inst in 0..3u8 {
                let kind = match round {
                    0 => TraceEventKind::InstanceStarted,
                    1 => TraceEventKind::ShareComputed,
                    _ => TraceEventKind::Combined,
                };
                j.record(id(inst), kind);
            }
        }
        // All three instances lost their round-0 event but keep rounds
        // 1 and 2 — every one of them must read truncated.
        for inst in 0..3u8 {
            let (evs, truncated) = j.events_for_flagged(&id(inst));
            assert_eq!(evs.len(), 2);
            assert!(truncated, "instance {inst} wrapped and must be flagged");
        }
    }
}
