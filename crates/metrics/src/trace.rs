//! Request-scoped tracing: a bounded ring-buffer journal of lifecycle
//! events for protocol instances.
//!
//! Every node keeps one [`TraceJournal`]. Instrumentation sites append
//! [`TraceEvent`]s keyed by the 32-byte instance id; a trace query
//! filters the ring by instance and returns the events in the order
//! they were recorded. Timestamps are microseconds since the journal's
//! creation (a monotonic clock), so within one node event ordering and
//! phase durations are exact.
//!
//! The journal is bounded: when full, the oldest events are dropped
//! (and counted) rather than growing without limit — tracing must never
//! become the memory leak it is supposed to detect.

use std::collections::VecDeque;
use std::time::Instant;
use theta_sync::atomic::{AtomicU64, Ordering};
use theta_sync::{Mutex, MutexGuard};

/// What happened, in instance-lifecycle order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceEventKind {
    /// An RPC request referencing this instance arrived at the service
    /// layer.
    RpcReceived,
    /// The manager created the protocol instance.
    InstanceStarted,
    /// This node finished computing its own share.
    ShareComputed,
    /// This node broadcast its share to the peers.
    ShareSent,
    /// A share message from a peer was received by the manager.
    ShareReceived,
    /// A received share passed verification.
    ShareVerified,
    /// A received share failed verification and was discarded.
    ShareRejected,
    /// Enough shares were assembled to attempt combination.
    QuorumReached,
    /// The shares were combined into the final result.
    Combined,
    /// The result was handed to the waiting subscriber(s).
    ResultDelivered,
    /// The instance hit its deadline before reaching quorum.
    InstanceTimedOut,
    /// The instance failed for a non-timeout reason.
    InstanceFailed,
    /// The manager re-broadcast this node's share (retry/backoff).
    RetryBroadcast,
    /// A duplicate request was answered from the result cache.
    CacheHit,
    /// A message for this instance was dropped (malformed, spoofed, or
    /// residual traffic for a finished instance).
    MessageDropped,
    /// An internal error on the event loop was contained and counted.
    Error,
    /// A received share's validity check was handed to the pool-scoped
    /// cross-instance batch aggregator instead of being verified inline.
    BatchEnqueued,
    /// A cross-instance batch settle returned this instance's verdicts
    /// (the detail notes the batch size and flush reason).
    BatchSettled,
}

impl TraceEventKind {
    /// Stable wire code for RPC transport.
    pub fn code(self) -> u8 {
        match self {
            TraceEventKind::RpcReceived => 0,
            TraceEventKind::InstanceStarted => 1,
            TraceEventKind::ShareComputed => 2,
            TraceEventKind::ShareSent => 3,
            TraceEventKind::ShareReceived => 4,
            TraceEventKind::ShareVerified => 5,
            TraceEventKind::ShareRejected => 6,
            TraceEventKind::QuorumReached => 7,
            TraceEventKind::Combined => 8,
            TraceEventKind::ResultDelivered => 9,
            TraceEventKind::InstanceTimedOut => 10,
            TraceEventKind::InstanceFailed => 11,
            TraceEventKind::RetryBroadcast => 12,
            TraceEventKind::CacheHit => 13,
            TraceEventKind::MessageDropped => 14,
            TraceEventKind::Error => 15,
            TraceEventKind::BatchEnqueued => 16,
            TraceEventKind::BatchSettled => 17,
        }
    }

    /// Inverse of [`code`](Self::code); `None` for unknown codes from a
    /// newer peer.
    pub fn from_code(code: u8) -> Option<TraceEventKind> {
        Some(match code {
            0 => TraceEventKind::RpcReceived,
            1 => TraceEventKind::InstanceStarted,
            2 => TraceEventKind::ShareComputed,
            3 => TraceEventKind::ShareSent,
            4 => TraceEventKind::ShareReceived,
            5 => TraceEventKind::ShareVerified,
            6 => TraceEventKind::ShareRejected,
            7 => TraceEventKind::QuorumReached,
            8 => TraceEventKind::Combined,
            9 => TraceEventKind::ResultDelivered,
            10 => TraceEventKind::InstanceTimedOut,
            11 => TraceEventKind::InstanceFailed,
            12 => TraceEventKind::RetryBroadcast,
            13 => TraceEventKind::CacheHit,
            14 => TraceEventKind::MessageDropped,
            15 => TraceEventKind::Error,
            16 => TraceEventKind::BatchEnqueued,
            17 => TraceEventKind::BatchSettled,
            _ => return None,
        })
    }

    /// Human-readable label used by the CLI pretty-printer.
    pub fn label(self) -> &'static str {
        match self {
            TraceEventKind::RpcReceived => "rpc-received",
            TraceEventKind::InstanceStarted => "instance-started",
            TraceEventKind::ShareComputed => "share-computed",
            TraceEventKind::ShareSent => "share-sent",
            TraceEventKind::ShareReceived => "share-received",
            TraceEventKind::ShareVerified => "share-verified",
            TraceEventKind::ShareRejected => "share-rejected",
            TraceEventKind::QuorumReached => "quorum-reached",
            TraceEventKind::Combined => "combined",
            TraceEventKind::ResultDelivered => "result-delivered",
            TraceEventKind::InstanceTimedOut => "instance-timed-out",
            TraceEventKind::InstanceFailed => "instance-failed",
            TraceEventKind::RetryBroadcast => "retry-broadcast",
            TraceEventKind::CacheHit => "cache-hit",
            TraceEventKind::MessageDropped => "message-dropped",
            TraceEventKind::Error => "error",
            TraceEventKind::BatchEnqueued => "batch-enqueued",
            TraceEventKind::BatchSettled => "batch-settled",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The 32-byte protocol-instance id the event belongs to.
    pub instance: [u8; 32],
    /// What happened.
    pub kind: TraceEventKind,
    /// Microseconds since the journal was created (monotonic).
    pub at_micros: u64,
    /// Peer the event refers to, when any (0 = not peer-related; node
    /// ids in this codebase start at 1).
    pub peer: u16,
    /// Free-form context (error text, drop reason, share index…).
    pub detail: String,
}

/// Default journal capacity: enough for several hundred instances'
/// full lifecycles without unbounded growth.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 16_384;

/// Bounded ring buffer of [`TraceEvent`]s, one per node.
pub struct TraceJournal {
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
    dropped: AtomicU64,
}

impl Default for TraceJournal {
    fn default() -> Self {
        TraceJournal::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl TraceJournal {
    /// A journal holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceJournal {
        TraceJournal {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            dropped: AtomicU64::new(0),
        }
    }

    /// The journal's ring is always structurally consistent; a panic in
    /// a holder must not disable tracing for the rest of the node's
    /// life, so lock poisoning is ignored.
    fn lock(&self) -> MutexGuard<'_, VecDeque<TraceEvent>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Microseconds elapsed since the journal was created.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Records an event with no peer / detail context.
    pub fn record(&self, instance: [u8; 32], kind: TraceEventKind) {
        self.record_full(instance, kind, 0, String::new());
    }

    /// Records an event attributed to a peer.
    pub fn record_peer(&self, instance: [u8; 32], kind: TraceEventKind, peer: u16) {
        self.record_full(instance, kind, peer, String::new());
    }

    /// Records an event with detail text.
    pub fn record_detail(&self, instance: [u8; 32], kind: TraceEventKind, detail: impl Into<String>) {
        self.record_full(instance, kind, 0, detail.into());
    }

    /// Records a fully specified event.
    pub fn record_full(
        &self,
        instance: [u8; 32],
        kind: TraceEventKind,
        peer: u16,
        detail: String,
    ) {
        let ev = TraceEvent { instance, kind, at_micros: self.now_micros(), peer, detail };
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
            // Relaxed: the only writer path runs under the ring lock,
            // so increments are already serialized; readers treat the
            // value as a monotone statistic, never a synchronization
            // signal.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(ev);
    }

    /// All events for one instance, in recording order.
    pub fn events_for(&self, instance: &[u8; 32]) -> Vec<TraceEvent> {
        self.lock().iter().filter(|e| &e.instance == instance).cloned().collect()
    }

    /// Number of distinct instances with at least one
    /// `InstanceStarted` event still in the ring.
    pub fn instances_started(&self) -> usize {
        let ring = self.lock();
        let mut seen: Vec<[u8; 32]> = ring
            .iter()
            .filter(|e| e.kind == TraceEventKind::InstanceStarted)
            .map(|e| e.instance)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Total events currently buffered.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(b: u8) -> [u8; 32] {
        let mut x = [0u8; 32];
        x[0] = b;
        x
    }

    #[test]
    fn records_in_order_and_filters_by_instance() {
        let j = TraceJournal::new(64);
        j.record(id(1), TraceEventKind::InstanceStarted);
        j.record(id(2), TraceEventKind::InstanceStarted);
        j.record(id(1), TraceEventKind::ShareComputed);
        j.record_peer(id(1), TraceEventKind::ShareReceived, 3);
        j.record(id(1), TraceEventKind::ResultDelivered);

        let evs = j.events_for(&id(1));
        let kinds: Vec<_> = evs.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::InstanceStarted,
                TraceEventKind::ShareComputed,
                TraceEventKind::ShareReceived,
                TraceEventKind::ResultDelivered,
            ]
        );
        // Timestamps are monotone non-decreasing.
        for w in evs.windows(2) {
            assert!(w[0].at_micros <= w[1].at_micros);
        }
        assert_eq!(evs[2].peer, 3);
        assert_eq!(j.instances_started(), 2);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let j = TraceJournal::new(4);
        for i in 0..10u8 {
            j.record(id(i), TraceEventKind::InstanceStarted);
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        // Only the newest 4 instances survive.
        assert!(j.events_for(&id(0)).is_empty());
        assert_eq!(j.events_for(&id(9)).len(), 1);
    }

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..=17u8 {
            let kind = TraceEventKind::from_code(code).unwrap();
            assert_eq!(kind.code(), code);
            assert!(!kind.label().is_empty());
        }
        assert!(TraceEventKind::from_code(18).is_none());
        assert!(TraceEventKind::from_code(200).is_none());
    }

    #[test]
    fn unknown_instance_yields_empty() {
        let j = TraceJournal::new(8);
        j.record(id(1), TraceEventKind::InstanceStarted);
        assert!(j.events_for(&id(7)).is_empty());
    }
}
