//! Event-loop instrumentation for the orchestration layer.
//!
//! The instance manager exposes one [`EventLoopCounters`] per node so
//! benchmarks (and the service layer's node-stats endpoint) can observe
//! how the select-driven loop behaves: how often it wakes, how many
//! network events and commands it processed, how aggressively it
//! retried, and how the bounded result cache churns.
//!
//! All counters are monotonically increasing and updated with relaxed
//! atomics — they are statistics, not synchronization points.

use theta_sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free counters for one instance-manager event loop.
#[derive(Debug, Default)]
pub struct EventLoopCounters {
    /// Times the event loop woke from its `select!` (one per iteration).
    pub wakeups: AtomicU64,
    /// Network events (P2P + TOB deliveries) handled.
    pub events_processed: AtomicU64,
    /// Local commands (submissions, shutdowns) handled.
    pub commands_processed: AtomicU64,
    /// P2P messages re-broadcast by the retry/backoff machinery.
    pub retries_sent: AtomicU64,
    /// Entries evicted from the bounded result cache (capacity or TTL).
    pub cache_evictions: AtomicU64,
    /// Protocol instances started at this node.
    pub instances_started: AtomicU64,
    /// Protocol instances finished (success or failure, incl. timeouts).
    pub instances_completed: AtomicU64,
    /// Instances that hit their deadline before reaching quorum.
    pub instances_timed_out: AtomicU64,
}

impl EventLoopCounters {
    /// Fresh zeroed counters.
    pub fn new() -> EventLoopCounters {
        EventLoopCounters::default()
    }

    /// Adds `n` to `counter`.
    ///
    /// Relaxed is safe because each counter is independently monotone
    /// and nothing synchronizes *through* a counter value: readers only
    /// conclude "at least N events happened", which a fetch_add of any
    /// ordering supports (increments cannot be lost or torn).
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments `counter` by one (relaxed; see [`Self::add`]).
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter.
    ///
    /// Relaxed loads: each field is individually between 0 and its true
    /// final value (per-counter monotonicity); fields are not mutually
    /// consistent while writers are in flight. The loom model verifies
    /// both halves of that contract.
    pub fn snapshot(&self) -> EventLoopSnapshot {
        EventLoopSnapshot {
            wakeups: self.wakeups.load(Ordering::Relaxed),
            events_processed: self.events_processed.load(Ordering::Relaxed),
            commands_processed: self.commands_processed.load(Ordering::Relaxed),
            retries_sent: self.retries_sent.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            instances_started: self.instances_started.load(Ordering::Relaxed),
            instances_completed: self.instances_completed.load(Ordering::Relaxed),
            instances_timed_out: self.instances_timed_out.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of [`EventLoopCounters`], safe to ship across RPC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventLoopSnapshot {
    /// See [`EventLoopCounters::wakeups`].
    pub wakeups: u64,
    /// See [`EventLoopCounters::events_processed`].
    pub events_processed: u64,
    /// See [`EventLoopCounters::commands_processed`].
    pub commands_processed: u64,
    /// See [`EventLoopCounters::retries_sent`].
    pub retries_sent: u64,
    /// See [`EventLoopCounters::cache_evictions`].
    pub cache_evictions: u64,
    /// See [`EventLoopCounters::instances_started`].
    pub instances_started: u64,
    /// See [`EventLoopCounters::instances_completed`].
    pub instances_completed: u64,
    /// See [`EventLoopCounters::instances_timed_out`].
    pub instances_timed_out: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_updates() {
        let c = EventLoopCounters::new();
        assert_eq!(c.snapshot(), EventLoopSnapshot::default());
        EventLoopCounters::bump(&c.wakeups);
        EventLoopCounters::add(&c.events_processed, 5);
        EventLoopCounters::bump(&c.instances_started);
        let s = c.snapshot();
        assert_eq!(s.wakeups, 1);
        assert_eq!(s.events_processed, 5);
        assert_eq!(s.instances_started, 1);
        assert_eq!(s.retries_sent, 0);
    }

    #[test]
    fn counters_shared_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(EventLoopCounters::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let c = c.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    EventLoopCounters::bump(&c.wakeups);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.snapshot().wakeups, 4000);
    }
}
