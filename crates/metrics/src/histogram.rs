//! Lock-free log-bucketed latency histograms.
//!
//! A [`Histogram`] covers 1 µs – 60 s with two buckets per octave
//! (bucket boundaries grow by √2), which keeps the relative
//! quantization error of any percentile below ~41 % of the value while
//! needing only 54 fixed buckets — small enough that recording is one
//! relaxed `fetch_add` into a static array, with no allocation, no
//! locking and no resizing on the hot path.
//!
//! Snapshots are plain-value copies that can be merged across nodes
//! (bucket-wise addition) and queried with the same nearest-rank
//! percentile semantics as [`crate::percentile`]: the p-th percentile is
//! the upper bound of the bucket holding the ⌈p/100·N⌉-th smallest
//! sample, i.e. a conservative (never under-reported) estimate.

use theta_sync::atomic::{AtomicU64, Ordering};

/// Lowest bucket boundary: 1 µs. Values below land in bucket 0.
const MIN_MICROS: u64 = 1;

/// Highest finite boundary: 60 s. Larger values land in the overflow
/// bucket (rendered as `+Inf` in the Prometheus exposition).
const MAX_MICROS: u64 = 60_000_000;

/// Number of finite buckets (≈ 2 per octave over 1 µs – 60 s) plus the
/// overflow bucket at the end.
pub const NUM_BUCKETS: usize = FINITE_BOUNDS.len() + 1;

/// Upper bounds (inclusive, in µs) of every finite bucket: 1 µs · 2^(i/2),
/// rounded, deduplicated at the low end, clamped to 60 s at the top.
const FINITE_BOUNDS: [u64; 53] = bucket_bounds();

const fn bucket_bounds() -> [u64; 53] {
    // 2^(i/2) µs for i = 0..53: alternate exact powers of two and
    // powers scaled by √2 ≈ 92682/65536. Integer math only (const fn).
    // Below ~4 µs the √2 steps collide in integer µs, so each bound is
    // bumped to at least predecessor+1 (the handful of low-end buckets
    // become 1 µs wide, which is harmless).
    let mut out = [0u64; 53];
    let mut prev = 0u64;
    let mut i = 0;
    while i < 53 {
        let mut v = if i % 2 == 0 {
            MIN_MICROS << (i / 2)
        } else {
            // √2 · 2^(i/2) in fixed point (92682/65536 ≈ √2).
            ((MIN_MICROS << (i / 2 + 1)) * 92682) >> 17
        };
        if v <= prev {
            v = prev + 1;
        }
        if v > MAX_MICROS {
            v = MAX_MICROS;
        }
        out[i] = v;
        prev = v;
        i += 1;
    }
    out
}

/// Index of the bucket a value in microseconds belongs to.
#[inline]
fn bucket_index(micros: u64) -> usize {
    // The table is sorted; partition_point is a branch-light binary
    // search over 53 entries (~6 compares).
    FINITE_BOUNDS.partition_point(|&bound| bound < micros)
}

/// A lock-free, log-bucketed histogram of durations.
///
/// Recording is wait-free (one relaxed atomic add per sample); reading
/// is a point-in-time [`HistogramSnapshot`].
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, d: std::time::Duration) {
        self.record_micros(d.as_micros() as u64);
    }

    /// Records one duration given in microseconds.
    #[inline]
    pub fn record_micros(&self, micros: u64) {
        // Relaxed is safe because every cell is independently monotone:
        // no reader infers anything from the *relation* between cells,
        // only from each cell's own value, and a fetch_add can never be
        // torn or lost regardless of ordering. A concurrent snapshot may
        // see the bucket increment without the sum (or vice versa) —
        // the loom model pins down exactly that contract: every
        // observed cell lies between 0 and its true final value, and a
        // quiescent snapshot is exact.
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        // Relaxed: each bucket is monotone (see `record_micros`); the
        // sum over buckets is therefore a lower bound of the true count
        // at return time and an upper bound of the count at call time.
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// A consistent-enough point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            // Relaxed: per-cell monotonicity (see `record_micros`) is
            // the whole contract; cells are not mutually consistent
            // while writers are in flight.
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a [`Histogram`], mergeable across nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (last bucket = overflow beyond 60 s).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all recorded values, in microseconds.
    pub sum_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; NUM_BUCKETS], sum_micros: 0 }
    }
}

impl HistogramSnapshot {
    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Bucket-wise merge of another snapshot into this one (pooling
    /// distributions across nodes, as the paper pools per-node
    /// latencies into `L^net`).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum_micros += other.sum_micros;
    }

    /// Upper bound (µs) of bucket `i`; `None` for the overflow bucket.
    pub fn bucket_bound_micros(i: usize) -> Option<u64> {
        FINITE_BOUNDS.get(i).copied()
    }

    /// Nearest-rank percentile in seconds: the upper bound of the bucket
    /// containing the ⌈p/100·N⌉-th smallest sample (matching
    /// [`crate::percentile`] semantics, quantized up to a bucket edge).
    ///
    /// Returns `None` when the histogram is empty. Samples in the
    /// overflow bucket report the 60 s edge.
    pub fn percentile(&self, pct: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&pct), "percentile out of range");
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((pct / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = Self::bucket_bound_micros(i).unwrap_or(MAX_MICROS);
                return Some(bound as f64 / 1e6);
            }
        }
        Some(MAX_MICROS as f64 / 1e6)
    }

    /// Mean of the recorded values in seconds (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        if n == 0 {
            return None;
        }
        Some(self.sum_micros as f64 / 1e6 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bounds_are_strictly_increasing_and_cover_range() {
        for w in FINITE_BOUNDS.windows(2) {
            assert!(w[0] < w[1], "bounds must increase: {} !< {}", w[0], w[1]);
        }
        assert_eq!(FINITE_BOUNDS[0], 1);
        assert_eq!(*FINITE_BOUNDS.last().unwrap(), MAX_MICROS);
        // Adjacent ratio ≈ √2 (two buckets per octave) away from the
        // integer-collision zone at the bottom and the 60 s clamp at
        // the top.
        for w in FINITE_BOUNDS[8..52].windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!((1.30..=1.55).contains(&ratio), "ratio {ratio}");
        }
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1); // above 1 µs, at the √2-rounded edge
        assert_eq!(bucket_index(MAX_MICROS), FINITE_BOUNDS.len() - 1);
        assert_eq!(bucket_index(MAX_MICROS + 1), FINITE_BOUNDS.len()); // overflow
        assert_eq!(bucket_index(u64::MAX), FINITE_BOUNDS.len());
    }

    #[test]
    fn record_and_percentile() {
        let h = Histogram::new();
        // 90 fast samples at 100 µs, 10 slow at 50 ms.
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(50));
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        let p50 = s.percentile(50.0).unwrap();
        let p95 = s.percentile(95.0).unwrap();
        // p50 lands in the 100 µs bucket (bound ≤ ~181 µs), p95 in the
        // 50 ms bucket (bound ≤ ~91 ms).
        assert!((100e-6..200e-6).contains(&p50), "p50 {p50}");
        assert!((0.05..0.1).contains(&p95), "p95 {p95}");
        assert!(s.mean().unwrap() > 0.0);
    }

    #[test]
    fn empty_histogram_has_no_percentile() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert!(s.percentile(50.0).is_none());
        assert!(s.mean().is_none());
    }

    #[test]
    fn overflow_reports_top_edge() {
        let h = Histogram::new();
        h.record(Duration::from_secs(600));
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.percentile(100.0).unwrap(), 60.0);
    }

    #[test]
    fn merge_pools_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(10));
        b.record(Duration::from_secs(1));
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum_micros, 10 + 10 + 1_000_000);
    }

    #[test]
    fn concurrent_recording() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let joins: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_micros(i);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
