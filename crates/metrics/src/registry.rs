//! Named runtime metrics: counters, gauges and histograms, shared per
//! node and rendered in the Prometheus text exposition format.
//!
//! A [`MetricsRegistry`] is a get-or-create map from `(name, labels)` to
//! a metric handle. Handles are `Arc`s: instrumentation sites resolve
//! their metric once (at setup) and afterwards touch only the atomic —
//! the registry lock is never on a hot path.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::Arc;
use theta_sync::atomic::{AtomicI64, AtomicU64, Ordering};
use theta_sync::{Mutex, MutexGuard};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    // All counter traffic is Relaxed: the value is monotone, increments
    // cannot be lost or torn at any ordering, and no code synchronizes
    // through a counter (readers only conclude "at least N so far").

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    // Relaxed throughout: a gauge is a single independent cell carrying
    // a last-writer-wins statistic; add/fetch_add cannot lose updates
    // at any ordering, and nothing orders other memory against it.

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Map key: metric name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A node's registry of named metrics.
///
/// The same `(name, labels)` pair always resolves to the same handle;
/// registering the same name with a different metric kind panics (a
/// programming error caught at setup time, never on a hot path).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<MetricKey, Metric>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    MetricKey { name: name.to_string(), labels }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The registry lock is only ever held for map operations; if a
    /// holder panicked the map itself is still consistent, so poisoning
    /// is deliberately ignored (observability must not take a node
    /// down).
    fn lock(&self) -> MutexGuard<'_, BTreeMap<MetricKey, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get-or-create a counter with label pairs.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = self.lock();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get-or-create a gauge with label pairs.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = self.lock();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get-or-create an unlabelled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get-or-create a histogram with label pairs.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut map = self.lock();
        match map
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Snapshot of a histogram by name/labels, when registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        match self.lock().get(&key(name, labels)) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Value of a counter by name/labels, when registered.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.lock().get(&key(name, labels)) {
            Some(Metric::Counter(c)) => Some(c.get()),
            _ => None,
        }
    }

    /// Value of a gauge by name/labels, when registered.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.lock().get(&key(name, labels)) {
            Some(Metric::Gauge(g)) => Some(g.get()),
            _ => None,
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Durations are recorded in microseconds internally; histogram
    /// bucket edges, sums and quantile-friendly values are rendered in
    /// **seconds** as the Prometheus convention expects.
    pub fn render_prometheus(&self) -> String {
        let map = self.lock();
        let mut out = String::with_capacity(4096 + map.len() * 64);
        let mut last_name: Option<&str> = None;
        for (k, metric) in map.iter() {
            if last_name != Some(k.name.as_str()) {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {}\n", k.name, kind));
                last_name = Some(k.name.as_str());
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        k.name,
                        render_labels(&k.labels, None),
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        k.name,
                        render_labels(&k.labels, None),
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    render_histogram(&mut out, &k.name, &k.labels, &h.snapshot());
                }
            }
        }
        out
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double quote and line feed must be escaped (backslash
/// first, or the other escapes' own backslashes get double-escaped).
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Appends one histogram in Prometheus text format (cumulative
/// `_bucket{le=...}` series, `_sum` and `_count`).
pub(crate) fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    snap: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, &c) in snap.buckets.iter().enumerate() {
        cumulative += c;
        // Skip interior zero-count buckets to keep the dump compact,
        // but always emit the first, any bucket with samples, and +Inf.
        let is_last_finite = i + 1 == snap.buckets.len() - 1;
        if c == 0 && i != 0 && !is_last_finite {
            continue;
        }
        let le = match HistogramSnapshot::bucket_bound_micros(i) {
            Some(us) => format!("{}", us as f64 / 1e6),
            None => continue, // overflow handled by +Inf below
        };
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name,
            render_labels(labels, Some(&le)),
            cumulative
        ));
    }
    out.push_str(&format!(
        "{}_bucket{} {}\n",
        name,
        render_labels(labels, Some("+Inf")),
        snap.count()
    ));
    out.push_str(&format!(
        "{}_sum{} {}\n",
        name,
        render_labels(labels, None),
        snap.sum_micros as f64 / 1e6
    ));
    out.push_str(&format!(
        "{}_count{} {}\n",
        name,
        render_labels(labels, None),
        snap.count()
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn same_key_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("requests_total");
        let b = r.counter("requests_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.counter_value("requests_total", &[]), Some(3));
    }

    #[test]
    fn labels_distinguish_series() {
        let r = MetricsRegistry::new();
        let p1 = r.counter_with("net_sent_total", &[("peer", "1")]);
        let p2 = r.counter_with("net_sent_total", &[("peer", "2")]);
        p1.inc();
        p2.add(5);
        assert_eq!(r.counter_value("net_sent_total", &[("peer", "1")]), Some(1));
        assert_eq!(r.counter_value("net_sent_total", &[("peer", "2")]), Some(5));
    }

    #[test]
    fn label_order_is_canonical() {
        let r = MetricsRegistry::new();
        let a = r.counter_with("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter_with("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("conflicted");
        let _ = r.gauge("conflicted");
    }

    #[test]
    fn prometheus_rendering() {
        let r = MetricsRegistry::new();
        r.counter("alpha_total").add(7);
        r.gauge("beta").set(-3);
        r.counter_with("net_total", &[("peer", "2")]).add(4);
        let h = r.histogram("lat_seconds");
        h.record(Duration::from_millis(1));
        h.record(Duration::from_millis(1));
        h.record(Duration::from_secs(2));
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE alpha_total counter"));
        assert!(text.contains("alpha_total 7"));
        assert!(text.contains("# TYPE beta gauge"));
        assert!(text.contains("beta -3"));
        assert!(text.contains("net_total{peer=\"2\"} 4"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_count 3"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        // The 1 ms samples appear cumulatively in some finite bucket.
        assert!(text.contains("lat_seconds_sum"));
    }

    #[test]
    fn label_values_are_escaped_per_exposition_format() {
        let r = MetricsRegistry::new();
        r.counter_with("esc_total", &[("path", "a\\b")]).inc();
        r.counter_with("esc_total", &[("path", "say \"hi\"")]).inc();
        r.counter_with("esc_total", &[("path", "two\nlines")]).inc();
        let text = r.render_prometheus();
        assert!(text.contains(r#"esc_total{path="a\\b"} 1"#));
        assert!(text.contains(r#"esc_total{path="say \"hi\""} 1"#));
        assert!(text.contains(r#"esc_total{path="two\nlines"} 1"#));
        // The raw newline must not survive into the exposition: every
        // line is exactly `name{labels} value` or a `# TYPE` comment.
        for line in text.lines() {
            assert!(
                line.starts_with("# TYPE") || line.contains(' '),
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn render_ordering_is_deterministic_and_sorted() {
        let make = |order_flipped: bool| {
            let r = MetricsRegistry::new();
            let series: &[(&str, &str)] = &[("zeta_total", "9"), ("alpha_total", "1")];
            let iter: Vec<_> = if order_flipped {
                series.iter().rev().collect()
            } else {
                series.iter().collect()
            };
            for (name, peer) in iter {
                r.counter_with(name, &[("peer", peer)]).inc();
                r.counter_with(name, &[("peer", "0")]).inc();
            }
            r.render_prometheus()
        };
        let a = make(false);
        let b = make(true);
        assert_eq!(a, b, "render must not depend on registration order");
        let alpha = a.find("alpha_total").unwrap();
        let zeta = a.find("zeta_total").unwrap();
        assert!(alpha < zeta, "series must render sorted by name");
        // Within one name, label sets render sorted too.
        let p0 = a.find(r#"alpha_total{peer="0"}"#).unwrap();
        let p1 = a.find(r#"alpha_total{peer="1"}"#).unwrap();
        assert!(p0 < p1);
    }

    #[test]
    fn histogram_bucket_cumulation() {
        let r = MetricsRegistry::new();
        let h = r.histogram("d_seconds");
        h.record(Duration::from_micros(1));
        h.record(Duration::from_secs(100)); // overflow bucket
        let text = r.render_prometheus();
        // First bucket has 1 sample, +Inf has both.
        assert!(text.contains("d_seconds_bucket{le=\"0.000001\"} 1"));
        assert!(text.contains("d_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("d_seconds_count 2"));
    }
}
