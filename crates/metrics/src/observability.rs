//! Per-node observability bundle: the metrics registry, the trace
//! journal, the event-loop counters and the four per-phase latency
//! histograms, wired together so every layer of a node shares one
//! clone-able handle.

use crate::counters::EventLoopCounters;
use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;
use crate::trace::TraceJournal;
use std::sync::Arc;

/// Canonical metric names for the per-phase latency histograms. The
/// `_seconds` suffix follows the Prometheus naming convention; values
/// are recorded in microseconds internally and rendered in seconds.
pub const SHARE_COMPUTE_HISTOGRAM: &str = "theta_share_compute_seconds";
/// Name of the share-verification phase histogram.
pub const SHARE_VERIFY_HISTOGRAM: &str = "theta_share_verify_seconds";
/// Name of the combine phase histogram.
pub const COMBINE_HISTOGRAM: &str = "theta_combine_seconds";
/// Name of the end-to-end (instance started → result delivered)
/// histogram.
pub const E2E_HISTOGRAM: &str = "theta_e2e_seconds";

/// Pre-resolved handles to the four per-phase histograms, so the
/// event-loop hot path records without touching the registry lock.
#[derive(Clone)]
pub struct PhaseTimers {
    /// Time to compute this node's own share (`do_round`).
    pub share_compute: Arc<Histogram>,
    /// Time to verify one received share (`update`).
    pub share_verify: Arc<Histogram>,
    /// Time to combine shares into the final result (`finalize`).
    pub combine: Arc<Histogram>,
    /// Instance started → result delivered.
    pub e2e: Arc<Histogram>,
}

/// Everything a node exposes about itself, shared across layers.
///
/// One `Arc<NodeObservability>` is created per node at build time and
/// handed to the service layer, the instance manager and the network
/// backend. All parts are individually lock-free or short-lock bounded;
/// cloning the `Arc` is the only way the handle travels.
pub struct NodeObservability {
    /// Named counters/gauges/histograms (includes the phase timers).
    pub registry: Arc<MetricsRegistry>,
    /// Bounded ring buffer of per-instance lifecycle events.
    pub journal: Arc<TraceJournal>,
    /// The PR-1 event-loop counters, kept for `GetNodeStats`.
    pub counters: Arc<EventLoopCounters>,
    /// Fast handles to the four per-phase histograms.
    pub phases: PhaseTimers,
}

impl Default for NodeObservability {
    fn default() -> Self {
        NodeObservability::new()
    }
}

impl NodeObservability {
    /// A fresh bundle with the four phase histograms pre-registered.
    pub fn new() -> NodeObservability {
        let registry = Arc::new(MetricsRegistry::new());
        let phases = PhaseTimers {
            share_compute: registry.histogram(SHARE_COMPUTE_HISTOGRAM),
            share_verify: registry.histogram(SHARE_VERIFY_HISTOGRAM),
            combine: registry.histogram(COMBINE_HISTOGRAM),
            e2e: registry.histogram(E2E_HISTOGRAM),
        };
        NodeObservability {
            registry,
            journal: Arc::new(TraceJournal::default()),
            counters: Arc::new(EventLoopCounters::new()),
            phases,
        }
    }

    /// Renders everything the node knows about itself in the Prometheus
    /// text exposition format: the registry (counters, gauges, phase
    /// histograms) followed by the event-loop counters and the trace
    /// journal's own health gauges.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.registry.render_prometheus();
        let c = self.counters.snapshot();
        for (name, value) in [
            ("theta_event_loop_wakeups_total", c.wakeups),
            ("theta_event_loop_events_total", c.events_processed),
            ("theta_event_loop_commands_total", c.commands_processed),
            ("theta_event_loop_retries_total", c.retries_sent),
            ("theta_event_loop_cache_evictions_total", c.cache_evictions),
            ("theta_instances_started_total", c.instances_started),
            ("theta_instances_completed_total", c.instances_completed),
            ("theta_instances_timed_out_total", c.instances_timed_out),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        out.push_str(&format!(
            "# TYPE theta_trace_journal_events gauge\ntheta_trace_journal_events {}\n",
            self.journal.len()
        ));
        out.push_str(&format!(
            "# TYPE theta_trace_journal_dropped_total counter\ntheta_trace_journal_dropped_total {}\n",
            self.journal.dropped()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEventKind;
    use std::time::Duration;

    #[test]
    fn bundle_renders_phases_counters_and_journal_health() {
        let obs = NodeObservability::new();
        obs.phases.e2e.record(Duration::from_millis(12));
        EventLoopCounters::bump(&obs.counters.instances_started);
        obs.journal.record([7u8; 32], TraceEventKind::InstanceStarted);
        let text = obs.render_prometheus();
        assert!(text.contains("# TYPE theta_e2e_seconds histogram"));
        assert!(text.contains("theta_e2e_seconds_count 1"));
        assert!(text.contains("theta_share_compute_seconds_count 0"));
        assert!(text.contains("theta_share_verify_seconds_count 0"));
        assert!(text.contains("theta_combine_seconds_count 0"));
        assert!(text.contains("theta_instances_started_total 1"));
        assert!(text.contains("theta_trace_journal_events 1"));
    }

    #[test]
    fn phase_handles_alias_registry_histograms() {
        let obs = NodeObservability::new();
        obs.phases.share_compute.record(Duration::from_micros(500));
        let snap = obs
            .registry
            .histogram_snapshot(SHARE_COMPUTE_HISTOGRAM, &[])
            .unwrap();
        assert_eq!(snap.count(), 1);
    }
}
