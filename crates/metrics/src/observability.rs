//! Per-node observability bundle: the metrics registry, the trace
//! journal, the event-loop counters and the four per-phase latency
//! histograms, wired together so every layer of a node shares one
//! clone-able handle.

use crate::counters::EventLoopCounters;
use crate::histogram::Histogram;
use crate::profiler::WorkerPhases;
use crate::registry::{Counter, Gauge, MetricsRegistry};
use crate::trace::TraceJournal;
use std::sync::Arc;

/// Canonical metric names for the per-phase latency histograms. The
/// `_seconds` suffix follows the Prometheus naming convention; values
/// are recorded in microseconds internally and rendered in seconds.
pub const SHARE_COMPUTE_HISTOGRAM: &str = "theta_share_compute_seconds";
/// Name of the share-verification phase histogram.
pub const SHARE_VERIFY_HISTOGRAM: &str = "theta_share_verify_seconds";
/// Name of the combine phase histogram.
pub const COMBINE_HISTOGRAM: &str = "theta_combine_seconds";
/// Name of the end-to-end (instance started → result delivered)
/// histogram.
pub const E2E_HISTOGRAM: &str = "theta_e2e_seconds";

/// Gauge: live protocol instances currently hosted by the worker pool.
pub const INFLIGHT_INSTANCES_GAUGE: &str = "theta_inflight_instances";
/// Gauge: instance slots queued on the worker-pool run queue (scheduled
/// but not yet picked up by a worker).
pub const RUNQUEUE_DEPTH_GAUGE: &str = "theta_runqueue_depth";
/// Gauge: submissions sitting in the node's command queue, waiting for
/// the router to admit them.
pub const SUBMISSION_QUEUE_DEPTH_GAUGE: &str = "theta_submission_queue_depth";
/// Counter: submissions rejected because a queue bound was hit (the
/// service's `Overloaded` error and the router's admission cap both
/// count here).
pub const OVERLOAD_REJECTIONS_COUNTER: &str = "theta_overload_rejections_total";
/// Counter: network events dropped because an instance mailbox was full
/// or already closed.
pub const MAILBOX_DROPPED_COUNTER: &str = "theta_mailbox_dropped_total";
/// Name of the per-worker busy-time histogram; each worker records with
/// a `{worker="i"}` label.
pub const WORKER_BUSY_HISTOGRAM: &str = "theta_worker_busy_seconds";
/// Counter: total nanoseconds the router thread spent doing work (not
/// blocked in `select!`). Nanosecond resolution because one router
/// iteration is often sub-microsecond — the histogram above would
/// truncate it to zero.
pub const ROUTER_BUSY_NANOS_COUNTER: &str = "theta_router_busy_nanos_total";
/// Counter: total nanoseconds workers spent running instance slots,
/// summed across the pool (the per-worker histograms give the shape;
/// this gives an exact total for utilization math).
pub const WORKER_BUSY_NANOS_COUNTER: &str = "theta_worker_busy_nanos_total";
/// Histogram: checks per cross-instance batch settle. Recorded as a raw
/// count (not a duration), so the bucket bounds read as batch sizes.
pub const BATCH_SIZE_HISTOGRAM: &str = "theta_batch_size";
/// Counter: cross-instance batch flushes, labeled
/// `{reason="size"|"age"|"shutdown"}`.
pub const BATCH_FLUSHES_COUNTER: &str = "theta_batch_flushes_total";

/// Pre-resolved handles for the router/worker-pool metrics, so the
/// router hot path and the workers record without touching the registry
/// lock.
#[derive(Clone)]
pub struct PoolMetrics {
    /// Live instances hosted across the pool.
    pub inflight_instances: Arc<Gauge>,
    /// Scheduled-but-unclaimed instance slots on the run queue.
    pub runqueue_depth: Arc<Gauge>,
    /// Commands waiting for router admission.
    pub submission_queue_depth: Arc<Gauge>,
    /// Bounded-queue rejections (service + router admission).
    pub overload_rejections: Arc<Counter>,
    /// Events dropped at a full or closed instance mailbox.
    pub mailbox_dropped: Arc<Counter>,
    /// Per-worker busy-time histograms, indexed by worker id.
    pub worker_busy: Vec<Arc<Histogram>>,
    /// Per-worker phase-profiler sinks (idle / share-verify / combine /
    /// batch-settle), indexed by worker id; each worker installs its
    /// entry as the thread-local sink at startup.
    pub worker_phases: Vec<WorkerPhases>,
    /// Exact nanoseconds the router spent working (select wakeups only).
    pub router_busy_nanos: Arc<Counter>,
    /// Exact nanoseconds workers spent running slots, pool-wide.
    pub worker_busy_nanos: Arc<Counter>,
    /// Checks per cross-instance batch settle (recorded as raw counts).
    pub batch_size: Arc<Histogram>,
    /// Cross-instance batch flushes that fired on the size threshold.
    pub batch_flushes_size: Arc<Counter>,
    /// Cross-instance batch flushes that fired on the age threshold.
    pub batch_flushes_age: Arc<Counter>,
    /// Cross-instance batch flushes forced by node shutdown.
    pub batch_flushes_shutdown: Arc<Counter>,
}

impl PoolMetrics {
    /// Resolves the pool metrics against `registry`, pre-registering one
    /// `{worker="i"}` busy histogram per worker (0-based ids).
    pub fn register(registry: &MetricsRegistry, workers: usize) -> PoolMetrics {
        let mut worker_busy = Vec::with_capacity(workers);
        let mut worker_phases = Vec::with_capacity(workers);
        for w in 0..workers {
            let label = w.to_string();
            worker_busy.push(registry.histogram_with(WORKER_BUSY_HISTOGRAM, &[("worker", &label)]));
            worker_phases.push(WorkerPhases::register(registry, w));
        }
        PoolMetrics {
            inflight_instances: registry.gauge(INFLIGHT_INSTANCES_GAUGE),
            runqueue_depth: registry.gauge(RUNQUEUE_DEPTH_GAUGE),
            submission_queue_depth: registry.gauge(SUBMISSION_QUEUE_DEPTH_GAUGE),
            overload_rejections: registry.counter(OVERLOAD_REJECTIONS_COUNTER),
            mailbox_dropped: registry.counter(MAILBOX_DROPPED_COUNTER),
            worker_busy,
            worker_phases,
            router_busy_nanos: registry.counter(ROUTER_BUSY_NANOS_COUNTER),
            worker_busy_nanos: registry.counter(WORKER_BUSY_NANOS_COUNTER),
            batch_size: registry.histogram(BATCH_SIZE_HISTOGRAM),
            batch_flushes_size: registry
                .counter_with(BATCH_FLUSHES_COUNTER, &[("reason", "size")]),
            batch_flushes_age: registry.counter_with(BATCH_FLUSHES_COUNTER, &[("reason", "age")]),
            batch_flushes_shutdown: registry
                .counter_with(BATCH_FLUSHES_COUNTER, &[("reason", "shutdown")]),
        }
    }
}

/// Pre-resolved handles to the four per-phase histograms, so the
/// event-loop hot path records without touching the registry lock.
#[derive(Clone)]
pub struct PhaseTimers {
    /// Time to compute this node's own share (`do_round`).
    pub share_compute: Arc<Histogram>,
    /// Time to verify one received share (`update`).
    pub share_verify: Arc<Histogram>,
    /// Time to combine shares into the final result (`finalize`).
    pub combine: Arc<Histogram>,
    /// Instance started → result delivered.
    pub e2e: Arc<Histogram>,
}

/// Everything a node exposes about itself, shared across layers.
///
/// One `Arc<NodeObservability>` is created per node at build time and
/// handed to the service layer, the instance manager and the network
/// backend. All parts are individually lock-free or short-lock bounded;
/// cloning the `Arc` is the only way the handle travels.
pub struct NodeObservability {
    /// Named counters/gauges/histograms (includes the phase timers).
    pub registry: Arc<MetricsRegistry>,
    /// Bounded ring buffer of per-instance lifecycle events.
    pub journal: Arc<TraceJournal>,
    /// The PR-1 event-loop counters, kept for `GetNodeStats`.
    pub counters: Arc<EventLoopCounters>,
    /// Fast handles to the four per-phase histograms.
    pub phases: PhaseTimers,
}

impl Default for NodeObservability {
    fn default() -> Self {
        NodeObservability::new()
    }
}

impl NodeObservability {
    /// A fresh bundle with the four phase histograms pre-registered.
    pub fn new() -> NodeObservability {
        let registry = Arc::new(MetricsRegistry::new());
        let phases = PhaseTimers {
            share_compute: registry.histogram(SHARE_COMPUTE_HISTOGRAM),
            share_verify: registry.histogram(SHARE_VERIFY_HISTOGRAM),
            combine: registry.histogram(COMBINE_HISTOGRAM),
            e2e: registry.histogram(E2E_HISTOGRAM),
        };
        NodeObservability {
            registry,
            journal: Arc::new(TraceJournal::default()),
            counters: Arc::new(EventLoopCounters::new()),
            phases,
        }
    }

    /// Renders everything the node knows about itself in the Prometheus
    /// text exposition format: the registry (counters, gauges, phase
    /// histograms) followed by the event-loop counters and the trace
    /// journal's own health gauges.
    pub fn render_prometheus(&self) -> String {
        let mut out = self.registry.render_prometheus();
        let c = self.counters.snapshot();
        for (name, value) in [
            ("theta_event_loop_wakeups_total", c.wakeups),
            ("theta_event_loop_events_total", c.events_processed),
            ("theta_event_loop_commands_total", c.commands_processed),
            ("theta_event_loop_retries_total", c.retries_sent),
            ("theta_event_loop_cache_evictions_total", c.cache_evictions),
            ("theta_instances_started_total", c.instances_started),
            ("theta_instances_completed_total", c.instances_completed),
            ("theta_instances_timed_out_total", c.instances_timed_out),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        out.push_str(&format!(
            "# TYPE theta_trace_journal_events gauge\ntheta_trace_journal_events {}\n",
            self.journal.len()
        ));
        out.push_str(&format!(
            "# TYPE theta_trace_journal_dropped_total counter\ntheta_trace_journal_dropped_total {}\n",
            self.journal.dropped()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEventKind;
    use std::time::Duration;

    #[test]
    fn bundle_renders_phases_counters_and_journal_health() {
        let obs = NodeObservability::new();
        obs.phases.e2e.record(Duration::from_millis(12));
        EventLoopCounters::bump(&obs.counters.instances_started);
        obs.journal.record([7u8; 32], TraceEventKind::InstanceStarted);
        let text = obs.render_prometheus();
        assert!(text.contains("# TYPE theta_e2e_seconds histogram"));
        assert!(text.contains("theta_e2e_seconds_count 1"));
        assert!(text.contains("theta_share_compute_seconds_count 0"));
        assert!(text.contains("theta_share_verify_seconds_count 0"));
        assert!(text.contains("theta_combine_seconds_count 0"));
        assert!(text.contains("theta_instances_started_total 1"));
        assert!(text.contains("theta_trace_journal_events 1"));
    }

    #[test]
    fn pool_metrics_register_and_render() {
        let obs = NodeObservability::new();
        let pool = PoolMetrics::register(&obs.registry, 2);
        pool.inflight_instances.set(3);
        pool.runqueue_depth.set(1);
        pool.overload_rejections.inc();
        pool.mailbox_dropped.add(2);
        pool.worker_busy[1].record(Duration::from_micros(250));
        pool.router_busy_nanos.add(480);
        pool.worker_busy_nanos.add(250_000);
        let text = obs.render_prometheus();
        assert!(text.contains("theta_inflight_instances 3"));
        assert!(text.contains("theta_runqueue_depth 1"));
        assert!(text.contains("theta_submission_queue_depth 0"));
        assert!(text.contains("theta_overload_rejections_total 1"));
        assert!(text.contains("theta_mailbox_dropped_total 2"));
        assert!(text.contains("theta_worker_busy_seconds_count{worker=\"1\"} 1"));
        assert!(text.contains("theta_worker_busy_seconds_count{worker=\"0\"} 0"));
        assert!(text.contains("theta_router_busy_nanos_total 480"));
        assert!(text.contains("theta_worker_busy_nanos_total 250000"));
    }

    #[test]
    fn phase_handles_alias_registry_histograms() {
        let obs = NodeObservability::new();
        obs.phases.share_compute.record(Duration::from_micros(500));
        let snap = obs
            .registry
            .histogram_snapshot(SHARE_COMPUTE_HISTOGRAM, &[])
            .unwrap();
        assert_eq!(snap.count(), 1);
    }
}
