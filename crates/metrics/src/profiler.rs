//! Per-worker phase profiler: attributes worker self-time to the
//! phases that matter for capacity analysis — idle (blocked on the run
//! queue), share verification, combine, and cross-instance batch
//! settlement — as per-worker Prometheus histograms.
//!
//! The profiler samples the monotonic clock only at phase *transitions*
//! (scope enter/exit), so the hot-path cost is two `Instant::now()`
//! reads plus one lock-free histogram record per phase — there is no
//! background sampler thread to perturb the workers it measures.
//!
//! Attribution is thread-local: each pool worker installs its own
//! [`WorkerPhases`] sink at thread start, and instrumentation sites
//! deeper in the stack (the instance host's verify/combine timers, the
//! batch aggregator's settle) call [`record_phase`] without knowing
//! which worker they run on. On threads without a sink (the router, the
//! service threads, tests) every call is a cheap no-op, so profiling
//! never needs to be compiled out.

use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;
use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Metric name for the per-worker phase histograms; series carry
/// `{worker="i",phase="idle"|"share_verify"|"combine"|"batch_settle"}`.
pub const WORKER_PHASE_HISTOGRAM: &str = "theta_worker_phase_seconds";

/// The phases a pool worker's self-time is attributed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerPhase {
    /// Blocked on the run queue waiting for a job.
    Idle,
    /// Verifying a received share (inline path).
    ShareVerify,
    /// Combining shares into the final result.
    Combine,
    /// Settling a cross-instance verification batch.
    BatchSettle,
}

impl WorkerPhase {
    /// Stable label value for the `phase` dimension.
    pub fn label(self) -> &'static str {
        match self {
            WorkerPhase::Idle => "idle",
            WorkerPhase::ShareVerify => "share_verify",
            WorkerPhase::Combine => "combine",
            WorkerPhase::BatchSettle => "batch_settle",
        }
    }

    /// All phases, for registration loops.
    pub const ALL: [WorkerPhase; 4] = [
        WorkerPhase::Idle,
        WorkerPhase::ShareVerify,
        WorkerPhase::Combine,
        WorkerPhase::BatchSettle,
    ];
}

/// Pre-resolved per-phase histograms for one worker.
#[derive(Clone)]
pub struct WorkerPhases {
    idle: Arc<Histogram>,
    share_verify: Arc<Histogram>,
    combine: Arc<Histogram>,
    batch_settle: Arc<Histogram>,
}

impl WorkerPhases {
    /// Registers the four `{worker,phase}` series for worker `worker`.
    pub fn register(registry: &MetricsRegistry, worker: usize) -> WorkerPhases {
        let w = worker.to_string();
        let h = |phase: WorkerPhase| {
            registry.histogram_with(
                WORKER_PHASE_HISTOGRAM,
                &[("worker", &w), ("phase", phase.label())],
            )
        };
        WorkerPhases {
            idle: h(WorkerPhase::Idle),
            share_verify: h(WorkerPhase::ShareVerify),
            combine: h(WorkerPhase::Combine),
            batch_settle: h(WorkerPhase::BatchSettle),
        }
    }

    fn sink(&self, phase: WorkerPhase) -> &Arc<Histogram> {
        match phase {
            WorkerPhase::Idle => &self.idle,
            WorkerPhase::ShareVerify => &self.share_verify,
            WorkerPhase::Combine => &self.combine,
            WorkerPhase::BatchSettle => &self.batch_settle,
        }
    }

    /// Records `spent` against `phase` directly (used by sites that
    /// already measured the duration themselves).
    pub fn record(&self, phase: WorkerPhase, spent: Duration) {
        self.sink(phase).record(spent);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<WorkerPhases>> = const { RefCell::new(None) };
}

/// Installs `phases` as this thread's profiling sink. Called once by
/// each pool worker at thread start; the sink lives for the thread.
pub fn install_worker_phases(phases: WorkerPhases) {
    CURRENT.with(|c| *c.borrow_mut() = Some(phases));
}

/// Removes this thread's profiling sink (tests and shutdown paths).
pub fn clear_worker_phases() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Attributes `spent` to `phase` on the calling thread's sink; no-op on
/// threads that never installed one.
pub fn record_phase(phase: WorkerPhase, spent: Duration) {
    CURRENT.with(|c| {
        if let Some(p) = c.borrow().as_ref() {
            p.record(phase, spent);
        }
    });
}

/// RAII scope: measures from construction to drop and attributes the
/// span to its phase via [`record_phase`].
pub struct PhaseScope {
    phase: WorkerPhase,
    start: Instant,
}

impl PhaseScope {
    /// Opens a scope for `phase`.
    pub fn enter(phase: WorkerPhase) -> PhaseScope {
        PhaseScope { phase, start: Instant::now() }
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        record_phase(self.phase, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase_count(r: &MetricsRegistry, worker: &str, phase: &str) -> u64 {
        r.histogram_snapshot(WORKER_PHASE_HISTOGRAM, &[("worker", worker), ("phase", phase)])
            .map(|s| s.count())
            .unwrap_or(0)
    }

    #[test]
    fn records_into_installed_sink_only() {
        let r = MetricsRegistry::new();
        let phases = WorkerPhases::register(&r, 0);

        // No sink installed yet: attribution is a no-op.
        record_phase(WorkerPhase::Combine, Duration::from_micros(100));
        assert_eq!(phase_count(&r, "0", "combine"), 0);

        install_worker_phases(phases);
        record_phase(WorkerPhase::Combine, Duration::from_micros(100));
        {
            let _scope = PhaseScope::enter(WorkerPhase::ShareVerify);
        }
        record_phase(WorkerPhase::Idle, Duration::from_micros(5));
        record_phase(WorkerPhase::BatchSettle, Duration::from_micros(7));
        clear_worker_phases();
        record_phase(WorkerPhase::Combine, Duration::from_micros(100));

        assert_eq!(phase_count(&r, "0", "combine"), 1);
        assert_eq!(phase_count(&r, "0", "share_verify"), 1);
        assert_eq!(phase_count(&r, "0", "idle"), 1);
        assert_eq!(phase_count(&r, "0", "batch_settle"), 1);
    }

    #[test]
    fn workers_get_distinct_series() {
        let r = MetricsRegistry::new();
        let w0 = WorkerPhases::register(&r, 0);
        let w1 = WorkerPhases::register(&r, 1);
        w0.record(WorkerPhase::Idle, Duration::from_micros(10));
        w1.record(WorkerPhase::Idle, Duration::from_micros(10));
        w1.record(WorkerPhase::Idle, Duration::from_micros(10));
        assert_eq!(phase_count(&r, "0", "idle"), 1);
        assert_eq!(phase_count(&r, "1", "idle"), 2);
    }

    #[test]
    fn phase_labels_are_stable() {
        let labels: Vec<_> = WorkerPhase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["idle", "share_verify", "combine", "batch_settle"]);
    }
}
