//! Planted bug: a `thread::sleep` reachable from an annotated event
//! loop — hidden one call deep so the blocking pass has to walk the
//! call graph, not just scan the loop body.

// theta: event-loop
pub fn run_router_loop() {
    loop {
        drain_queue();
    }
}

/// Looks innocent at the call site; stalls every instance on the loop.
fn drain_queue() {
    std::thread::sleep(std::time::Duration::from_millis(50));
}

/// Control: sleeping on a worker thread is fine and must NOT be
/// reported — only event-loop-reachable fns are in scope.
pub fn worker_backoff() {
    std::thread::sleep(std::time::Duration::from_millis(50));
}
