//! Planted bug: a secret share leaks into a debug log *through a
//! helper fn* — the taint pass must follow the parameter across the
//! call edge, not just flag same-function sinks.

pub struct KeyShare {
    pub id: u32,
    pub x_i: u64,
}

/// The entry point holds the secret and "just" hands it to a helper.
pub fn handle_request(share: &KeyShare) {
    debug_dump(share);
}

/// The helper does the actual leaking.
fn debug_dump(s: &KeyShare) {
    println!("share = {:?}", s.x_i);
}

/// Control: logging the non-secret id field is fine and must NOT be
/// reported — field projection has to distinguish `share.id` from
/// `share.x_i`.
pub fn log_id(share: &KeyShare) {
    println!("share id = {}", share.id);
}
