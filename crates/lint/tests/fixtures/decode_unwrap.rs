//! Planted bug: `.unwrap()` on a decode path reachable from a network
//! entry point — one malformed frame away from a panic.

// theta: entrypoint(network)
pub fn on_frame(buf: &[u8]) -> u32 {
    decode_request(buf)
}

/// The decode helper unwraps what the wire may not have sent.
fn decode_request(buf: &[u8]) -> u32 {
    let len = parse_len(buf).unwrap();
    len + 1
}

fn parse_len(buf: &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    Some(buf[0] as u32)
}

/// Control: unwrap in start-up code not reachable from the entry point
/// must NOT be reported.
pub fn load_config(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}
