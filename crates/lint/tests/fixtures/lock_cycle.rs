//! Planted bug: AB/BA lock acquisition — two paths take the same pair
//! of mutexes in opposite orders, the classic deadlock shape the
//! lock-order pass exists to catch.

use theta_sync::Mutex;

pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

/// Takes alpha, then beta.
pub fn transfer_forward(p: &Pair) {
    let ga = p.alpha.lock();
    let gb = p.beta.lock();
    drop(gb);
    drop(ga);
}

/// Takes beta, then alpha — the reversed order that closes the cycle.
pub fn transfer_backward(p: &Pair) {
    let gb = p.beta.lock();
    let ga = p.alpha.lock();
    drop(ga);
    drop(gb);
}
