//! End-to-end check of the four analysis passes against the planted-bug
//! corpus in `tests/fixtures/`. Each fixture contains exactly one bug
//! (plus a control that must stay silent); the assertions here pin both
//! directions — the plant is caught, and nothing else is invented.

use theta_lint::analyze::run_passes;
use theta_lint::report::Finding;

/// Feeds all four fixtures through the full pipeline at once, the way
/// real workspace files meet each other in one symbol table.
fn analyze_fixtures() -> Vec<Finding> {
    let sources = vec![
        (
            "crates/fixture/src/secret_leak.rs".to_string(),
            include_str!("fixtures/secret_leak.rs").to_string(),
        ),
        (
            "crates/fixture/src/lock_cycle.rs".to_string(),
            include_str!("fixtures/lock_cycle.rs").to_string(),
        ),
        (
            "crates/fixture/src/loop_sleep.rs".to_string(),
            include_str!("fixtures/loop_sleep.rs").to_string(),
        ),
        (
            "crates/fixture/src/decode_unwrap.rs".to_string(),
            include_str!("fixtures/decode_unwrap.rs").to_string(),
        ),
    ];
    run_passes(sources).findings
}

fn of_pass<'a>(findings: &'a [Finding], pass: &str) -> Vec<&'a Finding> {
    findings.iter().filter(|f| f.pass.name() == pass).collect()
}

#[test]
fn taint_pass_reports_exactly_the_planted_leak() {
    let findings = analyze_fixtures();
    let taint = of_pass(&findings, "taint");
    assert!(
        taint.iter().all(|f| f.file.ends_with("secret_leak.rs")),
        "taint findings outside the taint fixture: {taint:#?}"
    );
    // The helper leaks directly; the entry point leaks through the call
    // edge — both must surface, and the non-secret `id` control must not.
    assert!(
        taint.iter().any(|f| f.func.ends_with("debug_dump")),
        "direct leak in the helper not caught: {taint:#?}"
    );
    assert!(
        taint.iter().any(|f| f.func.ends_with("handle_request")),
        "interprocedural leak through the helper not caught: {taint:#?}"
    );
    assert!(
        taint.iter().all(|f| !f.func.ends_with("log_id")),
        "non-secret field projection misreported: {taint:#?}"
    );
}

#[test]
fn lock_pass_reports_exactly_the_planted_cycle() {
    let findings = analyze_fixtures();
    let locks = of_pass(&findings, "locks");
    assert!(
        locks.iter().all(|f| f.file.ends_with("lock_cycle.rs")),
        "lock findings outside the lock fixture: {locks:#?}"
    );
    assert_eq!(locks.len(), 1, "expected exactly the AB/BA cycle: {locks:#?}");
    assert!(
        locks[0].detail.contains("alpha") && locks[0].detail.contains("beta"),
        "cycle should name both lock classes: {}",
        locks[0].detail
    );
}

#[test]
fn blocking_pass_reports_exactly_the_planted_sleep() {
    let findings = analyze_fixtures();
    let blocking = of_pass(&findings, "blocking");
    assert!(
        blocking.iter().all(|f| f.file.ends_with("loop_sleep.rs")),
        "blocking findings outside the sleep fixture: {blocking:#?}"
    );
    assert_eq!(blocking.len(), 1, "expected exactly the loop-reachable sleep: {blocking:#?}");
    assert!(
        blocking[0].func.ends_with("drain_queue"),
        "the sleep hides in drain_queue, one call below the loop: {blocking:#?}"
    );
    // The path must show how the loop reaches the sleep.
    assert!(
        blocking[0].path.iter().any(|p| p.ends_with("run_router_loop")),
        "finding should carry the root-to-sleep path: {blocking:#?}"
    );
}

#[test]
fn panics_pass_reports_exactly_the_planted_unwrap() {
    let findings = analyze_fixtures();
    let panics = of_pass(&findings, "panics");
    assert!(
        panics.iter().all(|f| f.file.ends_with("decode_unwrap.rs")),
        "panic findings outside the unwrap fixture: {panics:#?}"
    );
    assert_eq!(panics.len(), 1, "expected exactly the decode-path unwrap: {panics:#?}");
    assert!(
        panics[0].func.ends_with("decode_request") && panics[0].kind == "unwrap",
        "the unwrap lives in decode_request: {panics:#?}"
    );
}

#[test]
fn finding_ids_are_stable_across_runs() {
    let a = analyze_fixtures();
    let b = analyze_fixtures();
    let ids_a: Vec<&str> = a.iter().map(|f| f.id.as_str()).collect();
    let ids_b: Vec<&str> = b.iter().map(|f| f.id.as_str()).collect();
    assert_eq!(ids_a, ids_b, "IDs must be deterministic");
    assert!(ids_a.iter().all(|id| id.starts_with("TA-")), "{ids_a:?}");
}
