//! `theta-lint` — a workspace-local secret-hygiene lint.
//!
//! Scans every `.rs` file in the workspace (excluding `vendor/` and this
//! crate) and reports uses of secret key material that leak through
//! formatting, timing or freed memory:
//!
//! - **debug-on-secret** — `#[derive(Debug)]` on a secret-bearing type,
//!   or a hand-written `Debug` impl that does not redact (no `redacted`
//!   marker in its body).
//! - **display-on-secret** — any `Display`/`ToString` impl on a
//!   secret-bearing type. There is no redacted exemption: a secret type
//!   has no legitimate user-facing string form.
//! - **eq-on-secret** — `#[derive(PartialEq)]` or a hand-written
//!   `PartialEq` impl on a secret-bearing type, and any `==`/`!=` whose
//!   operand is a secret field access. Derived equality short-circuits
//!   on the first differing limb, so comparison time leaks the position
//!   of the difference; use the inherent `ct_eq` instead.
//! - **missing-wipe-on-drop** — a secret-bearing type without a `Drop`
//!   impl that wipes (volatile-overwrites) its secret fields, so freed
//!   heap pages would retain key material.
//!
//! A type is *secret-bearing* when its name is in [`SECRET_TYPE_NAMES`]
//! or it has a named field in [`SECRET_FIELDS`], unless exempted in
//! [`NOT_SECRET`] with a justification. Impl blocks are matched within
//! the defining file, which is how every scheme module in this workspace
//! is laid out. The scanner is token-level by design (no `syn` in-tree):
//! comments are stripped first so prose mentioning `Debug` never trips
//! it, and comparison operands are parsed around each `==`/`!=` so
//! `self.id == other.id && self.x_i.ct_eq(..)` does not false-positive.
//!
//! Exit status: `0` when clean, `1` when any finding is reported —
//! `scripts/analysis.sh` and CI treat findings as hard failures.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Types that are secret-bearing by name, wherever they are defined.
const SECRET_TYPE_NAMES: &[&str] = &[
    "KeyShare",
    "DealtShare",
    "DkgOutput",
    "SigningNonce",
    // Transport handshake secrets (crates/network/src/handshake.rs):
    // the static-identity seed/scalar and the per-direction AEAD
    // session keys derived by the Noise-IK handshake.
    "IdentitySeed",
    "StaticIdentity",
    "SendCipher",
    "RecvCipher",
    // The keystore's storage key (crates/core/src/keymanager.rs): the
    // HKDF-derived symmetric key sealing tenant key shares at rest.
    "KeystoreKey",
];

/// Field names that mark their owning struct as secret-bearing, and
/// whose direct comparison with `==`/`!=` is flagged anywhere.
const SECRET_FIELDS: &[&str] =
    &["x_i", "s_i", "secret", "secret_share", "secret_key", "private_key"];

/// `(file name, type name)` pairs exempt from classification, each with
/// a reason. Keep this list short and justified.
const NOT_SECRET: &[(&str, &str)] = &[
    // sh00's x_i here is the *public* signature share x^{2Δ s_i}
    // broadcast to the combiner, not the signing exponent s_i.
    ("sh00.rs", "SignatureShare"),
];

/// One reported violation.
#[derive(Debug, PartialEq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

fn main() -> ExitCode {
    // The lint binary lives in crates/lint; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();

    // `theta-lint analyze [...]` — the workspace-wide symbol-graph
    // analyzer (taint / locks / blocking / panics); see lib.rs.
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("analyze") {
        let mut rest: Vec<String> = args[1..].to_vec();
        if !rest.iter().any(|a| a == "--root") {
            rest.push("--root".into());
            rest.push(root.to_string_lossy().into_owned());
        }
        return match theta_lint::analyze::main_analyze(&rest) {
            0 => ExitCode::SUCCESS,
            2 => ExitCode::from(2),
            _ => ExitCode::FAILURE,
        };
    }

    let mut files = Vec::new();
    for top in ["crates", "src", "tests"] {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let rel = rel.to_string_lossy().replace('\\', "/");
        // The lint's own tables would trip the lint.
        if rel.starts_with("crates/lint/") {
            continue;
        }
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("theta-lint: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        };
        scanned += 1;
        findings.extend(lint_file(&rel, &src));
    }

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("theta-lint: {scanned} files scanned, no secret-hygiene findings");
        ExitCode::SUCCESS
    } else {
        println!("theta-lint: {} finding(s) in {scanned} files", findings.len());
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name != "target" && name != "vendor" {
                collect_rs_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints one file; `file` is the workspace-relative path used both for
/// reporting and for [`NOT_SECRET`] matching.
fn lint_file(file: &str, raw: &str) -> Vec<Finding> {
    let src = strip_comments(raw);
    let structs = parse_structs(&src);
    let impls = parse_impls(&src);
    let base = Path::new(file)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();

    let mut findings = Vec::new();
    for s in &structs {
        let named_secret = SECRET_TYPE_NAMES.contains(&s.name.as_str());
        let field_secret = s.fields.iter().any(|f| SECRET_FIELDS.contains(&f.as_str()));
        let exempt = NOT_SECRET.iter().any(|(f, t)| *f == base && *t == s.name);
        if (!named_secret && !field_secret) || exempt {
            continue;
        }

        for d in &s.derives {
            match d.as_str() {
                "Debug" => findings.push(Finding {
                    file: file.into(),
                    line: s.line,
                    rule: "debug-on-secret",
                    message: format!(
                        "secret-bearing type `{}` derives Debug; write a redacted impl",
                        s.name
                    ),
                }),
                "PartialEq" => findings.push(Finding {
                    file: file.into(),
                    line: s.line,
                    rule: "eq-on-secret",
                    message: format!(
                        "secret-bearing type `{}` derives PartialEq (short-circuiting, \
                         timing leaks where shares differ); provide `ct_eq` instead",
                        s.name
                    ),
                }),
                _ => {}
            }
        }

        let mut wiped = false;
        for im in impls.iter().filter(|im| im.type_name == s.name) {
            match im.trait_name.as_deref() {
                Some("Debug") if !im.body.contains("redacted") => findings.push(Finding {
                    file: file.into(),
                    line: im.line,
                    rule: "debug-on-secret",
                    message: format!(
                        "Debug impl for secret-bearing `{}` does not redact",
                        s.name
                    ),
                }),
                Some("Display") | Some("ToString") => findings.push(Finding {
                    file: file.into(),
                    line: im.line,
                    rule: "display-on-secret",
                    message: format!(
                        "{} impl on secret-bearing `{}`; secrets have no string form",
                        im.trait_name.as_deref().unwrap_or(""),
                        s.name
                    ),
                }),
                Some("PartialEq") => findings.push(Finding {
                    file: file.into(),
                    line: im.line,
                    rule: "eq-on-secret",
                    message: format!(
                        "PartialEq impl on secret-bearing `{}`; provide `ct_eq` instead",
                        s.name
                    ),
                }),
                Some("Drop") if im.body.contains("wipe") => wiped = true,
                _ => {}
            }
        }
        if !wiped {
            findings.push(Finding {
                file: file.into(),
                line: s.line,
                rule: "missing-wipe-on-drop",
                message: format!(
                    "secret-bearing type `{}` has no Drop impl that wipes its secrets",
                    s.name
                ),
            });
        }
    }

    findings.extend(find_secret_comparisons(file, &src));
    findings.sort_by_key(|f| f.line);
    findings
}

/// A struct definition: name, 1-based line, derive list, named fields.
struct StructDef {
    name: String,
    line: usize,
    derives: Vec<String>,
    fields: Vec<String>,
}

/// An impl block: optional trait (last path segment), self type (first
/// path segment of the `for` target), 1-based line, body text.
struct ImplDef {
    trait_name: Option<String>,
    type_name: String,
    line: usize,
    body: String,
}

fn parse_structs(src: &str) -> Vec<StructDef> {
    let mut out = Vec::new();
    let mut derives: Vec<String> = Vec::new();
    let bytes = src.as_bytes();
    let mut offset = 0usize;
    for (idx, line) in src.split_inclusive('\n').enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[") {
            if let Some(rest) = trimmed.strip_prefix("#[derive(") {
                if let Some(end) = rest.find(')') {
                    derives.extend(rest[..end].split(',').map(|d| {
                        d.trim().rsplit("::").next().unwrap_or("").to_string()
                    }));
                }
            }
            offset += line.len();
            continue;
        }
        if let Some(pos) = find_token(trimmed, "struct") {
            let after = &trimmed[pos + "struct".len()..];
            let name: String = after
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                // Named fields live between `{`..`}`; `;` first means a
                // tuple/unit struct with no named fields to inspect.
                let decl_start = offset + (line.len() - trimmed.len());
                let fields = match first_of(bytes, decl_start, b'{', b';') {
                    Some((b'{', open)) => {
                        brace_body(src, open).map(named_fields).unwrap_or_default()
                    }
                    _ => Vec::new(),
                };
                out.push(StructDef {
                    name,
                    line: line_no,
                    derives: std::mem::take(&mut derives),
                    fields,
                });
            }
        }
        if !trimmed.is_empty() {
            derives.clear();
        }
        offset += line.len();
    }
    out
}

fn parse_impls(src: &str) -> Vec<ImplDef> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    for (idx, line) in src.split_inclusive('\n').enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim_start();
        if let Some(pos) = find_token(trimmed, "impl") {
            // Header runs from `impl` to the block's opening brace.
            let start = offset + (line.len() - trimmed.len()) + pos;
            if let Some(open) = src[start..].find('{').map(|i| start + i) {
                let header = &src[start..open];
                let (trait_name, type_name) = parse_impl_header(header);
                if !type_name.is_empty() {
                    let body = brace_body(src, open).unwrap_or("").to_string();
                    out.push(ImplDef { trait_name, type_name, line: line_no, body });
                }
            }
        }
        offset += line.len();
    }
    out
}

/// Splits an impl header (without the `{`) into `(trait, self type)`.
/// `impl<T> fmt::Debug for Share<T>` → `(Some("Debug"), "Share")`;
/// `impl Share` → `(None, "Share")`.
fn parse_impl_header(header: &str) -> (Option<String>, String) {
    let mut rest = header.trim_start();
    rest = rest.strip_prefix("impl").unwrap_or(rest);
    // Skip generic parameters on the impl itself.
    if rest.starts_with('<') {
        let mut depth = 0usize;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[cut..];
    }
    let rest = rest.trim();
    match rest.split_once(" for ") {
        Some((tr, ty)) => (Some(last_segment(tr)), first_type_name(ty)),
        None => (None, first_type_name(rest)),
    }
}

fn last_segment(path: &str) -> String {
    path.trim()
        .rsplit("::")
        .next()
        .unwrap_or("")
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect()
}

fn first_type_name(ty: &str) -> String {
    // `theta::Share<T> where ...` → `Share`: last path segment of the
    // leading path, cut at generics/whitespace.
    let head: &str = ty
        .trim()
        .split(|c: char| c == '<' || c.is_whitespace())
        .next()
        .unwrap_or("");
    last_segment(head)
}

/// Finds `needle` in `hay` as a standalone word.
fn find_token(hay: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(i) = hay[from..].find(needle) {
        let at = from + i;
        let before_ok = at == 0
            || !hay[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= hay.len()
            || !hay[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = after;
    }
    None
}

/// Returns the first of two bytes at/after `from`, with its offset.
fn first_of(bytes: &[u8], from: usize, a: u8, b: u8) -> Option<(u8, usize)> {
    bytes[from..]
        .iter()
        .position(|&c| c == a || c == b)
        .map(|i| (bytes[from + i], from + i))
}

/// The text between the brace at `open` and its matching close brace.
fn brace_body(src: &str, open: usize) -> Option<&str> {
    let mut depth = 0usize;
    for (i, c) in src[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&src[open + 1..open + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extracts named-field identifiers from a struct body.
fn named_fields(body: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut depth = 0usize;
    for line in body.lines() {
        let trimmed = line.trim();
        if depth == 0 && !trimmed.starts_with('#') {
            let decl = trimmed.strip_prefix("pub").map(str::trim_start).unwrap_or(trimmed);
            // `pub(crate) name: Type,` — drop the visibility scope.
            let decl = if decl.starts_with('(') {
                decl.split_once(')').map(|(_, r)| r.trim_start()).unwrap_or(decl)
            } else {
                decl
            };
            if let Some((name, _)) = decl.split_once(':') {
                let name = name.trim();
                if !name.is_empty()
                    && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                {
                    fields.push(name.to_string());
                }
            }
        }
        depth += line.matches(['{', '(']).count();
        depth = depth.saturating_sub(line.matches(['}', ')']).count());
    }
    fields
}

/// Flags `==` / `!=` whose left or right operand is a field access to a
/// name in [`SECRET_FIELDS`].
fn find_secret_comparisons(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let bytes = src.as_bytes();
    let mut line_no = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line_no += 1;
            i += 1;
            continue;
        }
        let is_eq = c == b'=' && bytes.get(i + 1) == Some(&b'=');
        let is_ne = c == b'!' && bytes.get(i + 1) == Some(&b'=');
        if (is_eq || is_ne)
            // Not `<=`, `>=`, `===`-ish or compound assignment.
            && !matches!(bytes.get(i.wrapping_sub(1)), Some(b'=' | b'<' | b'>' | b'!'))
            && bytes.get(i + 2) != Some(&b'=')
        {
            let lhs = operand_backward(src, i);
            let rhs = operand_forward(src, i + 2);
            for op in [lhs, rhs].iter().flatten() {
                if let Some(field) = op.rsplit('.').next() {
                    if op.contains('.') && SECRET_FIELDS.contains(&field) {
                        findings.push(Finding {
                            file: file.into(),
                            line: line_no,
                            rule: "eq-on-secret",
                            message: format!(
                                "secret field `{op}` compared with `{}`; use `ct_eq`",
                                if is_eq { "==" } else { "!=" }
                            ),
                        });
                        break;
                    }
                }
            }
            i += 2;
            continue;
        }
        i += 1;
    }
    findings
}

fn operand_backward(src: &str, op_at: usize) -> Option<String> {
    let head = src[..op_at].trim_end();
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
        .map(|i| i + 1)
        .unwrap_or(0);
    let op = &head[start..];
    (!op.is_empty()).then(|| op.to_string())
}

fn operand_forward(src: &str, from: usize) -> Option<String> {
    let tail = src[from..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
        .unwrap_or(tail.len());
    let op = &tail[..end];
    (!op.is_empty()).then(|| op.to_string())
}

/// Replaces `//` and (nested) `/* */` comments with spaces, preserving
/// newlines, string/char literals and raw strings, so prose mentioning
/// `Debug` or `==` never reaches the rules.
///
/// Delegates to the shared lexer: the old local implementation treated
/// `\` inside raw strings as an escape and missed `"#`-style closers,
/// so an `r#"..."#` literal could swallow the rest of the file.
fn strip_comments(src: &str) -> String {
    theta_lint::lexer::strip_comments(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(file: &str, src: &str) -> Vec<&'static str> {
        lint_file(file, src).into_iter().map(|f| f.rule).collect()
    }

    const CLEAN: &str = r#"
        #[derive(Clone)]
        pub struct KeyShare {
            pub id: u16,
            x_i: Scalar,
        }
        impl std::fmt::Debug for KeyShare {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct("KeyShare").field("x_i", &"<redacted>").finish()
            }
        }
        impl Drop for KeyShare {
            fn drop(&mut self) { self.x_i.wipe(); }
        }
        impl KeyShare {
            pub fn ct_eq(&self, other: &KeyShare) -> bool {
                self.id == other.id && self.x_i.ct_eq(&other.x_i)
            }
        }
    "#;

    #[test]
    fn clean_share_passes() {
        assert_eq!(rules("sg02.rs", CLEAN), Vec::<&str>::new());
    }

    #[test]
    fn derived_debug_and_eq_flagged() {
        let src = "#[derive(Clone, Debug, PartialEq)]\n\
                   pub struct KeyShare { x_i: Scalar }\n\
                   impl Drop for KeyShare { fn drop(&mut self) { self.x_i.wipe(); } }\n";
        let got = rules("sg02.rs", src);
        assert!(got.contains(&"debug-on-secret"), "{got:?}");
        assert!(got.contains(&"eq-on-secret"), "{got:?}");
    }

    #[test]
    fn unredacted_debug_impl_flagged() {
        let src = "pub struct KeyShare { x_i: Scalar }\n\
                   impl fmt::Debug for KeyShare {\n\
                       fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n\
                           write!(f, \"{:?}\", self.x_i)\n\
                       }\n\
                   }\n\
                   impl Drop for KeyShare { fn drop(&mut self) { self.x_i.wipe(); } }\n";
        assert_eq!(rules("sg02.rs", src), vec!["debug-on-secret"]);
    }

    #[test]
    fn display_flagged_even_when_redacted() {
        let src = "pub struct KeyShare { x_i: Scalar }\n\
                   impl fmt::Display for KeyShare {\n\
                       fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {\n\
                           write!(f, \"redacted\")\n\
                       }\n\
                   }\n\
                   impl Drop for KeyShare { fn drop(&mut self) { self.x_i.wipe(); } }\n";
        assert_eq!(rules("sg02.rs", src), vec!["display-on-secret"]);
    }

    #[test]
    fn missing_drop_wipe_flagged() {
        let src = "pub struct KeyShare { x_i: Scalar }\n";
        assert_eq!(rules("sg02.rs", src), vec!["missing-wipe-on-drop"]);
        let unwiped = "pub struct KeyShare { x_i: Scalar }\n\
                       impl Drop for KeyShare { fn drop(&mut self) { log(self.id); } }\n";
        assert_eq!(rules("sg02.rs", unwiped), vec!["missing-wipe-on-drop"]);
    }

    #[test]
    fn secret_field_comparison_flagged_but_ct_eq_is_not() {
        let src = format!("{CLEAN}\nfn bad(a: &KeyShare, b: &KeyShare) -> bool {{ a.x_i == b.x_i }}\n");
        assert_eq!(rules("sg02.rs", &src), vec!["eq-on-secret"]);
    }

    #[test]
    fn field_heuristic_classifies_unknown_types() {
        let src = "#[derive(Debug)]\npub struct Opaque { secret_share: Scalar }\n\
                   impl Drop for Opaque { fn drop(&mut self) { self.secret_share.wipe(); } }\n";
        assert_eq!(rules("anything.rs", src), vec!["debug-on-secret"]);
    }

    #[test]
    fn allowlist_and_public_types_skipped() {
        // sh00's SignatureShare carries a *public* x_i.
        let sh00 = "#[derive(Clone, Debug, PartialEq)]\n\
                    pub struct SignatureShare { x_i: BigUint }\n";
        assert_eq!(rules("crates/schemes/src/sh00.rs", sh00), Vec::<&str>::new());
        // Public types with public fields are never secret-bearing.
        let public = "#[derive(Clone, Debug, PartialEq)]\npub struct PublicKey { y: Point }\n";
        assert_eq!(rules("sg02.rs", public), Vec::<&str>::new());
    }

    #[test]
    fn comments_and_strings_do_not_trip_rules() {
        let src = "// This struct must never derive(Debug) on x_i == secret\n\
                   /* impl Display for KeyShare */\n\
                   pub struct Harmless { id: u16 }\n";
        assert_eq!(rules("sg02.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn tuple_structs_and_generics_parse() {
        let src = "pub struct Wrapper(Vec<u8>);\n\
                   impl<T: Clone> Holder<T> { fn get(&self) {} }\n\
                   impl core::fmt::Debug for Wrapper {\n fn f() {}\n }\n";
        assert_eq!(rules("x.rs", src), Vec::<&str>::new());
    }

    #[test]
    fn raw_strings_do_not_derail_the_scan() {
        // Regression: the old strip_comments treated `\` inside raw
        // strings as an escape and missed `"#` closers, so the literal
        // below swallowed the rest of the file and the real derive was
        // never seen.
        let src = "const T: &str = r#\"a \\ quote: \" and // not a comment\"#;\n\
                   #[derive(Debug)]\npub struct KeyShare { x_i: Scalar }\n\
                   impl Drop for KeyShare { fn drop(&mut self) { self.x_i.wipe(); } }\n";
        assert_eq!(rules("sg02.rs", src), vec!["debug-on-secret"]);
    }
}
