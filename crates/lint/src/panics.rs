//! Panic-path audit.
//!
//! Roots are functions annotated `// theta: entrypoint(network)` —
//! the places where bytes from a Byzantine peer first become control
//! flow. Everything reachable from them must not panic on malformed
//! input: `unwrap`/`expect`, the panic macro family, and non-literal
//! indexing are findings, gated by the justified allowlist
//! (`crates/lint/panics.allow`) and inline
//! `// theta: allow(panics): reason` markers.
//!
//! One idiom is excluded by design: `.lock().unwrap()` (and
//! `.read()`/`.write()` guards). Mutex poisoning means another thread
//! already panicked; propagating is the only sane recovery and every
//! call site would otherwise need an identical allowlist line. The
//! workspace convention `unwrap_or_else(|e| e.into_inner())` does not
//! even match the pattern.

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::parser::skip_group;
use crate::report::{Finding, Pass};
use crate::symbols::{FnId, Workspace};

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `.unwrap()` / `.expect(` immediately chained onto a guard
/// acquisition — the poison idiom.
fn is_poison_idiom(toks: &[Token], i: usize) -> bool {
    // toks[i] is `unwrap`/`expect`; shape: `<recv> . lock ( ) . unwrap`.
    i >= 5
        && toks[i - 1].is(".")
        && toks[i - 2].is(")")
        && toks[i - 3].is("(")
        && toks[i - 4].kind == TokKind::Ident
        && matches!(toks[i - 4].text.as_str(), "lock" | "read" | "write")
        && toks[i - 5].is(".")
}

/// True when an index expression can panic on attacker input: it
/// mentions a lowercase identifier (a computed length/offset). Pure
/// numeric literals and `ALL_CAPS` consts index fixed layouts the
/// surrounding code already guards.
fn index_is_dynamic(toks: &[Token]) -> bool {
    toks.iter().any(|t| {
        t.kind == TokKind::Ident
            && t.text.starts_with(|c: char| c.is_ascii_lowercase())
    })
}

fn flatten_short(toks: &[Token]) -> String {
    let mut s = String::new();
    for t in toks {
        if !s.is_empty()
            && t.kind == TokKind::Ident
            && s.ends_with(|c: char| c.is_alphanumeric() || c == '_')
        {
            s.push(' ');
        }
        s.push_str(&t.text);
        if s.len() > 40 {
            s.truncate(40);
            s.push('…');
            break;
        }
    }
    s
}

pub fn run(ws: &Workspace, cg: &CallGraph) -> Vec<Finding> {
    let roots: Vec<FnId> = ws
        .all_fns()
        .filter(|&id| {
            let f = ws.fn_def(id);
            !f.in_test && f.markers.iter().any(|m| m.starts_with("entrypoint"))
        })
        .collect();
    let parents = cg.reach(&roots);

    let mut findings = Vec::new();
    for &id in parents.keys() {
        let f = ws.fn_def(id);
        let toks = ws.tokens(id);
        let positions = ws.effective_positions(id);
        let file = ws.file(id).path.clone();
        let push = |findings: &mut Vec<Finding>, line: usize, kind: &str, detail: String| {
            findings.push(Finding {
                pass: Pass::Panics,
                id: String::new(),
                file: file.clone(),
                line,
                func: f.qualified.clone(),
                kind: kind.into(),
                detail,
                path: cg.path_to(ws, &parents, id),
            });
        };
        for &i in &positions {
            let t = &toks[i];
            match t.kind {
                TokKind::Ident if (t.text == "unwrap" || t.text == "expect") => {
                    let method = i > 0
                        && toks[i - 1].is(".")
                        && toks.get(i + 1).is_some_and(|n| n.is("("));
                    if method && !is_poison_idiom(toks, i) {
                        push(
                            &mut findings,
                            t.line,
                            &t.text,
                            format!(".{}() on a network-reachable path", t.text),
                        );
                    }
                }
                TokKind::Ident
                    if PANIC_MACROS.contains(&t.text.as_str())
                        && toks.get(i + 1).is_some_and(|n| n.is("!")) =>
                {
                    push(&mut findings, t.line, "panic-macro", format!("{}!", t.text));
                }
                TokKind::Punct if t.text == "[" => {
                    // Indexing only: `expr[..]` — previous token ends a
                    // value. `#[attr]`, array literals and patterns
                    // don't.
                    let indexes = i > 0
                        && (toks[i - 1].kind == TokKind::Ident
                            || toks[i - 1].is(")")
                            || toks[i - 1].is("]"));
                    if !indexes {
                        continue;
                    }
                    let end = skip_group(toks, i);
                    let inner = &toks[i + 1..end.saturating_sub(1)];
                    if !inner.is_empty() && index_is_dynamic(inner) {
                        push(
                            &mut findings,
                            t.line,
                            "dynamic-index",
                            format!("`[{}]` may be out of bounds", flatten_short(inner)),
                        );
                    }
                }
                _ => {}
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, report, symbols};

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = symbols::build(vec![("crates/a/src/p.rs".into(), src.into())]);
        let cg = callgraph::build(&ws);
        let mut f = run(&ws, &cg);
        report::assign_ids(&mut f);
        f
    }

    #[test]
    fn unwrap_on_decode_path_is_flagged_transitively() {
        let f = run_on(
            "// theta: entrypoint(network)\nfn on_frame(buf: &[u8]) { decode(buf); }\n\
             fn decode(buf: &[u8]) { let n = parse_len(buf).unwrap(); }\n\
             fn parse_len(buf: &[u8]) -> Option<usize> { None }\n\
             fn internal_only() { cfg_value().unwrap(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "unwrap");
        assert_eq!(f[0].path, vec!["p::on_frame", "p::decode"]);
    }

    #[test]
    fn poison_idiom_is_excluded() {
        let f = run_on(
            "// theta: entrypoint(network)\nfn on_frame(s: &S) {\n\
             let g = s.state.lock().unwrap();\n\
             let r = s.state.read().expect(\"rw\");\n}\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn dynamic_index_is_flagged_but_literal_and_const_are_not() {
        let f = run_on(
            "// theta: entrypoint(network)\nfn on_frame(buf: &[u8], len: usize) {\n\
             let a = buf[0];\n\
             let b = buf[HDR_LEN];\n\
             let c = &buf[4..4 + len];\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "dynamic-index");
        assert!(f[0].detail.contains("len"), "{f:#?}");
    }

    #[test]
    fn panic_macros_are_flagged() {
        let f = run_on(
            "// theta: entrypoint(network)\nfn on_frame(x: u8) {\n\
             match x { 0 => {} _ => unreachable!(\"bad tag\") }\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "panic-macro");
    }

    #[test]
    fn expect_without_method_dot_is_not_matched() {
        // A fn named `expect` being *called* (no dot) is not `.expect()`.
        let f = run_on(
            "// theta: entrypoint(network)\nfn on_frame() { expect(3); }\nfn expect(n: u8) {}\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }
}
