//! Event-loop blocking lint.
//!
//! Roots are functions annotated `// theta: event-loop` — the router
//! `select!` loop, the poll(2) front-end loop, and the gossip/TCP
//! reader threads (spawn-closure children inherit the annotation from
//! the function that spawns them). Everything reachable from a root
//! through the call graph must not:
//!
//! - sleep (`thread::sleep`);
//! - block on a channel (`.recv()` — `select!`'s `recv(rx)` clauses
//!   are the loop's designated wait and are not method calls, so they
//!   do not match) or join a thread (`.join()`);
//! - wait on a condvar (`.wait(..)` / `.wait_timeout(..)`);
//! - do file I/O (`std::fs::*`, `File::open/create`, `OpenOptions`,
//!   `read_to_string`/`read_to_end`);
//! - call a function annotated `// theta: worker-only` (the
//!   compile-time analogue of the runtime `assert_off_router` check).

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::report::{Finding, Pass};
use crate::symbols::{FnId, Workspace};

fn has_marker(ws: &Workspace, id: FnId, marker: &str) -> bool {
    ws.fn_def(id).markers.iter().any(|m| m == marker)
}

/// Blocking facts inside one body: `(token index, kind, detail)`.
fn facts(toks: &[Token], positions: &[usize]) -> Vec<(usize, &'static str, String)> {
    let mut out = Vec::new();
    for &i in positions {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is(".");
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is("("));
        match t.text.as_str() {
            "sleep" if next_paren => {
                out.push((i, "sleep", "thread::sleep on an event-loop path".into()));
            }
            "recv" if prev_dot && next_paren => {
                out.push((i, "blocking-recv", "blocking channel .recv()".into()));
            }
            "join" if prev_dot && next_paren && toks.get(i + 2).is_some_and(|n| n.is(")")) => {
                out.push((i, "thread-join", "blocking .join()".into()));
            }
            "wait" | "wait_timeout" if prev_dot && next_paren => {
                out.push((i, "condvar-wait", format!("condvar .{}(..)", t.text)));
            }
            "fs" if toks.get(i + 1).is_some_and(|n| n.is("::")) => {
                let what = toks
                    .get(i + 2)
                    .map(|n| n.text.clone())
                    .unwrap_or_default();
                out.push((i, "file-io", format!("std::fs::{what}")));
            }
            "File" if toks.get(i + 1).is_some_and(|n| n.is("::")) => {
                out.push((i, "file-io", "File::open/create".into()));
            }
            "OpenOptions" => {
                out.push((i, "file-io", "OpenOptions file I/O".into()));
            }
            "read_to_string" | "read_to_end" if next_paren => {
                out.push((i, "file-io", format!(".{}(..)", t.text)));
            }
            _ => {}
        }
    }
    out
}

pub fn run(ws: &Workspace, cg: &CallGraph) -> Vec<Finding> {
    let roots: Vec<FnId> = ws
        .all_fns()
        .filter(|&id| !ws.fn_def(id).in_test && has_marker(ws, id, "event-loop"))
        .collect();
    let parents = cg.reach(&roots);

    let mut findings = Vec::new();
    for &id in parents.keys() {
        let f = ws.fn_def(id);
        // A worker-only fn reachable from an event loop is itself the
        // finding, whatever its body does.
        if has_marker(ws, id, "worker-only") {
            findings.push(Finding {
                pass: Pass::Blocking,
                id: String::new(),
                file: ws.file(id).path.clone(),
                line: f.line,
                func: f.qualified.clone(),
                kind: "worker-only-on-loop".into(),
                detail: "worker-only function reachable from an event loop".into(),
                path: cg.path_to(ws, &parents, id),
            });
            // Its body is *expected* to do heavy work — don't also
            // report every blocking fact inside it.
            continue;
        }
        let toks = ws.tokens(id);
        let positions = ws.effective_positions(id);
        for (pos, kind, detail) in facts(toks, &positions) {
            findings.push(Finding {
                pass: Pass::Blocking,
                id: String::new(),
                file: ws.file(id).path.clone(),
                line: toks[pos].line,
                func: f.qualified.clone(),
                kind: kind.into(),
                detail,
                path: cg.path_to(ws, &parents, id),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, report, symbols};

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = symbols::build(vec![("crates/a/src/b.rs".into(), src.into())]);
        let cg = callgraph::build(&ws);
        let mut f = run(&ws, &cg);
        report::assign_ids(&mut f);
        f
    }

    #[test]
    fn sleep_reachable_from_loop_is_flagged_with_path() {
        let f = run_on(
            "// theta: event-loop\nfn run_loop() { step(); }\n\
             fn step() { helper(); }\n\
             fn helper() { std::thread::sleep(d); }\n\
             fn not_reachable() { std::thread::sleep(d); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "sleep");
        assert_eq!(f[0].path, vec!["b::run_loop", "b::step", "b::helper"]);
    }

    #[test]
    fn select_macro_recv_clause_is_not_a_blocking_recv() {
        let f = run_on(
            "// theta: event-loop\nfn run_loop(rx: &Receiver) {\n\
             loop { select! { recv(rx) -> msg => {} } }\n}\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn method_recv_and_file_io_are_flagged() {
        let f = run_on(
            "// theta: event-loop\nfn run_loop(rx: &Receiver) {\n\
             let m = rx.recv();\n let s = std::fs::read_to_string(p);\n}\n",
        );
        let kinds: Vec<&str> = f.iter().map(|x| x.kind.as_str()).collect();
        assert!(kinds.contains(&"blocking-recv"), "{f:#?}");
        assert!(kinds.contains(&"file-io"), "{f:#?}");
    }

    #[test]
    fn worker_only_reachable_is_the_finding_and_body_is_not_scanned() {
        let f = run_on(
            "// theta: event-loop\nfn run_loop() { heavy(); }\n\
             // theta: worker-only\nfn heavy() { std::fs::write(p, d); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "worker-only-on-loop");
    }

    #[test]
    fn spawn_child_inherits_event_loop_root() {
        let f = run_on(
            "// theta: event-loop\nfn spawn_reader() {\n\
             std::thread::Builder::new().spawn(move || { loop { conn.recv().ok(); } }).expect(\"spawn\");\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "blocking-recv");
        assert!(f[0].func.contains("::spawn@"), "{f:#?}");
    }

    #[test]
    fn off_loop_worker_code_is_free_to_block() {
        let f = run_on("fn worker_side() { rx.recv(); std::thread::sleep(d); }\n");
        assert!(f.is_empty(), "{f:#?}");
    }
}
