//! theta-analyze — workspace-wide symbol-graph static analyzer.
//!
//! Grown out of the per-file secret-hygiene token scanner (the
//! `theta-lint` binary in `main.rs`): this library builds a workspace
//! symbol table and call graph from a hand-rolled lightweight Rust
//! parser (zero dependencies, same policy as the rest of the repo) and
//! runs four analyses over it:
//!
//! 1. [`taint`] — secret values flowing interprocedurally into
//!    `format!`/`println!`/journal/serialize sinks and non-`ct_eq`
//!    comparisons;
//! 2. [`locks`] — `theta_sync::Mutex` acquisition-order graph composed
//!    over the call graph; cycles are potential deadlocks;
//! 3. [`blocking`] — functions reachable from the router `select!`
//!    loop, the poll(2) front-end loop, and gossip reader threads must
//!    not sleep, block on a channel, do file I/O, or call worker-only
//!    crypto;
//! 4. [`panics`] — `unwrap`/`expect`/indexing reachable from
//!    network-facing entry points, gated by a justified allowlist.
//!
//! The pipeline is `lexer` → `parser` → `symbols` (+ `callgraph`) →
//! passes → `report`; `analyze` glues it together behind the
//! `theta-lint analyze` subcommand.

pub mod analyze;
pub mod blocking;
pub mod callgraph;
pub mod lexer;
pub mod locks;
pub mod panics;
pub mod parser;
pub mod report;
pub mod symbols;
pub mod taint;

/// Types whose values are secret material. Shared by the per-type
/// hygiene lint (`theta-lint` binary) and the interprocedural taint
/// pass.
pub const SECRET_TYPE_NAMES: &[&str] = &[
    "KeyShare",
    "DealtShare",
    "DkgOutput",
    "SigningNonce",
    "IdentitySeed",
    "StaticIdentity",
    "SendCipher",
    "RecvCipher",
    "KeystoreKey",
];

/// Field names that carry secret scalars/bytes regardless of the
/// enclosing type's name.
pub const SECRET_FIELDS: &[&str] =
    &["x_i", "s_i", "secret", "secret_share", "secret_key", "private_key"];
