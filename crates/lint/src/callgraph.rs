//! Call-graph construction over the workspace symbol table.
//!
//! Resolution is name-based with scope preference (same file → same
//! crate → whole workspace) — the pragmatic middle ground for a
//! zero-dep analyzer. Method calls resolve against every impl with a
//! matching method name; `Type::name` paths resolve exactly;
//! over-ambiguous names (more than [`MAX_CANDIDATES`] matches after
//! scoping) are dropped rather than wiring the graph into a hairball.

use crate::lexer::TokKind;
use crate::symbols::{FnId, Workspace};
use std::collections::{HashMap, HashSet, VecDeque};

/// A resolved call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    pub callee: FnId,
    /// Token index of the callee name in the caller's file.
    pub pos: usize,
    pub line: usize,
}

pub struct CallGraph {
    pub edges: HashMap<FnId, Vec<Call>>,
}

/// Method/path names that are never workspace calls worth an edge —
/// std/container vocabulary that would otherwise alias user fns.
const NOISE_NAMES: &[&str] = &[
    "new", "default", "clone", "len", "get", "insert", "remove", "push", "pop",
    "iter", "next", "send", "recv", "lock", "unwrap", "expect", "drain", "take",
    "into", "from", "with_capacity", "to_vec", "as_ref", "as_mut", "contains",
    "clear", "extend", "write", "read", "flush", "map", "and_then", "ok_or",
    "unwrap_or", "unwrap_or_else", "unwrap_or_default", "is_empty", "split_off",
];

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "loop", "for", "in", "return", "let", "mut",
    "ref", "move", "as", "where", "impl", "fn", "pub", "use", "mod", "struct",
    "enum", "trait", "type", "const", "static", "unsafe", "extern", "crate",
    "super", "Self", "self", "dyn", "break", "continue", "await", "async",
    "some", "Some", "None", "Ok", "Err", "Box", "Vec", "String", "Arc", "Rc",
];

const MAX_CANDIDATES: usize = 8;

/// Narrows `cands` to the closest scope tier relative to `caller`.
fn prefer_scope(ws: &Workspace, caller: FnId, cands: Vec<FnId>) -> Vec<FnId> {
    let same_file: Vec<FnId> = cands.iter().copied().filter(|c| c.0 == caller.0).collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let caller_crate = &ws.crates[caller.0];
    let same_crate: Vec<FnId> =
        cands.iter().copied().filter(|c| &ws.crates[c.0] == caller_crate).collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    cands
}

fn resolve(
    ws: &Workspace,
    caller: FnId,
    name: &str,
    qualifier: Option<&str>,
    is_method: bool,
) -> Vec<FnId> {
    if KEYWORDS.contains(&name) || NOISE_NAMES.contains(&name) {
        return Vec::new();
    }
    // `Type::name` — exact impl lookup (plus `Self::name` against the
    // caller's own impl type).
    if let Some(q) = qualifier {
        let ty = if q == "Self" {
            ws.fn_def(caller).impl_type.clone()
        } else if q.starts_with(|c: char| c.is_ascii_uppercase()) {
            Some(q.to_string())
        } else {
            None
        };
        if let Some(ty) = ty {
            return ws
                .by_typed_name
                .get(&(ty, name.to_string()))
                .cloned()
                .unwrap_or_default();
        }
        // `module::name` — prefer the file whose stem is the module.
        let cands = ws.by_name.get(name).cloned().unwrap_or_default();
        let modular: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|c| {
                ws.files[c.0]
                    .path
                    .rsplit('/')
                    .next()
                    .is_some_and(|f| f == format!("{q}.rs") || (q == "lib" && f == "lib.rs"))
            })
            .collect();
        let pool = if modular.is_empty() { cands } else { modular };
        let pool = prefer_scope(ws, caller, pool);
        return if pool.len() > MAX_CANDIDATES { Vec::new() } else { pool };
    }
    let mut cands = ws.by_name.get(name).cloned().unwrap_or_default();
    if is_method {
        // `.name(...)` — methods only, and same-crate only: the
        // receiver's type is unknown, so a cross-crate name match is
        // far more likely std/foreign (`stream.shutdown(..)` is
        // `TcpStream::shutdown`, not the router's) than a real edge.
        // Cross-crate boundaries annotate their own roots instead.
        let caller_crate = &ws.crates[caller.0];
        let methods: Vec<FnId> = cands
            .iter()
            .copied()
            .filter(|c| {
                ws.fn_def(*c).impl_type.is_some() && &ws.crates[c.0] == caller_crate
            })
            .collect();
        cands = methods;
        // `self.name(...)` against the caller's own type wins outright.
        if let Some(ty) = &ws.fn_def(caller).impl_type {
            if let Some(own) = ws.by_typed_name.get(&(ty.clone(), name.to_string())) {
                let own_scoped: Vec<FnId> =
                    own.iter().copied().filter(|c| c.0 == caller.0).collect();
                if !own_scoped.is_empty() {
                    return own_scoped;
                }
            }
        }
    }
    let pool = prefer_scope(ws, caller, cands);
    if pool.len() > MAX_CANDIDATES {
        Vec::new()
    } else {
        pool
    }
}

/// Names bound locally inside `body` (params + `let` bindings). A bare
/// call to one of these is a closure/fn-pointer invocation, not a call
/// to a workspace fn that happens to share the name — `enqueue()` on a
/// closure param must not resolve to some crate's `Engine::enqueue`.
fn local_bindings(
    f: &crate::parser::FnDef,
    toks: &[crate::lexer::Token],
) -> HashSet<String> {
    let mut names: HashSet<String> =
        f.params.iter().map(|p| p.name.clone()).collect();
    let mut i = f.body.start;
    while i < f.body.end.min(toks.len()) {
        if toks[i].is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(t) = toks.get(j) {
                if t.kind == TokKind::Ident {
                    names.insert(t.text.clone());
                }
            }
        }
        i += 1;
    }
    names
}

/// Extracts and resolves every call site in every production fn.
pub fn build(ws: &Workspace) -> CallGraph {
    let mut edges: HashMap<FnId, Vec<Call>> = HashMap::new();
    for id in ws.all_fns() {
        let f = ws.fn_def(id);
        if f.in_test {
            continue;
        }
        let toks = ws.tokens(id);
        let locals = local_bindings(f, toks);
        let positions = ws.effective_positions(id);
        let mut calls = Vec::new();
        for &i in &positions {
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let Some(next) = toks.get(i + 1) else { continue };
            if !next.is("(") {
                continue;
            }
            let prev = i.checked_sub(1).map(|p| &toks[p]);
            // `fn name(` is a definition, `name!(...)` a macro.
            if prev.is_some_and(|p| p.is_ident("fn")) {
                continue;
            }
            let (qualifier, is_method) = match prev {
                Some(p) if p.is("::") => {
                    let q = i
                        .checked_sub(2)
                        .map(|p| &toks[p])
                        .filter(|q| q.kind == TokKind::Ident)
                        .map(|q| q.text.clone());
                    (q, false)
                }
                Some(p) if p.is(".") => (None, true),
                _ => (None, false),
            };
            if qualifier.is_none() && !is_method && locals.contains(&t.text) {
                continue;
            }
            for callee in resolve(ws, id, &t.text, qualifier.as_deref(), is_method) {
                if callee == id {
                    continue;
                }
                calls.push(Call { callee, pos: i, line: t.line });
            }
        }
        edges.insert(id, calls);
    }
    CallGraph { edges }
}

impl CallGraph {
    pub fn calls(&self, id: FnId) -> &[Call] {
        self.edges.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// BFS from `roots`; returns each reached fn with its predecessor
    /// (for path reconstruction). Roots map to themselves.
    pub fn reach(&self, roots: &[FnId]) -> HashMap<FnId, FnId> {
        let mut parent: HashMap<FnId, FnId> = HashMap::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(cur) = queue.pop_front() {
            for call in self.calls(cur) {
                if let std::collections::hash_map::Entry::Vacant(e) =
                    parent.entry(call.callee)
                {
                    e.insert(cur);
                    queue.push_back(call.callee);
                }
            }
        }
        parent
    }

    /// Reconstructs `root → … → target` as qualified names.
    pub fn path_to(
        &self,
        ws: &Workspace,
        parents: &HashMap<FnId, FnId>,
        target: FnId,
    ) -> Vec<String> {
        let mut chain = vec![target];
        let mut cur = target;
        let mut seen: HashSet<FnId> = HashSet::new();
        while let Some(&p) = parents.get(&cur) {
            if p == cur || !seen.insert(p) {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain.into_iter().map(|id| ws.fn_def(id).qualified.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        symbols::build(
            sources.iter().map(|(p, s)| (p.to_string(), s.to_string())).collect(),
        )
    }

    #[test]
    fn bare_and_path_calls_resolve_with_scope_preference() {
        let ws = ws(&[
            (
                "crates/a/src/main_mod.rs",
                "pub fn target() {}\npub fn caller() { target(); helper::target(); }\n",
            ),
            ("crates/b/src/helper.rs", "pub fn target() {}\n"),
        ]);
        let g = build(&ws);
        let caller = ws.by_name["caller"][0];
        let calls = g.calls(caller);
        // Bare call resolves same-file; `helper::target` resolves to
        // the helper.rs definition.
        assert_eq!(calls.len(), 2);
        let files: Vec<&str> =
            calls.iter().map(|c| ws.files[c.callee.0].path.as_str()).collect();
        assert!(files.contains(&"crates/a/src/main_mod.rs"));
        assert!(files.contains(&"crates/b/src/helper.rs"));
    }

    #[test]
    fn self_method_calls_resolve_to_own_impl() {
        let ws = ws(&[(
            "crates/a/src/m.rs",
            "struct A;\nimpl A {\n  fn step(&self) {}\n  fn run(&self) { self.step(); }\n}\n\
             struct B;\nimpl B { fn step(&self) {} }\n",
        )]);
        let g = build(&ws);
        let run = ws.by_typed_name[&("A".to_string(), "run".to_string())][0];
        let calls = g.calls(run);
        assert_eq!(calls.len(), 1);
        assert_eq!(ws.fn_def(calls[0].callee).impl_type.as_deref(), Some("A"));
    }

    #[test]
    fn reach_walks_transitively_and_reconstructs_paths() {
        let ws = ws(&[(
            "crates/a/src/r.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn unrelated() {}\n",
        )]);
        let g = build(&ws);
        let a = ws.by_name["a"][0];
        let c = ws.by_name["c"][0];
        let parents = g.reach(&[a]);
        assert!(parents.contains_key(&c));
        assert!(!parents.contains_key(&ws.by_name["unrelated"][0]));
        let path = g.path_to(&ws, &parents, c);
        assert_eq!(path, vec!["r::a", "r::b", "r::c"]);
    }

    #[test]
    fn locally_bound_closures_do_not_resolve_to_workspace_fns() {
        let ws = ws(&[
            (
                "crates/a/src/h.rs",
                "pub fn run(enqueue: impl FnOnce()) {\n  let load = |x: u32| x;\n  load(1);\n  enqueue();\n}\n",
            ),
            ("crates/b/src/e.rs", "pub fn enqueue() {}\npub fn load() {}\n"),
        ]);
        let g = build(&ws);
        assert!(g.calls(ws.by_name["run"][0]).is_empty());
    }

    #[test]
    fn noise_names_and_macros_do_not_create_edges() {
        let ws = ws(&[(
            "crates/a/src/n.rs",
            "fn new() {}\nfn caller() { let v = Vec::new(); format!(\"x\"); }\n",
        )]);
        let g = build(&ws);
        assert!(g.calls(ws.by_name["caller"][0]).is_empty());
    }
}
