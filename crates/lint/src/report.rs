//! Findings, stable IDs, and text/JSON rendering.
//!
//! Finding IDs are an FNV-1a hash of `(pass, file, function, kind,
//! detail, occurrence index)` — deliberately **not** the line number,
//! so unrelated edits above a finding do not churn the checked-in
//! baseline. The occurrence index disambiguates repeats of the same
//! kind in the same function.

use std::collections::HashMap;
use std::fmt::Write as _;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    Taint,
    Locks,
    Blocking,
    Panics,
}

impl Pass {
    pub fn name(self) -> &'static str {
        match self {
            Pass::Taint => "taint",
            Pass::Locks => "locks",
            Pass::Blocking => "blocking",
            Pass::Panics => "panics",
        }
    }
}

#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: Pass,
    /// Stable ID, filled by [`assign_ids`].
    pub id: String,
    pub file: String,
    pub line: usize,
    /// Qualified name of the containing (or reported) function.
    pub func: String,
    /// Machine-stable kind slug (`secret-to-sink`, `lock-cycle`, ...).
    pub kind: String,
    /// Human detail, also part of the ID.
    pub detail: String,
    /// Call chain from an analysis root, when the pass has one.
    pub path: Vec<String>,
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Computes each finding's stable ID in place and sorts by
/// `(pass, file, line)` for deterministic output.
pub fn assign_ids(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.pass.name(), &a.file, a.line, &a.kind)
            .cmp(&(b.pass.name(), &b.file, b.line, &b.kind))
    });
    let mut occurrence: HashMap<String, usize> = HashMap::new();
    for f in findings.iter_mut() {
        let key = format!("{}|{}|{}|{}|{}", f.pass.name(), f.file, f.func, f.kind, f.detail);
        let n = occurrence.entry(key.clone()).or_insert(0);
        f.id = format!("TA-{:016x}", fnv64(format!("{key}|{n}").as_bytes()));
        *n += 1;
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable report: per-pass counts plus every
/// finding, one object each.
pub fn render_json(findings: &[Finding]) -> String {
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for f in findings {
        *counts.entry(f.pass.name()).or_insert(0) += 1;
    }
    let mut out = String::from("{\n  \"counts\": {");
    for (i, pass) in ["taint", "locks", "blocking", "panics"].iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{pass}\": {}", counts.get(pass).copied().unwrap_or(0));
    }
    out.push_str("},\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": \"{}\", \"pass\": \"{}\", \"kind\": \"{}\", \"file\": \"{}\", \
             \"line\": {}, \"function\": \"{}\", \"detail\": \"{}\", \"path\": [",
            f.id,
            f.pass.name(),
            json_escape(&f.kind),
            json_escape(&f.file),
            f.line,
            json_escape(&f.func),
            json_escape(&f.detail),
        );
        for (j, hop) in f.path.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\"", json_escape(hop));
        }
        out.push_str("]}");
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human report grouped by pass.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for pass in [Pass::Taint, Pass::Locks, Pass::Blocking, Pass::Panics] {
        let of_pass: Vec<&Finding> = findings.iter().filter(|f| f.pass == pass).collect();
        let _ = writeln!(out, "== {}: {} finding(s)", pass.name(), of_pass.len());
        for f in of_pass {
            let _ = writeln!(
                out,
                "  [{}] {}:{} in {} — {}: {}",
                f.id, f.file, f.line, f.func, f.kind, f.detail
            );
            if !f.path.is_empty() {
                let _ = writeln!(out, "      via {}", f.path.join(" -> "));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(line: usize, detail: &str) -> Finding {
        Finding {
            pass: Pass::Panics,
            id: String::new(),
            file: "crates/x/src/a.rs".into(),
            line,
            func: "a::f".into(),
            kind: "unwrap".into(),
            detail: detail.into(),
            path: vec!["a::root".into(), "a::f".into()],
        }
    }

    #[test]
    fn ids_are_stable_across_line_shifts_and_distinct_per_occurrence() {
        let mut v1 = vec![mk(10, "x.unwrap()")];
        let mut v2 = vec![mk(42, "x.unwrap()")];
        assign_ids(&mut v1);
        assign_ids(&mut v2);
        assert_eq!(v1[0].id, v2[0].id, "line moves must not churn IDs");

        let mut dup = vec![mk(10, "x.unwrap()"), mk(11, "x.unwrap()")];
        assign_ids(&mut dup);
        assert_ne!(dup[0].id, dup[1].id, "repeat occurrences get distinct IDs");
    }

    #[test]
    fn json_is_escaped_and_counts_are_present() {
        let mut v = vec![mk(1, "quote \" backslash \\ done")];
        assign_ids(&mut v);
        let json = render_json(&v);
        assert!(json.contains("\"panics\": 1"));
        assert!(json.contains("quote \\\" backslash \\\\ done"));
        assert!(json.contains("\"path\": [\"a::root\", \"a::f\"]"));
    }
}
