//! Lightweight Rust item parser over the [`crate::lexer`] token stream.
//!
//! This is not a grammar-complete parser — it extracts exactly the
//! facts the analyses need, from idiomatic workspace code:
//!
//! - function definitions (name, impl context, parameters with type
//!   text, return-type text, body token range), including nested fns;
//! - `#[cfg(test)]` modules and `#[test]` functions, so test-only
//!   panics and blocking calls never pollute production findings;
//! - **spawn regions**: the closure argument of a `spawn(...)` call
//!   runs on a *different thread*, so its body is split out as a
//!   synthetic child function (`parent::spawn@line`). The caller keeps
//!   no facts and no call edges from the region; root annotations on
//!   the parent propagate to the children (annotating a
//!   `spawn_link_reader`-style helper marks the thread body it spawns);
//! - struct definitions with field names and type text (taint typing);
//! - `// theta: ...` marker annotations, attached to the next function
//!   (`event-loop`, `worker-only`, `entrypoint(...)`) or recorded
//!   positionally (`allow(<pass>): reason`, suppressing findings on
//!   its own and the following line).

use crate::lexer::{Token, TokKind};
use std::ops::Range;

/// One parsed parameter: binding name (empty for patterns the parser
/// does not resolve) and the flattened type text.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// A function definition (real or synthetic spawn child).
#[derive(Debug)]
pub struct FnDef {
    /// Simple name (`run`); spawn children reuse the parent's name.
    pub name: String,
    /// Display path: `file_stem::Type::name` or `file_stem::name`,
    /// with `::spawn@<line>` appended for spawn children.
    pub qualified: String,
    /// Enclosing `impl` type, when any.
    pub impl_type: Option<String>,
    pub line: usize,
    pub params: Vec<Param>,
    /// Flattened return-type text (empty when `()`).
    pub ret: String,
    /// Token-index range of the body (inside the braces). Empty for
    /// trait-method declarations.
    pub body: Range<usize>,
    /// Sub-ranges of `body` that are spawn-closure regions — excluded
    /// from this function's own facts.
    pub child_regions: Vec<Range<usize>>,
    /// Index of the parent `FnDef` for spawn children.
    pub parent: Option<usize>,
    /// `theta:` annotations attached to this fn (propagated to spawn
    /// children).
    pub markers: Vec<String>,
    /// Inside `#[cfg(test)]` or marked `#[test]` — excluded from every
    /// analysis pass.
    pub in_test: bool,
}

/// A struct definition with typed fields, for taint classification.
#[derive(Debug)]
pub struct StructDef {
    pub name: String,
    pub line: usize,
    /// `(field name, flattened type text)`.
    pub fields: Vec<(String, String)>,
}

/// A positional `allow` marker: suppresses findings of `pass` on
/// `line` and `line + 1` in this file.
#[derive(Debug)]
pub struct AllowMarker {
    pub pass: String,
    pub line: usize,
    pub reason: String,
}

/// Everything the analyses need from one source file.
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub fns: Vec<FnDef>,
    pub structs: Vec<StructDef>,
    pub allows: Vec<AllowMarker>,
}

/// Returns the index just past the group that opens at `open` (which
/// must hold `(`, `[`, `{` or `<`). Balanced over all three bracket
/// kinds; `<` additionally tolerates `->`/`=>`/shift-free generics.
pub fn skip_group(tokens: &[Token], open: usize) -> usize {
    let (open_tok, close_tok) = match tokens[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        "<" => ("<", ">"),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Punct {
            if t.text == open_tok {
                depth += 1;
            } else if t.text == close_tok {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            } else if open_tok == "<" && (t.text == ";" || t.text == "{") {
                // A `<` that was really a comparison: bail out rather
                // than eat the rest of the file.
                return open + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Flattens tokens into readable type/expr text (`&mut Vec<u8>`).
fn flatten(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t.kind {
            TokKind::Str => {
                out.push('"');
                out.push_str(&t.text);
                out.push('"');
            }
            TokKind::Lifetime => {
                out.push('\'');
                out.push_str(&t.text);
                out.push(' ');
            }
            _ => {
                if !out.is_empty()
                    && t.kind == TokKind::Ident
                    && out.ends_with(|c: char| c.is_alphanumeric() || c == '_')
                {
                    out.push(' ');
                }
                out.push_str(&t.text);
            }
        }
    }
    out
}

/// Splits a parameter-list token slice on top-level commas and parses
/// each `name: Type` (or `self` receivers, recorded as `self`).
fn parse_params(tokens: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut i = 0usize;
    while i <= tokens.len() {
        let at_end = i == tokens.len();
        let is_sep = !at_end
            && depth == 0
            && tokens[i].kind == TokKind::Punct
            && tokens[i].text == ",";
        if at_end || is_sep {
            let part = &tokens[start..i];
            if !part.is_empty() {
                params.push(parse_one_param(part));
            }
            start = i + 1;
        } else if !at_end && tokens[i].kind == TokKind::Punct {
            match tokens[i].text.as_str() {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    params
}

fn parse_one_param(part: &[Token]) -> Param {
    // `self`, `&self`, `&mut self`, `mut self`.
    if part.iter().any(|t| t.is_ident("self")) && !part.iter().any(|t| t.is(":")) {
        return Param { name: "self".into(), ty: "Self".into() };
    }
    let colon = part.iter().position(|t| t.kind == TokKind::Punct && t.text == ":");
    match colon {
        Some(c) => {
            // Binding: last ident before the colon (`mut name`,
            // destructuring patterns fall back to empty).
            let name = part[..c]
                .iter()
                .rev()
                .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                .map(|t| t.text.clone())
                .unwrap_or_default();
            Param { name, ty: flatten(&part[c + 1..]) }
        }
        None => Param { name: String::new(), ty: flatten(part) },
    }
}

/// Parses one file. `path` must be workspace-relative (used for
/// qualified names and reporting).
pub fn parse_file(path: &str, tokens: Vec<Token>) -> ParsedFile {
    let file_stem = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();

    let mut fns: Vec<FnDef> = Vec::new();
    let mut structs: Vec<StructDef> = Vec::new();
    let mut allows: Vec<AllowMarker> = Vec::new();

    // `impl` / `mod` contexts as (close-token-index, impl-type,
    // is-test) entries; popped lazily by index comparison.
    struct Ctx {
        end: usize,
        impl_type: Option<String>,
        is_test: bool,
    }
    let mut ctxs: Vec<Ctx> = Vec::new();
    let mut pending_markers: Vec<String> = Vec::new();
    // `#[test]` / `#[cfg(test)]` seen since the last item.
    let mut pending_test_attr = false;
    let mut pending_cfg_test = false;

    let mut i = 0usize;
    while i < tokens.len() {
        while let Some(c) = ctxs.last() {
            if i >= c.end {
                ctxs.pop();
            } else {
                break;
            }
        }
        let t = &tokens[i];
        match t.kind {
            TokKind::Marker => {
                let text = t.text.clone();
                if let Some(rest) = text.strip_prefix("allow(") {
                    if let Some(close) = rest.find(')') {
                        let pass = rest[..close].trim().to_string();
                        let reason = rest[close + 1..]
                            .trim_start_matches(':')
                            .trim()
                            .to_string();
                        allows.push(AllowMarker { pass, line: t.line, reason });
                    }
                } else {
                    pending_markers.push(text);
                }
                i += 1;
            }
            TokKind::Punct if t.text == "#" => {
                // Attribute: `#[...]` — flag test markers, skip.
                if tokens.get(i + 1).is_some_and(|n| n.is("[")) {
                    let end = skip_group(&tokens, i + 1);
                    let attr = flatten(&tokens[i + 1..end]);
                    if attr.contains("cfg(test") {
                        pending_cfg_test = true;
                    }
                    if attr == "[test]" || attr.contains("[test]") || attr.contains("[ test ]")
                    {
                        pending_test_attr = true;
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident if t.text == "impl" => {
                // Header runs to the opening `{`; the self type is the
                // first path segment after `for`, or after the
                // (optional) generics otherwise.
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|n| n.is("<")) {
                    j = skip_group(&tokens, j);
                }
                let mut open = j;
                while open < tokens.len() && !tokens[open].is("{") && !tokens[open].is(";") {
                    open += 1;
                }
                let header = &tokens[j..open.min(tokens.len())];
                let for_pos = header.iter().position(|t| t.is_ident("for"));
                let ty_toks = match for_pos {
                    Some(p) => &header[p + 1..],
                    None => header,
                };
                let impl_type = leading_path_type(ty_toks);
                if open < tokens.len() && tokens[open].is("{") {
                    let end = skip_group(&tokens, open);
                    ctxs.push(Ctx {
                        end,
                        impl_type,
                        is_test: pending_cfg_test || ctxs.last().is_some_and(|c| c.is_test),
                    });
                    i = open + 1;
                } else {
                    i = open + 1;
                }
                pending_cfg_test = false;
                pending_test_attr = false;
                pending_markers.clear();
            }
            TokKind::Ident if t.text == "mod" => {
                let is_test =
                    pending_cfg_test || ctxs.last().is_some_and(|c| c.is_test);
                let mut open = i + 1;
                while open < tokens.len() && !tokens[open].is("{") && !tokens[open].is(";") {
                    open += 1;
                }
                if open < tokens.len() && tokens[open].is("{") {
                    let end = skip_group(&tokens, open);
                    ctxs.push(Ctx { end, impl_type: None, is_test });
                    i = open + 1;
                } else {
                    i = open + 1;
                }
                pending_cfg_test = false;
                pending_test_attr = false;
                pending_markers.clear();
            }
            TokKind::Ident if t.text == "struct" => {
                if let Some(name_tok) =
                    tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident)
                {
                    let name = name_tok.text.clone();
                    let line = name_tok.line;
                    // Find `{` (named fields), `;` (unit/tuple end) or
                    // `(` (tuple) — generics skipped.
                    let mut j = i + 2;
                    if tokens.get(j).is_some_and(|n| n.is("<")) {
                        j = skip_group(&tokens, j);
                    }
                    let mut fields = Vec::new();
                    while j < tokens.len() {
                        if tokens[j].is("{") {
                            let end = skip_group(&tokens, j);
                            fields = parse_struct_fields(&tokens[j + 1..end - 1]);
                            j = end;
                            break;
                        }
                        if tokens[j].is(";") {
                            j += 1;
                            break;
                        }
                        if tokens[j].is("(") {
                            j = skip_group(&tokens, j);
                            continue;
                        }
                        j += 1;
                    }
                    structs.push(StructDef { name, line, fields });
                    i = j;
                } else {
                    i += 1;
                }
                pending_cfg_test = false;
                pending_test_attr = false;
                pending_markers.clear();
            }
            TokKind::Ident if t.text == "fn" => {
                // `fn(` is a fn-pointer type, not a definition.
                let Some(name_tok) =
                    tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident)
                else {
                    i += 1;
                    continue;
                };
                let name = name_tok.text.clone();
                let line = name_tok.line;
                let mut j = i + 2;
                if tokens.get(j).is_some_and(|n| n.is("<")) {
                    j = skip_group(&tokens, j);
                }
                let (params, after_params) =
                    if tokens.get(j).is_some_and(|n| n.is("(")) {
                        let end = skip_group(&tokens, j);
                        (parse_params(&tokens[j + 1..end - 1]), end)
                    } else {
                        (Vec::new(), j)
                    };
                // Return type: tokens between `->` and the body brace
                // (or `;`/`where`).
                let mut k = after_params;
                let mut ret_start = None;
                while k < tokens.len() && !tokens[k].is("{") && !tokens[k].is(";") {
                    if tokens[k].is("->") && ret_start.is_none() {
                        ret_start = Some(k + 1);
                    }
                    if tokens[k].is_ident("where") && ret_start.is_some() {
                        break;
                    }
                    if tokens[k].is("<") {
                        k = skip_group(&tokens, k);
                        continue;
                    }
                    k += 1;
                }
                let ret_end = k;
                while k < tokens.len() && !tokens[k].is("{") && !tokens[k].is(";") {
                    k += 1;
                }
                let ret = ret_start
                    .map(|s| flatten(&tokens[s..ret_end]))
                    .unwrap_or_default();
                let in_test = pending_test_attr
                    || pending_cfg_test
                    || ctxs.last().is_some_and(|c| c.is_test);
                let impl_type = ctxs.iter().rev().find_map(|c| c.impl_type.clone());
                let markers = std::mem::take(&mut pending_markers);
                pending_test_attr = false;
                pending_cfg_test = false;
                if k < tokens.len() && tokens[k].is("{") {
                    let end = skip_group(&tokens, k);
                    let body = k + 1..end - 1;
                    let qualified = match &impl_type {
                        Some(ty) => format!("{file_stem}::{ty}::{name}"),
                        None => format!("{file_stem}::{name}"),
                    };
                    let fn_idx = fns.len();
                    fns.push(FnDef {
                        name,
                        qualified,
                        impl_type,
                        line,
                        params,
                        ret,
                        body: body.clone(),
                        child_regions: Vec::new(),
                        parent: None,
                        markers,
                        in_test,
                    });
                    collect_spawn_children(&tokens, body, fn_idx, &mut fns);
                    // Do NOT jump past the body: nested fns inside it
                    // are found by continuing the scan (their bodies
                    // re-parse harmlessly).
                    i = k + 1;
                } else {
                    i = k + 1;
                }
            }
            _ => {
                if t.kind == TokKind::Ident
                    && matches!(t.text.as_str(), "enum" | "trait" | "use" | "static" | "const")
                {
                    pending_markers.clear();
                }
                i += 1;
            }
        }
    }

    ParsedFile { path: path.to_string(), tokens, fns, structs, allows }
}

/// Last ident of the leading path in an impl header's self type:
/// `theta::Share<T>` → `Share`. Stops at `<`, `where` or any
/// non-path punctuation.
fn leading_path_type(toks: &[Token]) -> Option<String> {
    let mut last = None;
    let mut expect_ident = true;
    for t in toks {
        match t.kind {
            TokKind::Ident if expect_ident => {
                if t.is_ident("where") {
                    break;
                }
                last = Some(t.text.clone());
                expect_ident = false;
            }
            TokKind::Punct if t.text == "::" && !expect_ident => expect_ident = true,
            TokKind::Punct if t.text == "&" || t.text == "*" => {}
            _ => break,
        }
    }
    last
}

fn parse_struct_fields(tokens: &[Token]) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut i = 0usize;
    while i <= tokens.len() {
        let at_end = i == tokens.len();
        let is_sep = !at_end
            && depth == 0
            && tokens[i].kind == TokKind::Punct
            && tokens[i].text == ",";
        if at_end || is_sep {
            let part = &tokens[start..i];
            // `pub name: Type` — name is the ident right before the
            // first top-level colon; attributes were already lexed out
            // by `#` handling? No: strip `# [ ... ]` prefixes here.
            let mut p = 0usize;
            while p + 1 < part.len() && part[p].is("#") && part[p + 1].is("[") {
                p = skip_group(part, p + 1);
            }
            let part = &part[p..];
            if let Some(c) =
                part.iter().position(|t| t.kind == TokKind::Punct && t.text == ":")
            {
                let name = part[..c]
                    .iter()
                    .rev()
                    .find(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                if let Some(name) = name {
                    if !matches!(name.as_str(), "pub" | "crate") {
                        fields.push((name, flatten(&part[c + 1..])));
                    }
                }
            }
            start = i + 1;
        } else if !at_end && tokens[i].kind == TokKind::Punct {
            match tokens[i].text.as_str() {
                "(" | "[" | "<" | "{" => depth += 1,
                ")" | "]" | ">" | "}" => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    fields
}

/// Finds `spawn(...)` calls whose argument is a closure inside `body`
/// and registers each as a synthetic child fn of `parent`. Children
/// inherit the parent's markers (so annotating a spawner annotates the
/// thread body) and recurse for spawns-within-spawns.
fn collect_spawn_children(
    tokens: &[Token],
    body: Range<usize>,
    parent: usize,
    fns: &mut Vec<FnDef>,
) {
    let mut i = body.start;
    while i < body.end {
        let t = &tokens[i];
        if t.kind == TokKind::Ident
            && t.text == "spawn"
            && tokens.get(i + 1).is_some_and(|n| n.is("("))
        {
            let end = skip_group(tokens, i + 1).min(body.end);
            let region = i + 2..end.saturating_sub(1);
            // Only closure arguments become children — `spawn(workers,
            // id)`-style ordinary calls stay with the caller.
            let is_closure = tokens[region.clone()]
                .iter()
                .take(3)
                .any(|t| t.is_ident("move") || t.is("|") || t.is("||"));
            if is_closure && !region.is_empty() {
                let p = &fns[parent];
                let line = t.line;
                let child = FnDef {
                    name: p.name.clone(),
                    qualified: format!("{}::spawn@{line}", p.qualified),
                    impl_type: p.impl_type.clone(),
                    line,
                    params: Vec::new(),
                    ret: String::new(),
                    body: region.clone(),
                    child_regions: Vec::new(),
                    parent: Some(parent),
                    markers: p.markers.clone(),
                    in_test: p.in_test,
                };
                fns[parent].child_regions.push(region.clone());
                let child_idx = fns.len();
                fns.push(child);
                collect_spawn_children(tokens, region, child_idx, fns);
                i = end;
                continue;
            }
        }
        i += 1;
    }
}

/// Iterates `(token index)` positions of `f.body`, skipping this fn's
/// spawn-child regions — every fact extractor walks bodies through
/// this so thread-crossing code is never attributed to the caller.
pub fn body_positions(f: &FnDef) -> impl Iterator<Item = usize> + '_ {
    let regions = f.child_regions.clone();
    f.body.clone().filter(move |i| !regions.iter().any(|r| r.contains(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> ParsedFile {
        parse_file("x/sample.rs", tokenize(src))
    }

    #[test]
    fn fns_structs_and_impls_parse() {
        let p = parse(
            "pub struct Foo { pub a: u32, secret: Vec<u8> }\n\
             impl Foo {\n  pub fn go(&self, n: usize) -> Result<u32, Err> { n + 1 }\n}\n\
             fn free(x: &KeyShare) {}\n",
        );
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(p.structs[0].fields[1], ("secret".into(), "Vec<u8>".into()));
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].qualified, "sample::Foo::go");
        assert_eq!(p.fns[0].params[1].name, "n");
        assert!(p.fns[0].ret.contains("Result"));
        assert_eq!(p.fns[1].params[0].ty, "&KeyShare");
    }

    #[test]
    fn cfg_test_modules_and_test_fns_are_flagged() {
        let p = parse(
            "fn prod() {}\n\
             #[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); }\n  fn helper() {}\n}\n",
        );
        let by_name = |n: &str| p.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").in_test);
        assert!(by_name("t").in_test);
        assert!(by_name("helper").in_test);
    }

    #[test]
    fn markers_attach_to_next_fn_and_allows_are_positional() {
        let p = parse(
            "// theta: event-loop\nfn run() { loop {} }\n\
             fn other() {\n  sleep(); // theta: allow(blocking): docs say so\n}\n",
        );
        assert_eq!(p.fns[0].markers, vec!["event-loop".to_string()]);
        assert!(p.fns[1].markers.is_empty());
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].pass, "blocking");
        assert_eq!(p.allows[0].reason, "docs say so");
    }

    #[test]
    fn spawn_closures_become_children_and_inherit_markers() {
        let p = parse(
            "// theta: event-loop\n\
             fn reader() {\n  setup();\n  std::thread::Builder::new().spawn(move || {\n    loop_body();\n  }).expect(\"spawn\");\n}\n",
        );
        assert_eq!(p.fns.len(), 2);
        let parent = &p.fns[0];
        let child = &p.fns[1];
        assert_eq!(parent.child_regions.len(), 1);
        assert_eq!(child.parent, Some(0));
        assert!(child.qualified.contains("::spawn@"));
        assert_eq!(child.markers, vec!["event-loop".to_string()]);
        // The parent's visible body keeps `setup` but not `loop_body`.
        let parent_idents: Vec<&str> = body_positions(parent)
            .map(|i| p.tokens[i].text.as_str())
            .collect();
        assert!(parent_idents.contains(&"setup"));
        assert!(!parent_idents.contains(&"loop_body"));
    }

    #[test]
    fn plain_spawn_call_is_not_a_child() {
        let p = parse("fn boss() { WorkerPool::spawn(4, id, metrics); }\n");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].child_regions.is_empty());
    }

    #[test]
    fn nested_fn_is_found() {
        let p = parse("fn outer() { fn inner(q: u8) {} inner(3); }\n");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
    }
}
