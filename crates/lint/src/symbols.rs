//! Workspace symbol table: all parsed files plus indexes for resolving
//! function names to definitions.

use crate::lexer::{tokenize, Token};
use crate::parser::{parse_file, FnDef, ParsedFile, StructDef};
use std::collections::HashMap;
use std::ops::Range;
use std::path::Path;

/// Global function id: `(file index, fn index within file)`.
pub type FnId = (usize, usize);

pub struct Workspace {
    pub files: Vec<ParsedFile>,
    /// Crate name per file (`crates/<name>/src/...`), or `""`.
    pub crates: Vec<String>,
    /// Simple fn name → definitions (production fns only).
    pub by_name: HashMap<String, Vec<FnId>>,
    /// `(impl type, fn name)` → definitions.
    pub by_typed_name: HashMap<(String, String), Vec<FnId>>,
    /// Struct name → definition site.
    pub structs: HashMap<String, (usize, usize)>,
}

impl Workspace {
    pub fn fn_def(&self, id: FnId) -> &FnDef {
        &self.files[id.0].fns[id.1]
    }

    pub fn file(&self, id: FnId) -> &ParsedFile {
        &self.files[id.0]
    }

    pub fn tokens(&self, id: FnId) -> &[Token] {
        &self.files[id.0].tokens
    }

    pub fn all_fns(&self) -> impl Iterator<Item = FnId> + '_ {
        self.files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| (0..f.fns.len()).map(move |gi| (fi, gi)))
    }

    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name).map(|&(fi, si)| &self.files[fi].structs[si])
    }

    /// Token positions of `id`'s body with spawn-child regions AND
    /// nested-fn bodies removed — code that runs on another thread or
    /// belongs to an inner `fn` is never attributed to this function.
    pub fn effective_positions(&self, id: FnId) -> Vec<usize> {
        let file = &self.files[id.0];
        let f = &file.fns[id.1];
        let mut cut: Vec<Range<usize>> = f.child_regions.clone();
        for (gi, g) in file.fns.iter().enumerate() {
            if gi != id.1
                && g.parent.is_none()
                && g.body.start > f.body.start
                && g.body.end <= f.body.end
            {
                // Nested `fn` defined inside this body (the scan
                // re-visits them as standalone defs).
                cut.push(g.body.clone());
            }
        }
        f.body
            .clone()
            .filter(|i| !cut.iter().any(|r| r.contains(i)))
            .collect()
    }
}

/// Directories never analyzed: vendored deps, build output, the
/// analyzer itself (it names every pattern it searches for), and
/// test-only trees.
fn excluded(rel: &str) -> bool {
    rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.starts_with("crates/lint/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if excluded(&rel) {
            continue;
        }
        if path.is_dir() {
            walk(&path, root, out);
        } else if rel.ends_with(".rs") {
            if let Ok(src) = std::fs::read_to_string(&path) {
                out.push((rel, src));
            }
        }
    }
}

/// Loads every production `.rs` file under `<root>/crates`.
pub fn load_workspace_sources(root: &Path) -> Vec<(String, String)> {
    let mut out = Vec::new();
    walk(&root.join("crates"), root, &mut out);
    out
}

fn crate_of(rel: &str) -> String {
    let mut it = rel.split('/');
    match (it.next(), it.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        _ => String::new(),
    }
}

/// Parses sources (workspace-relative path, contents) into a
/// [`Workspace`]. Pure over its inputs — the fixture tests feed
/// in-memory sources through the same entry point the CLI uses.
pub fn build(sources: Vec<(String, String)>) -> Workspace {
    let mut files = Vec::new();
    let mut crates = Vec::new();
    for (path, src) in sources {
        crates.push(crate_of(&path));
        files.push(parse_file(&path, tokenize(&src)));
    }

    let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
    let mut by_typed_name: HashMap<(String, String), Vec<FnId>> = HashMap::new();
    let mut structs: HashMap<String, (usize, usize)> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (gi, f) in file.fns.iter().enumerate() {
            if f.in_test || f.parent.is_some() {
                continue;
            }
            by_name.entry(f.name.clone()).or_default().push((fi, gi));
            if let Some(ty) = &f.impl_type {
                by_typed_name
                    .entry((ty.clone(), f.name.clone()))
                    .or_default()
                    .push((fi, gi));
            }
        }
        for (si, s) in file.structs.iter().enumerate() {
            structs.entry(s.name.clone()).or_insert((fi, si));
        }
    }

    Workspace { files, crates, by_name, by_typed_name, structs }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_indexes_fns_and_structs_across_files() {
        let ws = build(vec![
            (
                "crates/a/src/one.rs".into(),
                "pub struct Thing { secret: Vec<u8> }\n\
                 impl Thing { pub fn go(&self) {} }\n\
                 pub fn helper() {}\n"
                    .into(),
            ),
            ("crates/b/src/two.rs".into(), "pub fn helper() { other(); }\n".into()),
        ]);
        assert_eq!(ws.by_name["helper"].len(), 2);
        assert_eq!(ws.by_typed_name[&("Thing".to_string(), "go".to_string())].len(), 1);
        assert!(ws.struct_def("Thing").is_some());
        assert_eq!(ws.crates, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn effective_positions_cut_nested_fns() {
        let ws = build(vec![(
            "crates/a/src/n.rs".into(),
            "fn outer() { fn inner() { hidden(); } seen(); }\n".into(),
        )]);
        let outer = ws.by_name["outer"][0];
        let idents: Vec<&str> = ws
            .effective_positions(outer)
            .into_iter()
            .map(|i| ws.tokens(outer)[i].text.as_str())
            .collect();
        assert!(idents.contains(&"seen"));
        assert!(!idents.contains(&"hidden"));
    }

    #[test]
    fn test_fns_are_not_indexed() {
        let ws = build(vec![(
            "crates/a/src/t.rs".into(),
            "#[cfg(test)]\nmod tests { fn only_in_tests() {} }\n".into(),
        )]);
        assert!(!ws.by_name.contains_key("only_in_tests"));
    }
}
