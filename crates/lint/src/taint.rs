//! Secret taint dataflow.
//!
//! Tracks values of [`crate::SECRET_TYPE_NAMES`] types — and any
//! `.x_i`/`.secret`-style field projection — from their bindings into
//! observable sinks:
//!
//! - format-family macros (`format!`, `println!`, `panic!`, ...);
//! - trace-journal record calls (`.record(..)`, `.record_detail(..)`,
//!   `.record_full(..)`);
//! - serialization entry points (`.serialize(`, `.to_json(`);
//! - non-constant-time comparisons (`==`/`!=` instead of `ct_eq`).
//!
//! The interprocedural half is a param-leak summary fixpoint: param
//! `i` of `f` *leaks* when `f`'s body feeds it to a sink or passes it
//! bare into a leaking position of a callee. Passing a secret into a
//! leaking parameter is then a finding at the call site — secrets
//! escaping "through a helper fn" are caught without inlining.
//!
//! Projecting a non-secret field off a secret value (`share.id`) is
//! deliberately not a finding; the identity of a share is public,
//! only its scalar material is not.

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::parser::skip_group;
use crate::report::{Finding, Pass};
use crate::symbols::{FnId, Workspace};
use crate::{SECRET_FIELDS, SECRET_TYPE_NAMES};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

// The assert/panic macro family is deliberately NOT a taint sink: a
// secret in an `assert!` *condition* (`bytes.len() <= MAX`) is a
// bounds check, not a formatting leak, and flagging it would bury the
// real findings. Panic-on-network-path is the panics pass's job.
const FORMAT_MACROS: &[&str] = &[
    "format", "println", "print", "eprintln", "eprint", "write", "writeln",
    "log", "trace", "debug", "info", "warn", "error",
];

const JOURNAL_METHODS: &[&str] = &["record", "record_detail", "record_full"];
const SERIALIZE_METHODS: &[&str] = &["serialize", "to_json"];

/// Method chains that preserve secrecy — `share.clone()` is as secret
/// as `share`.
const SECRECY_PRESERVING: &[&str] = &["clone", "as_ref", "as_bytes", "to_vec", "as_slice"];

fn word_in(haystack: &str, word: &str) -> bool {
    haystack.match_indices(word).any(|(at, _)| {
        let before_ok = at == 0
            || !haystack[..at]
                .ends_with(|c: char| c.is_alphanumeric() || c == '_');
        let after = &haystack[at + word.len()..];
        let after_ok =
            !after.starts_with(|c: char| c.is_alphanumeric() || c == '_');
        before_ok && after_ok
    })
}

fn is_secret_type(ty: &str) -> bool {
    SECRET_TYPE_NAMES.iter().any(|s| word_in(ty, s))
}

/// Names bound to secret values inside one function: secret-typed
/// params plus `let` bindings of secret-returning calls.
fn secret_atoms(ws: &Workspace, cg: &CallGraph, id: FnId) -> HashSet<String> {
    let f = ws.fn_def(id);
    let toks = ws.tokens(id);
    let mut atoms: HashSet<String> = f
        .params
        .iter()
        .filter(|p| !p.name.is_empty() && is_secret_type(&p.ty))
        .map(|p| p.name.clone())
        .collect();
    for call in cg.calls(id) {
        if !is_secret_type(&ws.fn_def(call.callee).ret) {
            continue;
        }
        // `let [mut] name = <call>` / `let name = match <call> ...`:
        // scan a few tokens back for the binding.
        let mut j = call.pos;
        while j > 0 && j > call.pos.saturating_sub(8) {
            j -= 1;
            if toks[j].is_ident("let") {
                let name = toks[j + 1..call.pos]
                    .iter()
                    .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                    .map(|t| t.text.clone());
                if let Some(name) = name {
                    atoms.insert(name);
                }
                break;
            }
            if toks[j].is(";") || toks[j].is("{") {
                break;
            }
        }
    }
    atoms
}

/// Is the token at `i` a *secret use*? True for a bare secret atom and
/// for `<anything>.<secret field>`; false when a non-secret field is
/// projected off the atom (`share.id`). Returns the description.
fn secret_use_at(toks: &[Token], i: usize, atoms: &HashSet<String>) -> Option<String> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    // `foo.x_i` — secret field off anything (the receiver may be a
    // struct the parser didn't type).
    if SECRET_FIELDS.contains(&t.text.as_str())
        && i > 0
        && toks[i - 1].is(".")
    {
        let base = i
            .checked_sub(2)
            .map(|b| toks[b].text.clone())
            .unwrap_or_default();
        return Some(format!("{base}.{}", t.text));
    }
    if !atoms.contains(&t.text) {
        return None;
    }
    // Declaration sites are not uses.
    if i > 0 && (toks[i - 1].is_ident("let") || toks[i - 1].is_ident("mut") || toks[i - 1].is_ident("fn")) {
        return None;
    }
    // Projection: follow `.field`/`.method()` chains; secrecy survives
    // secret fields and the preserving methods, dies on anything else.
    let mut j = i;
    let mut desc = t.text.clone();
    while toks.get(j + 1).is_some_and(|n| n.is(".")) {
        let Some(field) = toks.get(j + 2).filter(|f| f.kind == TokKind::Ident) else {
            break;
        };
        let is_call = toks.get(j + 3).is_some_and(|n| n.is("("));
        let keeps = if is_call {
            SECRECY_PRESERVING.contains(&field.text.as_str())
        } else {
            SECRET_FIELDS.contains(&field.text.as_str())
        };
        if !keeps {
            return None;
        }
        desc.push('.');
        desc.push_str(&field.text);
        j += if is_call { 3 } else { 2 };
        if is_call {
            desc.push_str("()");
            // step past `()`
            j = skip_group(toks, j) - 1;
        }
    }
    Some(desc)
}

/// Sink regions in a body: `(token range of args, sink label)`.
fn sink_regions(toks: &[Token], positions: &[usize]) -> Vec<(Range<usize>, String)> {
    let mut out = Vec::new();
    for &i in positions {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // Macro sinks: `name ! ( .. )` / `name ! [ .. ]`.
        if FORMAT_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is("!"))
            && toks.get(i + 2).is_some_and(|n| n.is("(") || n.is("["))
        {
            let end = skip_group(toks, i + 2);
            out.push((i + 3..end.saturating_sub(1), format!("{}!", t.text)));
            continue;
        }
        // Method sinks: `.record_detail( .. )`, `.serialize( .. )`.
        if (JOURNAL_METHODS.contains(&t.text.as_str())
            || SERIALIZE_METHODS.contains(&t.text.as_str()))
            && i > 0
            && toks[i - 1].is(".")
            && toks.get(i + 1).is_some_and(|n| n.is("("))
        {
            let end = skip_group(toks, i + 1);
            out.push((i + 2..end.saturating_sub(1), format!(".{}(..)", t.text)));
        }
    }
    out
}

/// Splits a call's argument range on top-level commas.
fn split_args(toks: &[Token], args: Range<usize>) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = args.start;
    let mut i = args.start;
    while i < args.end {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "," if depth == 0 => {
                out.push(start..i);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if start < args.end {
        out.push(start..args.end);
    }
    out
}

/// Map from param name to its index, per fn.
fn param_index(ws: &Workspace, id: FnId) -> HashMap<String, usize> {
    ws.fn_def(id)
        .params
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.name.is_empty())
        .map(|(i, p)| (p.name.clone(), i))
        .collect()
}

/// Runs the pass. Returns raw findings (IDs assigned later).
pub fn run(ws: &Workspace, cg: &CallGraph) -> Vec<Finding> {
    // ---- Phase 1: param-leak summaries (fixpoint). -----------------
    // leak[f] = param indices observable through f.
    let mut leak: HashMap<FnId, HashSet<usize>> = HashMap::new();
    let ids: Vec<FnId> = ws.all_fns().filter(|&id| !ws.fn_def(id).in_test).collect();
    loop {
        let mut changed = false;
        for &id in &ids {
            let toks = ws.tokens(id);
            let positions = ws.effective_positions(id);
            let sinks = sink_regions(toks, &positions);
            let params = param_index(ws, id);
            if params.is_empty() {
                continue;
            }
            let mut leaked: HashSet<usize> = leak.get(&id).cloned().unwrap_or_default();
            let before = leaked.len();
            // Direct: param name appears inside a sink region.
            for (region, _) in &sinks {
                for i in region.clone() {
                    if let Some(&pi) = params.get(toks[i].text.as_str()) {
                        if toks[i].kind == TokKind::Ident {
                            leaked.insert(pi);
                        }
                    }
                }
            }
            // Transitive: param passed bare into a leaking position.
            for call in cg.calls(id) {
                let callee_leak = leak.get(&call.callee).cloned().unwrap_or_default();
                if callee_leak.is_empty() {
                    continue;
                }
                let end = skip_group(toks, call.pos + 1);
                let args = split_args(toks, call.pos + 2..end.saturating_sub(1));
                let offset = usize::from(
                    ws.fn_def(call.callee).params.first().is_some_and(|p| p.name == "self"),
                );
                for (ai, arg) in args.iter().enumerate() {
                    if !callee_leak.contains(&(ai + offset)) {
                        continue;
                    }
                    for i in arg.clone() {
                        if let Some(&pi) = params.get(toks[i].text.as_str()) {
                            if toks[i].kind == TokKind::Ident {
                                leaked.insert(pi);
                            }
                        }
                    }
                }
            }
            if leaked.len() != before {
                changed = true;
            }
            leak.insert(id, leaked);
        }
        if !changed {
            break;
        }
    }

    // ---- Phase 2: findings per fn. ---------------------------------
    let mut findings = Vec::new();
    for &id in &ids {
        let f = ws.fn_def(id);
        let toks = ws.tokens(id);
        let positions = ws.effective_positions(id);
        let atoms = secret_atoms(ws, cg, id);
        let sinks = sink_regions(toks, &positions);

        // (a) Secret used inside a sink region.
        for (region, label) in &sinks {
            for i in region.clone() {
                if let Some(desc) = secret_use_at(toks, i, &atoms) {
                    findings.push(Finding {
                        pass: Pass::Taint,
                        id: String::new(),
                        file: ws.file(id).path.clone(),
                        line: toks[i].line,
                        func: f.qualified.clone(),
                        kind: "secret-to-sink".into(),
                        detail: format!("`{desc}` reaches {label}"),
                        path: Vec::new(),
                    });
                }
            }
        }

        // (b) Secret passed into a leaking parameter of a callee.
        for call in cg.calls(id) {
            let callee_leak = leak.get(&call.callee).cloned().unwrap_or_default();
            if callee_leak.is_empty() {
                continue;
            }
            let end = skip_group(toks, call.pos + 1);
            let args = split_args(toks, call.pos + 2..end.saturating_sub(1));
            let offset = usize::from(
                ws.fn_def(call.callee).params.first().is_some_and(|p| p.name == "self"),
            );
            for (ai, arg) in args.iter().enumerate() {
                if !callee_leak.contains(&(ai + offset)) {
                    continue;
                }
                for i in arg.clone() {
                    if let Some(desc) = secret_use_at(toks, i, &atoms) {
                        findings.push(Finding {
                            pass: Pass::Taint,
                            id: String::new(),
                            file: ws.file(id).path.clone(),
                            line: toks[i].line,
                            func: f.qualified.clone(),
                            kind: "secret-to-leaky-fn".into(),
                            detail: format!(
                                "`{desc}` passed to `{}` which leaks param {}",
                                ws.fn_def(call.callee).qualified,
                                ai + offset,
                            ),
                            path: vec![
                                f.qualified.clone(),
                                ws.fn_def(call.callee).qualified.clone(),
                            ],
                        });
                        break;
                    }
                }
            }
        }

        // (c) Variable-time comparison of secret material.
        for &i in &positions {
            if !(toks[i].is("==") || toks[i].is("!=")) {
                continue;
            }
            let lhs = i
                .checked_sub(1)
                .and_then(|p| secret_use_at(toks, last_chain_start(toks, p), &atoms));
            let rhs = toks
                .get(i + 1)
                .filter(|t| t.kind == TokKind::Ident)
                .and_then(|_| secret_use_at(toks, i + 1, &atoms));
            if let Some(desc) = lhs.or(rhs) {
                findings.push(Finding {
                    pass: Pass::Taint,
                    id: String::new(),
                    file: ws.file(id).path.clone(),
                    line: toks[i].line,
                    func: f.qualified.clone(),
                    kind: "secret-compare".into(),
                    detail: format!("`{desc}` compared with `{}` (use ct_eq)", toks[i].text),
                    path: Vec::new(),
                });
            }
        }
    }
    findings
}

/// Walks a `a.b.c` chain left from `end` to its first ident, so the
/// LHS of `share.x_i == y` is checked from `share`.
fn last_chain_start(toks: &[Token], end: usize) -> usize {
    let mut i = end;
    while i >= 2 && toks[i].kind == TokKind::Ident && toks[i - 1].is(".") {
        i -= 2;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, report, symbols};

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = symbols::build(vec![("crates/a/src/t.rs".into(), src.into())]);
        let cg = callgraph::build(&ws);
        let mut f = run(&ws, &cg);
        report::assign_ids(&mut f);
        f
    }

    #[test]
    fn secret_in_format_macro_is_flagged_but_public_field_is_not() {
        let f = run_on(
            "fn log_it(share: &KeyShare, id: u32) {\n\
             let a = format!(\"share {:?}\", share);\n\
             let b = format!(\"id {}\", share.id);\n\
             let c = format!(\"n {}\", id);\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "secret-to-sink");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn leak_through_helper_fn_is_interprocedural() {
        let f = run_on(
            "fn helper(tag: &str, v: &KeyShare) { println!(\"{} {:?}\", tag, v); }\n\
             fn outer(s: KeyShare) { helper(\"x\", &s); }\n",
        );
        // helper's direct sink + outer's pass into the leaking param.
        assert_eq!(f.len(), 2, "{f:#?}");
        assert!(f.iter().any(|x| x.kind == "secret-to-leaky-fn" && x.func == "t::outer"));
    }

    #[test]
    fn secret_field_comparison_is_flagged() {
        let f = run_on(
            "fn check(a: &DealtShare, b: &[u8]) -> bool { a.x_i == b }\n\
             fn fine(a: &DealtShare, b: &DealtShare) -> bool { a.id == b.id }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "secret-compare");
    }

    #[test]
    fn journal_record_detail_is_a_sink() {
        let f = run_on(
            "fn trace(j: &Journal, nonce: SigningNonce) {\n  j.record_detail(1, Kind::Error, nonce.clone());\n}\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert!(f[0].detail.contains("record_detail"));
    }

    #[test]
    fn let_binding_of_secret_returning_call_is_tracked() {
        let f = run_on(
            "fn mint() -> KeyShare { KeyShare }\n\
             fn show() { let share = mint(); println!(\"{:?}\", share); }\n",
        );
        assert!(f.iter().any(|x| x.func == "t::show" && x.kind == "secret-to-sink"), "{f:#?}");
    }
}
