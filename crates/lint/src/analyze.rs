//! Pipeline orchestration behind `theta-lint analyze`.
//!
//! Gating policy (mirrored in `scripts/analysis.sh`):
//!
//! - **taint** and **locks** findings hard-fail — a secret reaching a
//!   sink or a lock cycle is never acceptable debt;
//! - **blocking** and **panics** findings fail unless justified: an
//!   inline `// theta: allow(<pass>): reason` marker, a line in the
//!   panics allowlist (`crates/lint/panics.allow`), or — for
//!   first-day adoption of informational passes — the checked-in
//!   baseline (`crates/lint/analyze.baseline`, regenerated with
//!   `--write-baseline`).

use crate::report::{assign_ids, render_json, render_text, Finding, Pass};
use crate::{blocking, callgraph, locks, panics, symbols, taint};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::Path;

pub struct Analysis {
    /// Findings that survived inline `theta: allow` markers.
    pub findings: Vec<Finding>,
    /// Count suppressed by inline markers, per pass.
    pub inline_allowed: HashMap<&'static str, usize>,
}

/// Runs all four passes over in-memory sources. Pure — the fixture
/// tests and the CLI share this entry point.
pub fn run_passes(sources: Vec<(String, String)>) -> Analysis {
    let ws = symbols::build(sources);
    let cg = callgraph::build(&ws);
    let mut findings = Vec::new();
    findings.extend(taint::run(&ws, &cg));
    findings.extend(locks::run(&ws, &cg));
    findings.extend(blocking::run(&ws, &cg));
    findings.extend(panics::run(&ws, &cg));
    assign_ids(&mut findings);

    // Inline allows: `// theta: allow(<pass>): reason` suppresses that
    // pass's findings on its own line and the next (trailing comment
    // or the line above the flagged statement).
    let mut inline_allowed: HashMap<&'static str, usize> = HashMap::new();
    let files: HashMap<&str, &crate::parser::ParsedFile> =
        ws.files.iter().map(|f| (f.path.as_str(), f)).collect();
    let findings = findings
        .into_iter()
        .filter(|f| {
            let allowed = files.get(f.file.as_str()).is_some_and(|pf| {
                pf.allows.iter().any(|a| {
                    a.pass == f.pass.name()
                        && (f.line == a.line || f.line == a.line + 1)
                })
            });
            if allowed {
                *inline_allowed.entry(f.pass.name()).or_insert(0) += 1;
            }
            !allowed
        })
        .collect();
    Analysis { findings, inline_allowed }
}

/// An allowlist/baseline: stable finding IDs plus `path:` prefixes.
#[derive(Default)]
pub struct AllowSet {
    ids: HashSet<String>,
    prefixes: Vec<String>,
}

impl AllowSet {
    pub fn covers(&self, f: &Finding) -> bool {
        self.ids.contains(&f.id) || self.prefixes.iter().any(|p| f.file.starts_with(p))
    }

    pub fn insert_id(&mut self, id: String) {
        self.ids.insert(id);
    }
}

/// Parses an allowlist/baseline file. Each non-comment line is either a
/// stable finding ID (`TA-…`, first whitespace-separated token; the
/// rest of the line is the justification) or `path:<prefix>`, which
/// justifies every finding in files under that path prefix — the form
/// used for whole subsystems whose findings share one argument (e.g.
/// fixed-limb arithmetic kernels).
fn load_id_file(path: &Path) -> AllowSet {
    let mut set = AllowSet::default();
    let Ok(text) = std::fs::read_to_string(path) else {
        return set;
    };
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(tok) = line.split_whitespace().next() else { continue };
        if let Some(prefix) = tok.strip_prefix("path:") {
            set.prefixes.push(prefix.to_string());
        } else {
            set.ids.insert(tok.to_string());
        }
    }
    set
}

struct Gate {
    fail: bool,
    summary: String,
}

/// Applies the gating policy; returns pass/fail plus the one-line
/// summary used by CI job summaries.
fn gate(analysis: &Analysis, allow: &AllowSet, baseline: &AllowSet) -> Gate {
    let mut counts: HashMap<&str, (usize, usize)> = HashMap::new(); // (total, new)
    for f in &analysis.findings {
        let e = counts.entry(f.pass.name()).or_insert((0, 0));
        e.0 += 1;
        let justified = match f.pass {
            Pass::Taint | Pass::Locks => false,
            Pass::Panics => allow.covers(f) || baseline.covers(f),
            Pass::Blocking => baseline.covers(f),
        };
        if !justified {
            e.1 += 1;
        }
    }
    let mut summary = String::from("SUMMARY");
    let mut fail = false;
    for pass in ["taint", "locks", "blocking", "panics"] {
        let (total, new) = counts.get(pass).copied().unwrap_or((0, 0));
        let inline = analysis.inline_allowed.get(pass).copied().unwrap_or(0);
        let _ = write!(summary, " {pass}={total}(new={new},inline-allowed={inline})");
        if new > 0 {
            fail = true;
        }
    }
    Gate { fail, summary }
}

fn write_baseline(path: &Path, analysis: &Analysis, allow: &AllowSet) -> std::io::Result<()> {
    let mut out = String::from(
        "# theta-analyze baseline: blocking/panics findings accepted as pre-existing.\n\
         # Regenerate with `cargo run -p theta-lint -- analyze --write-baseline`.\n\
         # Prefer fixing or allowlisting (panics.allow / inline `theta: allow`) over\n\
         # baselining — this file should trend toward empty.\n",
    );
    for f in &analysis.findings {
        let informational = matches!(f.pass, Pass::Blocking | Pass::Panics);
        if informational && !allow.covers(f) {
            let _ = writeln!(out, "{} {}:{} {} {}", f.id, f.file, f.line, f.func, f.kind);
        }
    }
    std::fs::write(path, out)
}

/// CLI entry: `theta-lint analyze [--root DIR] [--format text|json]
/// [--write-baseline]`. Returns the process exit code.
pub fn main_analyze(args: &[String]) -> i32 {
    let mut root = String::from(".");
    let mut format = String::from("text");
    let mut write_base = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(v) => root = v.clone(),
                None => {
                    eprintln!("--root needs a value");
                    return 2;
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = "text".into(),
                Some("json") => format = "json".into(),
                _ => {
                    eprintln!("--format must be text or json");
                    return 2;
                }
            },
            "--write-baseline" => write_base = true,
            other => {
                eprintln!("unknown flag: {other}");
                return 2;
            }
        }
    }

    let root = Path::new(&root);
    let sources = symbols::load_workspace_sources(root);
    if sources.is_empty() {
        eprintln!("no sources found under {}/crates — wrong --root?", root.display());
        return 2;
    }
    let n_files = sources.len();
    let analysis = run_passes(sources);

    let allow = load_id_file(&root.join("crates/lint/panics.allow"));
    let baseline_path = root.join("crates/lint/analyze.baseline");
    if write_base {
        if let Err(e) = write_baseline(&baseline_path, &analysis, &allow) {
            eprintln!("failed to write baseline: {e}");
            return 2;
        }
        eprintln!("baseline written to {}", baseline_path.display());
    }
    let baseline = load_id_file(&baseline_path);
    let g = gate(&analysis, &allow, &baseline);

    // Findings that are justified are still *listed* (they are real
    // facts about the tree), but only unjustified ones gate.
    match format.as_str() {
        "json" => print!("{}", render_json(&analysis.findings)),
        _ => {
            print!("{}", render_text(&analysis.findings));
            eprintln!("analyzed {n_files} files");
        }
    }
    eprintln!("{}", g.summary);
    if g.fail {
        eprintln!("theta-analyze: FAIL — unjustified findings (fix, `theta: allow`, panics.allow, or baseline)");
        1
    } else {
        eprintln!("theta-analyze: ok");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, s: &str) -> (String, String) {
        (path.to_string(), s.to_string())
    }

    #[test]
    fn inline_allow_suppresses_only_its_pass_and_lines() {
        let a = run_passes(vec![src(
            "crates/a/src/m.rs",
            "// theta: event-loop\nfn run_loop() {\n\
             // theta: allow(blocking): startup backoff documented in DESIGN §7\n\
             std::thread::sleep(d);\n\
             std::thread::sleep(d);\n}\n",
        )]);
        // First sleep allowed (marker line + 1), second still reported.
        assert_eq!(a.findings.len(), 1, "{:#?}", a.findings);
        assert_eq!(a.inline_allowed.get("blocking"), Some(&1));
    }

    #[test]
    fn gate_hard_fails_taint_but_baselines_panics() {
        let a = run_passes(vec![src(
            "crates/a/src/m.rs",
            "// theta: entrypoint(network)\nfn on_frame(v: Option<u8>) { v.unwrap(); }\n",
        )]);
        assert_eq!(a.findings.len(), 1);
        let id = a.findings[0].id.clone();
        let empty = AllowSet::default();
        assert!(gate(&a, &empty, &empty).fail);
        let mut base = AllowSet::default();
        base.insert_id(id.clone());
        assert!(!gate(&a, &empty, &base).fail, "baselined panic must not gate");
        let mut allow = AllowSet::default();
        allow.insert_id(id);
        assert!(!gate(&a, &allow, &empty).fail, "allowlisted panic must not gate");
    }

    #[test]
    fn path_prefix_allow_covers_a_whole_subsystem() {
        let a = run_passes(vec![src(
            "crates/math/src/kernels.rs",
            "// theta: entrypoint(network)\nfn mul(v: Option<u8>) { v.unwrap(); }\n",
        )]);
        assert_eq!(a.findings.len(), 1);
        let mut allow = AllowSet::default();
        allow.prefixes.push("crates/math/".into());
        let empty = AllowSet::default();
        assert!(!gate(&a, &allow, &empty).fail, "path: prefix must justify");
        assert!(gate(&a, &empty, &empty).fail);
    }

    #[test]
    fn taint_findings_ignore_baseline() {
        let a = run_passes(vec![src(
            "crates/a/src/m.rs",
            "fn leak(s: &KeyShare) { println!(\"{:?}\", s); }\n",
        )]);
        assert_eq!(a.findings.len(), 1);
        let mut base = AllowSet::default();
        base.insert_id(a.findings[0].id.clone());
        assert!(gate(&a, &base, &base).fail, "taint is never baselined");
    }
}
