//! Lock-order analysis over `theta_sync::Mutex` acquisitions.
//!
//! Lock *classes* are name-based: the receiver ident of `.lock()`
//! (`self.inner.lock()` → class `inner`). That unifies the same
//! conceptual lock across files — exactly right for guards handed
//! around by field name — at the cost of aliasing unrelated locks that
//! share a field name; in this workspace field names are distinctive.
//!
//! Per function we track the set of guards held at every point
//! (let-bound guards live to the end of their block or an explicit
//! `drop(guard)`; temporaries die at the statement's `;`), emitting an
//! order edge `held → acquired` for each nested acquisition, plus
//! edges `held → a` for every lock `a` transitively acquired by a
//! callee invoked while `held` is live. Cycles in the merged
//! acquisition-order graph are potential deadlocks; an edge `c → c` is
//! a same-class re-entrant lock (self-deadlock with std mutexes).
//!
//! `try_lock()` never blocks and is deliberately not an acquisition
//! *edge source requirement* — it still produces a held guard (holding
//! it while taking another lock orders them), but acquiring via
//! `try_lock` under other guards cannot deadlock and emits no edge.

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::report::{Finding, Pass};
use crate::symbols::{FnId, Workspace};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

#[derive(Debug, Clone)]
struct Guard {
    class: String,
    var: Option<String>,
    depth: i32,
    temp: bool,
}

#[derive(Debug, Clone)]
pub struct EdgeSite {
    pub file: String,
    pub line: usize,
    pub func: String,
    pub via: Option<String>,
}

/// Facts extracted from one function body.
struct FnLocks {
    /// Classes this fn acquires directly (blocking `lock()` only).
    acquires: HashSet<String>,
    /// Direct nesting edges `(held, acquired, line)`.
    edges: Vec<(String, String, usize)>,
    /// `(callee, held classes, line)` per resolved call site.
    calls_held: Vec<(FnId, Vec<String>, usize)>,
}

fn extract(ws: &Workspace, cg: &CallGraph, id: FnId) -> FnLocks {
    let toks = ws.tokens(id);
    let positions = ws.effective_positions(id);
    let call_at: HashMap<usize, Vec<FnId>> = {
        let mut m: HashMap<usize, Vec<FnId>> = HashMap::new();
        for c in cg.calls(id) {
            m.entry(c.pos).or_default().push(c.callee);
        }
        m
    };

    let mut held: Vec<Guard> = Vec::new();
    let mut out = FnLocks { acquires: HashSet::new(), edges: Vec::new(), calls_held: Vec::new() };
    let mut depth = 0i32;
    for &i in &positions {
        let t = &toks[i];
        match t.text.as_str() {
            "{" if t.kind == TokKind::Punct => depth += 1,
            "}" if t.kind == TokKind::Punct => {
                depth -= 1;
                // Let-bound guards die when their block closes;
                // statement temporaries (if-let / match scrutinees)
                // also die when the block they fed closes — Rust drops
                // the scrutinee temporary at the end of the `if let`,
                // not at the next `;`.
                held.retain(|g| g.depth <= depth && !(g.temp && g.depth == depth));
            }
            ";" if t.kind == TokKind::Punct => {
                held.retain(|g| !(g.temp && g.depth == depth));
            }
            "drop"
                if t.kind == TokKind::Ident
                    && toks.get(i + 1).is_some_and(|n| n.is("(")) =>
            {
                if let Some(name) =
                    toks.get(i + 2).filter(|n| n.kind == TokKind::Ident)
                {
                    held.retain(|g| g.var.as_deref() != Some(name.text.as_str()));
                }
            }
            "lock" | "try_lock"
                if t.kind == TokKind::Ident
                    && i > 0
                    && toks[i - 1].is(".")
                    && toks.get(i + 1).is_some_and(|n| n.is("(")) =>
            {
                let blocking = t.text == "lock";
                let class = i
                    .checked_sub(2)
                    .map(|p| &toks[p])
                    .filter(|p| p.kind == TokKind::Ident)
                    .map(|p| p.text.clone())
                    .unwrap_or_else(|| "<expr>".into());
                // `self.lock()` is a per-type wrapper (e.g. the metrics
                // registry's) — a bare `self` class would alias every
                // such wrapper across the workspace, so qualify it.
                let class = if class == "self" {
                    match &ws.fn_def(id).impl_type {
                        Some(ty) => format!("{ty}::self"),
                        None => class,
                    }
                } else {
                    class
                };
                if blocking {
                    out.acquires.insert(class.clone());
                    for g in &held {
                        out.edges.push((g.class.clone(), class.clone(), t.line));
                    }
                }
                // Guard binding: `let [mut] name = <...>.lock()...`.
                // An `if let`/`while let` scrutinee is NOT a block
                // binding — Rust drops that temporary when the `if
                // let` statement ends, so treat it like a temporary
                // (released by the `}` rule above).
                let mut var = None;
                let mut j = i;
                while j > 0 && j > i.saturating_sub(16) {
                    j -= 1;
                    if toks[j].is(";") || toks[j].is("{") || toks[j].is("}") {
                        break;
                    }
                    if toks[j].is_ident("let") {
                        let scrutinee = j > 0
                            && (toks[j - 1].is_ident("if") || toks[j - 1].is_ident("while"));
                        if !scrutinee {
                            var = toks[j + 1..i]
                                .iter()
                                .find(|t| t.kind == TokKind::Ident && !t.is_ident("mut"))
                                .map(|t| t.text.clone());
                        }
                        break;
                    }
                }
                let temp = var.is_none();
                held.push(Guard { class, var, depth, temp });
            }
            _ => {}
        }
        if let Some(callees) = call_at.get(&i) {
            if !held.is_empty() {
                let classes: Vec<String> = held.iter().map(|g| g.class.clone()).collect();
                for &callee in callees {
                    out.calls_held.push((callee, classes.clone(), t.line));
                }
            }
        }
    }
    out
}

/// Runs the pass: compose per-fn facts over the call graph, detect
/// cycles in the acquisition-order graph.
pub fn run(ws: &Workspace, cg: &CallGraph) -> Vec<Finding> {
    let ids: Vec<FnId> = ws.all_fns().filter(|&id| !ws.fn_def(id).in_test).collect();
    let facts: HashMap<FnId, FnLocks> =
        ids.iter().map(|&id| (id, extract(ws, cg, id))).collect();

    // Transitive acquires fixpoint (blocking acquisitions only).
    let mut trans: HashMap<FnId, HashSet<String>> =
        ids.iter().map(|&id| (id, facts[&id].acquires.clone())).collect();
    loop {
        let mut changed = false;
        for &id in &ids {
            let mut acc = trans[&id].clone();
            let before = acc.len();
            for call in cg.calls(id) {
                if let Some(t) = trans.get(&call.callee) {
                    acc.extend(t.iter().cloned());
                }
            }
            if acc.len() != before {
                changed = true;
            }
            trans.insert(id, acc);
        }
        if !changed {
            break;
        }
    }

    // Merge edges: (from, to) → exemplar site. BTreeMap keeps output
    // deterministic.
    let mut graph: BTreeMap<String, BTreeMap<String, EdgeSite>> = BTreeMap::new();
    let mut findings = Vec::new();
    for &id in &ids {
        let f = &facts[&id];
        let file = ws.file(id).path.clone();
        let func = ws.fn_def(id).qualified.clone();
        for (from, to, line) in &f.edges {
            if from == to {
                findings.push(Finding {
                    pass: Pass::Locks,
                    id: String::new(),
                    file: file.clone(),
                    line: *line,
                    func: func.clone(),
                    kind: "double-lock".into(),
                    detail: format!("lock class `{from}` re-acquired while already held"),
                    path: Vec::new(),
                });
                continue;
            }
            graph.entry(from.clone()).or_default().entry(to.clone()).or_insert(EdgeSite {
                file: file.clone(),
                line: *line,
                func: func.clone(),
                via: None,
            });
        }
        for (callee, held, line) in &f.calls_held {
            let callee_def = ws.fn_def(*callee);
            for h in held {
                for a in trans.get(callee).into_iter().flatten() {
                    if h == a {
                        findings.push(Finding {
                            pass: Pass::Locks,
                            id: String::new(),
                            file: file.clone(),
                            line: *line,
                            func: func.clone(),
                            kind: "double-lock".into(),
                            detail: format!(
                                "lock class `{h}` held across call to `{}` which re-acquires it",
                                callee_def.qualified
                            ),
                            path: vec![func.clone(), callee_def.qualified.clone()],
                        });
                        continue;
                    }
                    graph.entry(h.clone()).or_default().entry(a.clone()).or_insert(
                        EdgeSite {
                            file: file.clone(),
                            line: *line,
                            func: func.clone(),
                            via: Some(callee_def.qualified.clone()),
                        },
                    );
                }
            }
        }
    }

    // Cycle detection: for each edge a→b, BFS b→…→a. Report each
    // cycle once, keyed by its sorted class set.
    let mut reported: HashSet<Vec<String>> = HashSet::new();
    for (a, outs) in &graph {
        for b in outs.keys() {
            if let Some(cycle_path) = bfs_path(&graph, b, a) {
                // a→b then b→…→a.
                let mut cycle = vec![a.clone()];
                cycle.extend(cycle_path);
                let mut key: Vec<String> = cycle.clone();
                key.sort();
                key.dedup();
                if !reported.insert(key) {
                    continue;
                }
                let site = &graph[a][b];
                let mut detail =
                    format!("acquisition cycle: {}", cycle.join(" -> "));
                if let Some(via) = &site.via {
                    detail.push_str(&format!(" (first edge via call to `{via}`)"));
                }
                findings.push(Finding {
                    pass: Pass::Locks,
                    id: String::new(),
                    file: site.file.clone(),
                    line: site.line,
                    func: site.func.clone(),
                    kind: "lock-cycle".into(),
                    detail,
                    path: cycle,
                });
            }
        }
    }
    findings
}

fn bfs_path(
    graph: &BTreeMap<String, BTreeMap<String, EdgeSite>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut parent: HashMap<String, String> = HashMap::new();
    let mut queue = VecDeque::new();
    parent.insert(from.to_string(), from.to_string());
    queue.push_back(from.to_string());
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            let mut path = vec![cur.clone()];
            let mut c = cur;
            while parent[&c] != c {
                c = parent[&c].clone();
                path.push(c.clone());
            }
            path.reverse();
            return Some(path);
        }
        for next in graph.get(&cur).map(|m| m.keys()).into_iter().flatten() {
            if !parent.contains_key(next) {
                parent.insert(next.clone(), cur.clone());
                queue.push_back(next.clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{callgraph, report, symbols};

    fn run_on(src: &str) -> Vec<Finding> {
        let ws = symbols::build(vec![("crates/a/src/l.rs".into(), src.into())]);
        let cg = callgraph::build(&ws);
        let mut f = run(&ws, &cg);
        report::assign_ids(&mut f);
        f
    }

    #[test]
    fn ab_ba_cycle_is_reported_once() {
        let f = run_on(
            "fn one(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.beta.lock().unwrap(); }\n\
             fn two(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); }\n",
        );
        let cycles: Vec<_> = f.iter().filter(|x| x.kind == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "{f:#?}");
        assert!(cycles[0].detail.contains("alpha") && cycles[0].detail.contains("beta"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let f = run_on(
            "fn one(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.beta.lock().unwrap(); }\n\
             fn two(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.beta.lock().unwrap(); }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn drop_releases_the_guard() {
        let f = run_on(
            "fn one(s: &S) { let a = s.alpha.lock().unwrap(); drop(a); let b = s.beta.lock().unwrap(); }\n\
             fn two(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let f = run_on(
            "fn one(s: &S) { s.alpha.lock().unwrap().push(1); let b = s.beta.lock().unwrap(); }\n\
             fn two(s: &S) { let b = s.beta.lock().unwrap(); s.alpha.lock().unwrap().push(2); }\n",
        );
        // one's alpha guard is gone before beta: only the b→a edge in
        // `two` exists, no cycle.
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn interprocedural_cycle_via_callee_is_found() {
        let f = run_on(
            "fn take_beta(s: &S) { let b = s.beta.lock().unwrap(); }\n\
             fn one(s: &S) { let a = s.alpha.lock().unwrap(); take_beta(s); }\n\
             fn two(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); }\n",
        );
        let cycles: Vec<_> = f.iter().filter(|x| x.kind == "lock-cycle").collect();
        assert_eq!(cycles.len(), 1, "{f:#?}");
        assert!(cycles[0].detail.contains("via call to"), "{f:#?}");
    }

    #[test]
    fn if_let_scrutinee_guard_dies_with_the_if_let_block() {
        let f = run_on(
            "fn takes_beta(s: &S) { let b = s.beta.lock().unwrap(); }\n\
             fn one(s: &S) {\n\
             if let Some(v) = s.alpha.lock().as_ref() { v.inc(); }\n\
             takes_beta(s);\n}\n\
             fn two(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn guard_held_through_match_arms_makes_edges() {
        let f = run_on(
            "fn takes_beta(s: &S) { let b = s.beta.lock().unwrap(); }\n\
             fn one(s: &S) { match s.alpha.lock().get() { Some(_) => takes_beta(s), None => {} } }\n\
             fn two(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); }\n",
        );
        // The match scrutinee guard IS held during the arms (Rust drops
        // it after the match), so alpha→beta exists and two's beta→alpha
        // closes the cycle.
        assert_eq!(f.iter().filter(|x| x.kind == "lock-cycle").count(), 1, "{f:#?}");
    }

    #[test]
    fn double_lock_same_class_is_flagged() {
        let f = run_on(
            "fn one(s: &S) { let a = s.alpha.lock().unwrap(); let b = s.alpha.lock().unwrap(); }\n",
        );
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].kind, "double-lock");
    }

    #[test]
    fn scoped_guard_released_at_block_end() {
        let f = run_on(
            "fn one(s: &S) { { let a = s.alpha.lock().unwrap(); } let b = s.beta.lock().unwrap(); }\n\
             fn two(s: &S) { let b = s.beta.lock().unwrap(); let a = s.alpha.lock().unwrap(); }\n",
        );
        assert!(f.is_empty(), "{f:#?}");
    }
}
