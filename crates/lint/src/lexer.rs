//! Shared lexing substrate for `theta-lint` and `theta-analyze`.
//!
//! Two consumers, one set of literal/comment rules:
//!
//! - [`strip_comments`] — the secret-hygiene scanner's preprocessor:
//!   replaces comments with spaces (preserving newlines and literals)
//!   so prose mentioning `Debug` or `==` never reaches the rules.
//! - [`tokenize`] — the analyzer's front-end: a flat token stream with
//!   line numbers, where `// theta: ...` marker comments survive as
//!   [`TokKind::Marker`] tokens (every other comment is dropped).
//!
//! Both go through the same literal scanner, so the raw-string fix
//! (`r#"..."#` used to be lexed as an ordinary `"` string: its `\` was
//! treated as an escape and its closing `"#` was missed, swallowing
//! everything up to the next quote — including real code) applies to
//! the hygiene lint and the analyzer alike.

/// Token classes the analyzer cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Punctuation / operator (multi-char ops are one token: `::`,
    /// `->`, `=>`, `==`, `!=`, `<=`, `>=`, `..`, `&&`, `||`).
    Punct,
    /// String literal (ordinary, byte, or raw). `text` is the literal
    /// *content* (delimiters stripped) so sink scans can look inside.
    Str,
    /// Char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`).
    Lifetime,
    /// A `// theta: ...` marker comment; `text` is what follows the
    /// `theta:` prefix, trimmed.
    Marker,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }
}

/// Scans a raw-string body starting at `i`, where `bytes[i]` is `r` (an
/// optional leading `b` is handled by the caller). Returns
/// `Some((content_start, content_end, after))` — the content byte range
/// and the index just past the closing delimiter — or `None` when this
/// is not actually a raw string head.
fn scan_raw_string(bytes: &[u8], i: usize) -> Option<(usize, usize, usize)> {
    debug_assert_eq!(bytes[i], b'r');
    let mut j = i + 1;
    let mut hashes = 0usize;
    while j < bytes.len() && bytes[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= bytes.len() || bytes[j] != b'"' {
        return None;
    }
    let content_start = j + 1;
    // The literal ends at the first `"` followed by `hashes` `#`s —
    // backslashes are NOT escapes inside a raw string.
    let mut k = content_start;
    while k < bytes.len() {
        if bytes[k] == b'"' && bytes[k + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
        {
            return Some((content_start, k, k + 1 + hashes));
        }
        k += 1;
    }
    // Unterminated: treat the rest of the file as the literal.
    Some((content_start, bytes.len(), bytes.len()))
}

/// Scans an ordinary (escaped) string body; `bytes[i]` is the opening
/// `"`. Returns `(content_start, content_end, after)`.
fn scan_plain_string(bytes: &[u8], i: usize) -> (usize, usize, usize) {
    let start = i + 1;
    let mut k = start;
    while k < bytes.len() {
        match bytes[k] {
            b'\\' => k = (k + 2).min(bytes.len()),
            b'"' => return (start, k, k + 1),
            _ => k += 1,
        }
    }
    (start, bytes.len(), bytes.len())
}

/// True when the byte before `i` cannot end an identifier — i.e. an
/// `r`/`b` at `i` starts a literal prefix rather than ending a name
/// like `var` or `ptr`.
fn is_prefix_position(bytes: &[u8], i: usize) -> bool {
    i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Detects a raw/byte string literal head at `i`. Returns
/// `(content_start, content_end, after)` when `i` starts `r"`, `r#"`,
/// `b"`, `br"`, or `br#"` (with any hash count).
fn scan_string_literal(bytes: &[u8], i: usize) -> Option<(usize, usize, usize)> {
    match bytes[i] {
        b'"' => Some(scan_plain_string(bytes, i)),
        b'r' if is_prefix_position(bytes, i) => scan_raw_string(bytes, i),
        b'b' if is_prefix_position(bytes, i) => match bytes.get(i + 1) {
            Some(b'"') => Some(scan_plain_string(bytes, i + 1)),
            Some(b'r') => scan_raw_string(bytes, i + 1),
            _ => None,
        },
        _ => None,
    }
}

/// Replaces `//` and (nested) `/* */` comments with spaces, preserving
/// newlines, string/char literals — including raw strings — so prose
/// mentioning `Debug` or `==` never reaches the hygiene rules.
pub fn strip_comments(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if let Some((_, _, after)) = scan_string_literal(bytes, i) {
            // Copy the whole literal verbatim (delimiters included),
            // newlines and all — raw strings may span lines.
            out.extend_from_slice(&bytes[i..after]);
            i = after;
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out.extend([b' ', b' ']);
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal (`'a'`, `'\n'`) vs lifetime (`'a`): a
                // lifetime is not followed by a closing quote.
                if bytes.get(i + 1) == Some(&b'\\') {
                    out.extend_from_slice(&bytes[i..(i + 4).min(bytes.len())]);
                    i = (i + 4).min(bytes.len());
                } else if bytes.get(i + 2) == Some(&b'\'') {
                    out.extend_from_slice(&bytes[i..i + 3]);
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Literals are copied verbatim and everything else is ASCII-safe
    // substitution, so the output is valid UTF-8 by construction.
    String::from_utf8(out).expect("comment stripping preserves UTF-8")
}

/// Two-character operators lexed as single tokens. Order matters only
/// within this list (first match wins); three-char ops the analyzer
/// never inspects (`..=`, `<<=`) fall out as two tokens harmlessly.
const TWO_CHAR_OPS: &[&str] =
    &["::", "->", "=>", "==", "!=", "<=", ">=", "..", "&&", "||"];

/// Tokenizes Rust source. Comments are dropped except `// theta: ...`
/// markers, which become [`TokKind::Marker`] tokens carrying the text
/// after the prefix. Unknown bytes are skipped.
pub fn tokenize(src: &str) -> Vec<Token> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if let Some((cs, ce, after)) = scan_string_literal(bytes, i) {
            let content = String::from_utf8_lossy(&bytes[cs..ce]).into_owned();
            line += bytes[i..after].iter().filter(|&&b| b == b'\n').count();
            out.push(Token { kind: TokKind::Str, text: content, line });
            i = after;
            continue;
        }
        if c == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let end = bytes[i..]
                .iter()
                .position(|&b| b == b'\n')
                .map(|p| i + p)
                .unwrap_or(bytes.len());
            let text = String::from_utf8_lossy(&bytes[i + 2..end]);
            let trimmed = text.trim_start_matches(['/', '!']).trim();
            if let Some(marker) = trimmed.strip_prefix("theta:") {
                out.push(Token {
                    kind: TokKind::Marker,
                    text: marker.trim().to_string(),
                    line,
                });
            }
            i = end;
            continue;
        }
        if c == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            continue;
        }
        if c == b'\'' {
            // Char literal vs lifetime, same rule as strip_comments.
            if bytes.get(i + 1) == Some(&b'\\') {
                out.push(Token { kind: TokKind::Char, text: String::new(), line });
                i = (i + 4).min(bytes.len());
                continue;
            }
            if bytes.get(i + 2) == Some(&b'\'') {
                out.push(Token { kind: TokKind::Char, text: String::new(), line });
                i += 3;
                continue;
            }
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            out.push(Token {
                kind: TokKind::Lifetime,
                text: String::from_utf8_lossy(&bytes[i + 1..j]).into_owned(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut j = i;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            out.push(Token {
                kind: TokKind::Ident,
                text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                line,
            });
            i = j;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len()
                && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_' || bytes[j] == b'.')
            {
                // `2..10` — the range dots belong to the operator, not
                // the number.
                if bytes[j] == b'.' && bytes.get(j + 1) == Some(&b'.') {
                    break;
                }
                j += 1;
            }
            out.push(Token {
                kind: TokKind::Num,
                text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
                line,
            });
            i = j;
            continue;
        }
        // Multi-byte (non-ASCII) characters: skip without splitting the
        // UTF-8 sequence.
        if c >= 0x80 {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] & 0xC0) == 0x80 {
                j += 1;
            }
            i = j;
            continue;
        }
        let two = if i + 1 < bytes.len() {
            std::str::from_utf8(&bytes[i..i + 2]).ok()
        } else {
            None
        };
        if let Some(op) = two.and_then(|t| TWO_CHAR_OPS.iter().find(|&&o| o == t)) {
            out.push(Token { kind: TokKind::Punct, text: (*op).to_string(), line });
            i += 2;
            continue;
        }
        out.push(Token {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_strings_are_copied_verbatim_not_escaped() {
        // The old scanner treated the `\` in `r#"\"#` as an escape and
        // ran past the real closing `"#`, swallowing the code after it.
        let src = "let re = r#\"a \\ \" b\"#; let x = Debug;\n";
        let stripped = strip_comments(src);
        assert_eq!(stripped, src, "raw string must survive untouched");
        // The identifier after the literal is still visible to scanners.
        assert!(stripped.contains("Debug"));
    }

    #[test]
    fn raw_string_with_comment_lookalike_is_not_a_comment() {
        let src = "let s = r\"// not a comment\"; keep\n";
        let stripped = strip_comments(src);
        assert!(stripped.contains("// not a comment"));
        assert!(stripped.contains("keep"));
    }

    #[test]
    fn unbalanced_quote_inside_raw_string_does_not_derail() {
        // One interior quote: the old lexer closed the string there and
        // then treated real code as string content.
        let src = "let s = r#\"quote \" inside\"#;\nstruct KeyShare { x_i: u8 }\n";
        let stripped = strip_comments(src);
        assert!(stripped.contains("struct KeyShare"), "{stripped}");
        let toks = tokenize(src);
        assert!(toks.iter().any(|t| t.is_ident("KeyShare")));
        assert!(
            toks.iter().any(|t| t.kind == TokKind::Str && t.text == "quote \" inside"),
            "raw string content should be one Str token"
        );
    }

    #[test]
    fn byte_and_byte_raw_strings_lex() {
        let toks = tokenize("let a = b\"ab\\\"c\"; let b2 = br#\"x\"y\"#;");
        let strs: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, ["ab\\\"c", "x\"y"]);
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let src = "let var = 1; for x in iter { }\n";
        assert_eq!(strip_comments(src), src);
        let toks = tokenize(src);
        assert!(toks.iter().any(|t| t.is_ident("iter")));
    }

    #[test]
    fn markers_survive_ordinary_comments_do_not() {
        let src = "// plain comment\n// theta: event-loop\nfn run() {}\n";
        let toks = tokenize(src);
        let markers: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Marker)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(markers, ["event-loop"]);
        assert!(!toks.iter().any(|t| t.is_ident("plain")));
    }

    #[test]
    fn two_char_ops_lex_as_one_token() {
        let toks = tokenize("a::b != c -> d == e..f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, ["::", "!=", "->", "==", ".."]);
    }

    #[test]
    fn lines_are_tracked_across_multiline_raw_strings() {
        let toks = tokenize("let s = r#\"a\nb\nc\"#;\nfn after() {}\n");
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 4);
    }
}
