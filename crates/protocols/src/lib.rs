//! # theta-protocols
//!
//! The paper's *protocols module*: the **Threshold Round Interface (TRI)**
//! that every threshold protocol implements (§3.5), plus the concrete
//! protocol state machines for all six schemes.
//!
//! The TRI models a protocol as a round-based state machine:
//!
//! - [`ThresholdRoundProtocol::do_round`] — local computation at the
//!   start of a round, emitting messages tagged with their transport
//!   ([`Transport::P2p`] or [`Transport::Tob`]);
//! - [`ThresholdRoundProtocol::update`] — absorb one network message;
//! - [`ThresholdRoundProtocol::is_ready_for_next_round`] /
//!   [`ThresholdRoundProtocol::is_ready_to_finalize`] — progression and
//!   termination conditions;
//! - [`ThresholdRoundProtocol::finalize`] — assemble the result.
//!
//! Five schemes are non-interactive (one round, `O(n)` messages); KG20 /
//! FROST is the two-round, `O(n²)` member of the suite and exercised the
//! multi-round features of this interface (as in the paper, §3.5).

pub mod driver;
pub mod kg20_protocol;
pub mod one_round;

pub use driver::{Advance, ProtocolDriver};

use theta_codec::{Decode, Encode, Reader, Writer};
use theta_schemes::{PartyId, SchemeError};

/// How a protocol message must be transported (paper §3.5: each message
/// indicates P2P or total-order broadcast).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Direct delivery to every other party.
    P2p,
    /// Total-order broadcast: all parties see the same sequence.
    Tob,
}

impl Encode for Transport {
    fn encode(&self, w: &mut Writer) {
        (match self {
            Transport::P2p => 0u8,
            Transport::Tob => 1u8,
        })
        .encode(w);
    }
}

impl Decode for Transport {
    fn decode(r: &mut Reader) -> theta_codec::Result<Self> {
        match u8::decode(r)? {
            0 => Ok(Transport::P2p),
            1 => Ok(Transport::Tob),
            other => Err(theta_codec::CodecError::InvalidTag(other as u32)),
        }
    }
}

/// A message produced by [`ThresholdRoundProtocol::do_round`], not yet
/// wrapped in a network envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutboundMessage {
    /// Requested transport.
    pub transport: Transport,
    /// Protocol round that produced this message.
    pub round: u16,
    /// Opaque scheme-specific payload.
    pub payload: Vec<u8>,
}

/// A message received from the network, addressed to one protocol
/// instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InboundMessage {
    /// The sending party.
    pub sender: PartyId,
    /// Protocol round the sender produced it in.
    pub round: u16,
    /// Opaque scheme-specific payload.
    pub payload: Vec<u8>,
}

/// Everything [`ThresholdRoundProtocol::do_round`] hands back to the
/// orchestration layer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoundOutput {
    /// Messages to forward to the other parties.
    pub messages: Vec<OutboundMessage>,
}

/// The final result of a protocol instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolOutput {
    /// A decrypted plaintext (SG02, BZ03).
    Plaintext(Vec<u8>),
    /// An encoded signature (SH00, BLS04, KG20).
    Signature(Vec<u8>),
    /// A 32-byte coin value (CKS05).
    Coin([u8; 32]),
}

impl ProtocolOutput {
    /// The raw bytes of the output, whatever its kind.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            ProtocolOutput::Plaintext(b) | ProtocolOutput::Signature(b) => b,
            ProtocolOutput::Coin(c) => c,
        }
    }
}

/// Verification-work statistics a protocol instance accumulates over
/// its lifetime, so the orchestration layer can fold them into the
/// node's metrics when the instance finishes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Batched verifications that cleared a whole pending set in one
    /// check (one MSM / pairing-product).
    pub batch_verify_ok: u64,
    /// Shares pruned by the bisection fallback after a batch failed.
    pub shares_pruned: u64,
    /// Per-share eager verifications performed.
    pub eager_verifies: u64,
    /// Shares verified by a *cross-instance* batch settle (pool-scoped
    /// batching, PR 7) instead of an instance-local check.
    pub cross_batched: u64,
}

/// The Threshold Round Interface (paper §3.5).
///
/// Implementations are single-party state machines: each node runs its
/// own instance and the orchestration layer shuttles messages between
/// them.
pub trait ThresholdRoundProtocol: Send {
    /// Performs this round's local computation and returns the messages
    /// to send. Called once at protocol start and again whenever
    /// [`Self::is_ready_for_next_round`] becomes true.
    ///
    /// # Errors
    ///
    /// Scheme-level failures (e.g. an invalid ciphertext) abort the
    /// instance.
    fn do_round(&mut self, rng: &mut dyn rand::RngCore) -> Result<RoundOutput, SchemeError>;

    /// Records a message received from the network.
    ///
    /// # Errors
    ///
    /// An error marks the *message* as invalid (e.g. a share failing
    /// verification) — the instance remains live and later messages are
    /// still accepted (robust schemes discard the share; KG20 will abort
    /// at finalization instead, since its signing set is fixed).
    fn update(&mut self, message: &InboundMessage) -> Result<(), SchemeError>;

    /// True when the progression condition for the next round holds.
    fn is_ready_for_next_round(&self) -> bool;

    /// True when the termination condition holds.
    fn is_ready_to_finalize(&self) -> bool;

    /// Assembles and returns the final result.
    ///
    /// # Errors
    ///
    /// Fails when called before [`Self::is_ready_to_finalize`] or when
    /// assembly fails.
    fn finalize(&mut self) -> Result<ProtocolOutput, SchemeError>;

    /// The round the protocol is currently in (0 before the first
    /// `do_round`).
    fn current_round(&self) -> u16;

    /// The party running this instance.
    fn party(&self) -> PartyId;

    /// Verification-work statistics accumulated so far. Protocols that
    /// do no share verification keep the default zeros.
    fn stats(&self) -> ProtocolStats {
        ProtocolStats::default()
    }

    /// Drains the share-validity checks this protocol has deferred for
    /// *cross-instance* batch verification (pool-scoped batching).
    ///
    /// Protocols that verify inline — the default — never defer, so the
    /// default returns an empty vector. A protocol that does defer hands
    /// back `(party, check)` pairs and counts on a later
    /// [`Self::resolve_checks`] call with the verdicts; until then the
    /// corresponding shares do not count toward its quorum.
    fn take_pending_checks(&mut self) -> Vec<(PartyId, theta_schemes::batch::PendingCheck)> {
        Vec::new()
    }

    /// Applies the verdicts of a cross-instance batch settle to
    /// previously deferred checks: `true` marks the party's share
    /// verified, `false` prunes it (the share was invalid). Verdicts for
    /// parties whose shares are no longer held are ignored.
    fn resolve_checks(&mut self, verdicts: &[(PartyId, bool)]) {
        let _ = verdicts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_codec() {
        assert_eq!(Transport::decoded(&Transport::P2p.encoded()).unwrap(), Transport::P2p);
        assert_eq!(Transport::decoded(&Transport::Tob.encoded()).unwrap(), Transport::Tob);
        assert!(Transport::decoded(&[7]).is_err());
    }

    #[test]
    fn output_bytes() {
        assert_eq!(ProtocolOutput::Plaintext(vec![1, 2]).as_bytes(), &[1, 2]);
        assert_eq!(ProtocolOutput::Signature(vec![3]).as_bytes(), &[3]);
        assert_eq!(ProtocolOutput::Coin([7; 32]).as_bytes(), &[7u8; 32][..]);
    }
}
