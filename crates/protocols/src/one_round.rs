//! Generic TRI implementation for the five non-interactive schemes.
//!
//! A non-interactive threshold protocol has exactly the three-algorithm
//! shape from the paper's §2.2 — create a share, verify a share, combine
//! a quorum — so one state machine serves SG02, BZ03, SH00, BLS04 and
//! CKS05 through the [`OneRoundScheme`] adapter trait.

use crate::{
    InboundMessage, OutboundMessage, ProtocolOutput, ProtocolStats, RoundOutput,
    ThresholdRoundProtocol, Transport,
};
use std::collections::BTreeMap;
use theta_schemes::batch::PendingCheck;
use theta_schemes::{bls04, bz03, cks05, sg02, sh00, PartyId, SchemeError};

/// Adapter trait: everything a non-interactive scheme needs to expose to
/// run under the generic one-round TRI state machine.
pub trait OneRoundScheme: Send {
    /// The per-party share type.
    type Share: Clone + Send;

    /// This node's party id.
    fn party(&self) -> PartyId;

    /// Shares needed to finalize (`t + 1`).
    fn quorum(&self) -> usize;

    /// Computes this node's share.
    ///
    /// # Errors
    ///
    /// Scheme-level failures (invalid ciphertext, ...) abort the instance.
    fn create_share(&self, rng: &mut dyn rand::RngCore) -> Result<Self::Share, SchemeError>;

    /// Verifies a received share; invalid shares are discarded.
    fn verify_share(&self, share: &Self::Share) -> bool;

    /// Verifies a batch of shares at once, returning the first invalid
    /// party on failure. The default checks serially; schemes with a
    /// batched verifier (one MSM / one pairing-product for the whole
    /// batch) override this.
    ///
    /// # Errors
    ///
    /// [`SchemeError::InvalidShare`] naming the first invalid share.
    fn verify_shares_batch(&self, shares: &[Self::Share]) -> Result<(), SchemeError> {
        for share in shares {
            if !self.verify_share(share) {
                return Err(SchemeError::InvalidShare {
                    party: Self::share_party(share).value(),
                });
            }
        }
        Ok(())
    }

    /// The party a share claims to come from.
    fn share_party(share: &Self::Share) -> PartyId;

    /// Serializes a share for the wire.
    fn encode_share(share: &Self::Share) -> Vec<u8>;

    /// Parses a share from the wire.
    ///
    /// # Errors
    ///
    /// [`SchemeError::Malformed`] on undecodable bytes.
    fn decode_share(&self, bytes: &[u8]) -> Result<Self::Share, SchemeError>;

    /// Combines a quorum of verified shares into the final output.
    ///
    /// # Errors
    ///
    /// Propagates scheme combination failures.
    fn combine(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError>;

    /// Captures a received share's validity check as a detached
    /// [`PendingCheck`] for cross-instance batching. Schemes without a
    /// batchable check (SH00's RSA proofs) return `None` and fall back
    /// to eager inline verification in pooled mode.
    fn pending_check(&self, share: &Self::Share) -> Option<PendingCheck> {
        let _ = share;
        None
    }

    /// Combines a quorum of shares that were **already individually
    /// verified** (by the cross-instance batch settle), skipping the
    /// per-combine re-verification. Default falls back to [`Self::combine`].
    ///
    /// # Errors
    ///
    /// Propagates scheme combination failures.
    fn combine_preverified(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        self.combine(shares)
    }
}

/// How a [`OneRoundProtocol`] verifies incoming shares.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Mode {
    /// Verify each share inline on arrival.
    Eager,
    /// Store shares unchecked; batch-verify the instance's pending set
    /// once a quorum of candidates accumulates.
    Lazy,
    /// Defer each share's check to the pool-scoped cross-instance batch
    /// aggregator; shares count toward quorum only once their verdict
    /// arrives via [`ThresholdRoundProtocol::resolve_checks`].
    Pooled,
}

/// TRI state machine for any [`OneRoundScheme`].
pub struct OneRoundProtocol<S: OneRoundScheme> {
    scheme: S,
    round: u16,
    shares: BTreeMap<PartyId, S::Share>,
    verified: std::collections::BTreeSet<PartyId>,
    mode: Mode,
    outbox: Vec<(PartyId, PendingCheck)>,
    finished: bool,
    stats: ProtocolStats,
}

impl<S: OneRoundScheme> OneRoundProtocol<S> {
    /// Wraps a scheme adapter into a fresh protocol instance that
    /// verifies each share eagerly on arrival.
    pub fn new(scheme: S) -> Self {
        OneRoundProtocol {
            scheme,
            round: 0,
            shares: BTreeMap::new(),
            verified: std::collections::BTreeSet::new(),
            mode: Mode::Eager,
            outbox: Vec::new(),
            finished: false,
            stats: ProtocolStats::default(),
        }
    }

    /// Wraps a scheme adapter with *lazy batched verification*: incoming
    /// shares are stored unchecked until a quorum accumulates, then all
    /// pending shares are verified in one batch (one MSM or one
    /// pairing-product for the whole set). Invalid shares are pruned so
    /// the instance keeps waiting for honest ones — semantics match the
    /// eager mode, with per-quorum instead of per-share verification
    /// cost.
    pub fn new_lazy(scheme: S) -> Self {
        let mut p = Self::new(scheme);
        p.mode = Mode::Lazy;
        p
    }

    /// Wraps a scheme adapter with *pool-scoped batched verification*:
    /// each incoming share's validity check is detached as a
    /// [`PendingCheck`] (drained via
    /// [`ThresholdRoundProtocol::take_pending_checks`]) so the
    /// orchestration layer can settle checks from *many concurrent
    /// instances* in one combined equation. Shares count toward quorum
    /// once their verdict arrives through
    /// [`ThresholdRoundProtocol::resolve_checks`]; by then every quorum
    /// share is individually verified, so finalization combines with
    /// [`OneRoundScheme::combine_preverified`] — only the Lagrange MSM
    /// (and any final output check) remains on the critical combine path,
    /// overlapping verification with share arrival instead of paying for
    /// it at quorum settle.
    pub fn new_pooled(scheme: S) -> Self {
        let mut p = Self::new(scheme);
        p.mode = Mode::Pooled;
        p
    }

    /// Number of shares currently held (in lazy mode this may include
    /// not-yet-verified shares below quorum).
    pub fn share_count(&self) -> usize {
        self.shares.len()
    }

    /// Batch-verifies all pending shares, removing any that fail.
    /// Returns the parties whose shares were pruned.
    fn settle_pending(&mut self) -> Result<Vec<PartyId>, SchemeError> {
        let mut pruned = Vec::new();
        loop {
            let pending: Vec<(PartyId, S::Share)> = self
                .shares
                .iter()
                .filter(|(id, _)| !self.verified.contains(id))
                .map(|(id, s)| (*id, s.clone()))
                .collect();
            if pending.is_empty() {
                return Ok(pruned);
            }
            let batch: Vec<S::Share> = pending.iter().map(|(_, s)| s.clone()).collect();
            match self.scheme.verify_shares_batch(&batch) {
                Ok(()) => {
                    self.stats.batch_verify_ok += 1;
                    self.verified.extend(pending.iter().map(|(id, _)| *id));
                    return Ok(pruned);
                }
                Err(SchemeError::InvalidShare { party }) => {
                    let id = PartyId(party);
                    self.shares.remove(&id);
                    self.stats.shares_pruned += 1;
                    pruned.push(id);
                    // Loop: re-batch the remainder (bisection already
                    // localized this failure; others may still be bad).
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl<S: OneRoundScheme> ThresholdRoundProtocol for OneRoundProtocol<S> {
    fn do_round(&mut self, rng: &mut dyn rand::RngCore) -> Result<RoundOutput, SchemeError> {
        if self.round > 0 {
            return Err(SchemeError::InvalidParameters(
                "one-round protocol has no further rounds".into(),
            ));
        }
        self.round = 1;
        let share = self.scheme.create_share(rng)?;
        let payload = S::encode_share(&share);
        let me = self.scheme.party();
        self.shares.insert(me, share);
        // Own shares are trusted (we just created them).
        self.verified.insert(me);
        Ok(RoundOutput {
            messages: vec![OutboundMessage { transport: Transport::P2p, round: 1, payload }],
        })
    }

    fn update(&mut self, message: &InboundMessage) -> Result<(), SchemeError> {
        let share = self.scheme.decode_share(&message.payload)?;
        let claimed = S::share_party(&share);
        if claimed != message.sender {
            return Err(SchemeError::InvalidShare { party: message.sender.value() });
        }
        match self.mode {
            Mode::Eager => {
                self.stats.eager_verifies += 1;
                if !self.scheme.verify_share(&share) {
                    return Err(SchemeError::InvalidShare { party: claimed.value() });
                }
                self.shares.insert(claimed, share);
                self.verified.insert(claimed);
                Ok(())
            }
            Mode::Lazy => {
                // Store unchecked; once a quorum of candidates exists,
                // settle all pending shares with one batched verification
                // and prune the invalid ones.
                self.shares.insert(claimed, share);
                if self.shares.len() >= self.scheme.quorum() {
                    let pruned = self.settle_pending()?;
                    if pruned.contains(&claimed) {
                        return Err(SchemeError::InvalidShare { party: claimed.value() });
                    }
                }
                Ok(())
            }
            Mode::Pooled => {
                if self.verified.contains(&claimed) {
                    // Already settled for this party (e.g. P2P re-delivery).
                    return Ok(());
                }
                if let Some(existing) = self.shares.get(&claimed) {
                    // A verdict for this party is still outstanding. A
                    // re-delivery of the *same* share re-enqueues its
                    // check (self-healing if the earlier verdict was
                    // dropped), but a *different* share is rejected:
                    // only one share version per party may be in flight,
                    // so verdicts are never ambiguous about which share
                    // they refer to.
                    if S::encode_share(existing) != message.payload {
                        return Err(SchemeError::InvalidShare { party: claimed.value() });
                    }
                }
                match self.scheme.pending_check(&share) {
                    Some(check) => {
                        self.shares.insert(claimed, share);
                        self.outbox.push((claimed, check));
                        Ok(())
                    }
                    None => {
                        // No batchable check for this scheme: verify
                        // inline, as in eager mode.
                        self.stats.eager_verifies += 1;
                        if !self.scheme.verify_share(&share) {
                            return Err(SchemeError::InvalidShare { party: claimed.value() });
                        }
                        self.shares.insert(claimed, share);
                        self.verified.insert(claimed);
                        Ok(())
                    }
                }
            }
        }
    }

    fn is_ready_for_next_round(&self) -> bool {
        // Non-interactive: the only transition is into finalization.
        false
    }

    fn is_ready_to_finalize(&self) -> bool {
        if self.finished || self.round != 1 {
            return false;
        }
        match self.mode {
            // Pooled: only settled (verified) shares count — unsettled
            // shares may yet be pruned by their batch verdict.
            Mode::Pooled => self.verified.len() >= self.scheme.quorum(),
            _ => self.shares.len() >= self.scheme.quorum(),
        }
    }

    fn finalize(&mut self) -> Result<ProtocolOutput, SchemeError> {
        if !self.is_ready_to_finalize() {
            let have = match self.mode {
                Mode::Pooled => self.verified.len(),
                _ => self.shares.len(),
            };
            return Err(SchemeError::NotEnoughShares { have, need: self.scheme.quorum() });
        }
        let out = match self.mode {
            Mode::Pooled => {
                // Every verified share passed its cross-instance batch
                // check individually, so combine skips re-verification:
                // the pipelined-combine payoff — at quorum only the
                // Lagrange MSM (and any final output check) remains.
                let shares: Vec<S::Share> = self
                    .shares
                    .iter()
                    .filter(|(id, _)| self.verified.contains(id))
                    .map(|(_, s)| s.clone())
                    .collect();
                self.scheme.combine_preverified(&shares)?
            }
            _ => {
                let shares: Vec<S::Share> = self.shares.values().cloned().collect();
                self.scheme.combine(&shares)?
            }
        };
        self.finished = true;
        Ok(out)
    }

    fn current_round(&self) -> u16 {
        self.round
    }

    fn party(&self) -> PartyId {
        self.scheme.party()
    }

    fn stats(&self) -> ProtocolStats {
        self.stats
    }

    fn take_pending_checks(&mut self) -> Vec<(PartyId, PendingCheck)> {
        std::mem::take(&mut self.outbox)
    }

    fn resolve_checks(&mut self, verdicts: &[(PartyId, bool)]) {
        for (party, ok) in verdicts {
            // The share may have been pruned (or never stored) since the
            // check was enqueued; such verdicts are stale — ignore them.
            if !self.shares.contains_key(party) {
                continue;
            }
            if *ok {
                if self.verified.insert(*party) {
                    self.stats.cross_batched += 1;
                }
            } else {
                self.shares.remove(party);
                self.verified.remove(party);
                self.stats.shares_pruned += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Scheme adapters
// ---------------------------------------------------------------------

/// SG02 threshold decryption as a one-round protocol.
pub struct Sg02Decrypt {
    key: sg02::KeyShare,
    ciphertext: sg02::Ciphertext,
}

impl Sg02Decrypt {
    /// Creates the adapter for this node's key share and the ciphertext
    /// being decrypted.
    pub fn new(key: sg02::KeyShare, ciphertext: sg02::Ciphertext) -> Self {
        Sg02Decrypt { key, ciphertext }
    }
}

impl OneRoundScheme for Sg02Decrypt {
    type Share = sg02::DecryptionShare;

    fn party(&self) -> PartyId {
        self.key.id()
    }

    fn quorum(&self) -> usize {
        self.key.public().params().quorum() as usize
    }

    fn create_share(&self, rng: &mut dyn rand::RngCore) -> Result<Self::Share, SchemeError> {
        sg02::create_decryption_share(&self.key, &self.ciphertext, rng)
    }

    fn verify_share(&self, share: &Self::Share) -> bool {
        sg02::verify_decryption_share(self.key.public(), &self.ciphertext, share)
    }

    fn verify_shares_batch(&self, shares: &[Self::Share]) -> Result<(), SchemeError> {
        sg02::verify_decryption_shares_batch(self.key.public(), &self.ciphertext, shares)
    }

    fn share_party(share: &Self::Share) -> PartyId {
        share.id()
    }

    fn encode_share(share: &Self::Share) -> Vec<u8> {
        theta_codec::Encode::encoded(share)
    }

    fn decode_share(&self, bytes: &[u8]) -> Result<Self::Share, SchemeError> {
        theta_codec::Decode::decoded(bytes).map_err(|e| SchemeError::Malformed(e.to_string()))
    }

    fn combine(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        sg02::combine(self.key.public(), &self.ciphertext, shares).map(ProtocolOutput::Plaintext)
    }

    fn pending_check(&self, share: &Self::Share) -> Option<PendingCheck> {
        Some(sg02::pending_check(self.key.public(), &self.ciphertext, share))
    }

    fn combine_preverified(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        sg02::combine_preverified(self.key.public(), &self.ciphertext, shares)
            .map(ProtocolOutput::Plaintext)
    }
}

/// BZ03 threshold decryption as a one-round protocol.
pub struct Bz03Decrypt {
    key: bz03::KeyShare,
    ciphertext: bz03::Ciphertext,
}

impl Bz03Decrypt {
    /// Creates the adapter.
    pub fn new(key: bz03::KeyShare, ciphertext: bz03::Ciphertext) -> Self {
        Bz03Decrypt { key, ciphertext }
    }
}

impl OneRoundScheme for Bz03Decrypt {
    type Share = bz03::DecryptionShare;

    fn party(&self) -> PartyId {
        self.key.id()
    }

    fn quorum(&self) -> usize {
        self.key.public().params().quorum() as usize
    }

    fn create_share(&self, _rng: &mut dyn rand::RngCore) -> Result<Self::Share, SchemeError> {
        bz03::create_decryption_share(&self.key, &self.ciphertext)
    }

    fn verify_share(&self, share: &Self::Share) -> bool {
        bz03::verify_decryption_share(self.key.public(), &self.ciphertext, share)
    }

    fn verify_shares_batch(&self, shares: &[Self::Share]) -> Result<(), SchemeError> {
        bz03::verify_decryption_shares_batch(self.key.public(), &self.ciphertext, shares)
    }

    fn share_party(share: &Self::Share) -> PartyId {
        share.id()
    }

    fn encode_share(share: &Self::Share) -> Vec<u8> {
        theta_codec::Encode::encoded(share)
    }

    fn decode_share(&self, bytes: &[u8]) -> Result<Self::Share, SchemeError> {
        theta_codec::Decode::decoded(bytes).map_err(|e| SchemeError::Malformed(e.to_string()))
    }

    fn combine(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        bz03::combine(self.key.public(), &self.ciphertext, shares).map(ProtocolOutput::Plaintext)
    }

    fn pending_check(&self, share: &Self::Share) -> Option<PendingCheck> {
        Some(bz03::pending_check(self.key.public(), &self.ciphertext, share))
    }

    fn combine_preverified(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        bz03::combine_preverified(self.key.public(), &self.ciphertext, shares)
            .map(ProtocolOutput::Plaintext)
    }
}

/// SH00 threshold signing as a one-round protocol.
pub struct Sh00Sign {
    key: sh00::KeyShare,
    message: Vec<u8>,
}

impl Sh00Sign {
    /// Creates the adapter for signing `message`.
    pub fn new(key: sh00::KeyShare, message: Vec<u8>) -> Self {
        Sh00Sign { key, message }
    }
}

impl OneRoundScheme for Sh00Sign {
    type Share = sh00::SignatureShare;

    fn party(&self) -> PartyId {
        self.key.id()
    }

    fn quorum(&self) -> usize {
        self.key.public().params().quorum() as usize
    }

    fn create_share(&self, rng: &mut dyn rand::RngCore) -> Result<Self::Share, SchemeError> {
        Ok(sh00::sign_share(&self.key, &self.message, rng))
    }

    fn verify_share(&self, share: &Self::Share) -> bool {
        sh00::verify_share(self.key.public(), &self.message, share)
    }

    fn verify_shares_batch(&self, shares: &[Self::Share]) -> Result<(), SchemeError> {
        sh00::verify_shares_batch(self.key.public(), &self.message, shares)
    }

    fn share_party(share: &Self::Share) -> PartyId {
        share.id()
    }

    fn encode_share(share: &Self::Share) -> Vec<u8> {
        theta_codec::Encode::encoded(share)
    }

    fn decode_share(&self, bytes: &[u8]) -> Result<Self::Share, SchemeError> {
        theta_codec::Decode::decoded(bytes).map_err(|e| SchemeError::Malformed(e.to_string()))
    }

    fn combine(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        sh00::combine(self.key.public(), &self.message, shares)
            .map(|sig| ProtocolOutput::Signature(theta_codec::Encode::encoded(&sig)))
    }
}

/// BLS04 threshold signing as a one-round protocol.
pub struct Bls04Sign {
    key: bls04::KeyShare,
    message: Vec<u8>,
    /// Message hash, computed once on first use: every detached pending
    /// check shares the same `H(m)` point.
    hashed: std::cell::OnceCell<Option<theta_math::bn254::G1>>,
}

impl Bls04Sign {
    /// Creates the adapter for signing `message`.
    pub fn new(key: bls04::KeyShare, message: Vec<u8>) -> Self {
        Bls04Sign { key, message, hashed: std::cell::OnceCell::new() }
    }
}

impl OneRoundScheme for Bls04Sign {
    type Share = bls04::SignatureShare;

    fn party(&self) -> PartyId {
        self.key.id()
    }

    fn quorum(&self) -> usize {
        self.key.public().params().quorum() as usize
    }

    fn create_share(&self, _rng: &mut dyn rand::RngCore) -> Result<Self::Share, SchemeError> {
        bls04::sign_share(&self.key, &self.message)
    }

    fn verify_share(&self, share: &Self::Share) -> bool {
        bls04::verify_share(self.key.public(), &self.message, share)
    }

    fn verify_shares_batch(&self, shares: &[Self::Share]) -> Result<(), SchemeError> {
        bls04::verify_shares_batch(self.key.public(), &self.message, shares)
    }

    fn share_party(share: &Self::Share) -> PartyId {
        share.id()
    }

    fn encode_share(share: &Self::Share) -> Vec<u8> {
        theta_codec::Encode::encoded(share)
    }

    fn decode_share(&self, bytes: &[u8]) -> Result<Self::Share, SchemeError> {
        theta_codec::Decode::decoded(bytes).map_err(|e| SchemeError::Malformed(e.to_string()))
    }

    fn combine(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        bls04::combine(self.key.public(), &self.message, shares)
            .map(|sig| ProtocolOutput::Signature(theta_codec::Encode::encoded(&sig)))
    }

    fn pending_check(&self, share: &Self::Share) -> Option<PendingCheck> {
        match self.hashed.get_or_init(|| bls04::hash_message(&self.message).ok()) {
            Some(h) => Some(bls04::pending_check_with_hash(self.key.public(), h, share)),
            // Hashing the message failed: no valid statement exists, so
            // every share of this instance is unverifiable.
            None => Some(PendingCheck::Invalid),
        }
    }

    fn combine_preverified(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        bls04::combine_preverified(self.key.public(), &self.message, shares)
            .map(|sig| ProtocolOutput::Signature(theta_codec::Encode::encoded(&sig)))
    }
}

/// CKS05 coin flipping as a one-round protocol.
pub struct Cks05Coin {
    key: cks05::KeyShare,
    name: Vec<u8>,
}

impl Cks05Coin {
    /// Creates the adapter for the coin called `name`.
    pub fn new(key: cks05::KeyShare, name: Vec<u8>) -> Self {
        Cks05Coin { key, name }
    }
}

impl OneRoundScheme for Cks05Coin {
    type Share = cks05::CoinShare;

    fn party(&self) -> PartyId {
        self.key.id()
    }

    fn quorum(&self) -> usize {
        self.key.public().params().quorum() as usize
    }

    fn create_share(&self, rng: &mut dyn rand::RngCore) -> Result<Self::Share, SchemeError> {
        Ok(cks05::create_coin_share(&self.key, &self.name, rng))
    }

    fn verify_share(&self, share: &Self::Share) -> bool {
        cks05::verify_coin_share(self.key.public(), &self.name, share)
    }

    fn verify_shares_batch(&self, shares: &[Self::Share]) -> Result<(), SchemeError> {
        cks05::verify_coin_shares_batch(self.key.public(), &self.name, shares)
    }

    fn share_party(share: &Self::Share) -> PartyId {
        share.id()
    }

    fn encode_share(share: &Self::Share) -> Vec<u8> {
        theta_codec::Encode::encoded(share)
    }

    fn decode_share(&self, bytes: &[u8]) -> Result<Self::Share, SchemeError> {
        theta_codec::Decode::decoded(bytes).map_err(|e| SchemeError::Malformed(e.to_string()))
    }

    fn combine(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        cks05::combine(self.key.public(), &self.name, shares).map(ProtocolOutput::Coin)
    }

    fn pending_check(&self, share: &Self::Share) -> Option<PendingCheck> {
        Some(cks05::pending_check(self.key.public(), &self.name, share))
    }

    fn combine_preverified(&self, shares: &[Self::Share]) -> Result<ProtocolOutput, SchemeError> {
        cks05::combine_preverified(self.key.public(), &self.name, shares).map(ProtocolOutput::Coin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use theta_schemes::ThresholdParams;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x0c0)
    }

    /// Runs a set of one-round TRI instances to completion by exchanging
    /// their messages all-to-all; returns each node's output.
    fn run_all<S: OneRoundScheme>(
        mut protocols: Vec<OneRoundProtocol<S>>,
        r: &mut rand::rngs::StdRng,
    ) -> Vec<ProtocolOutput> {
        let mut outboxes = Vec::new();
        for p in protocols.iter_mut() {
            let out = p.do_round(r).unwrap();
            outboxes.push((p.party(), out));
        }
        for (sender, out) in &outboxes {
            for msg in &out.messages {
                assert_eq!(msg.transport, Transport::P2p);
                for p in protocols.iter_mut() {
                    if p.party() != *sender {
                        p.update(&InboundMessage {
                            sender: *sender,
                            round: msg.round,
                            payload: msg.payload.clone(),
                        })
                        .unwrap();
                    }
                }
            }
        }
        protocols
            .iter_mut()
            .map(|p| {
                assert!(p.is_ready_to_finalize());
                p.finalize().unwrap()
            })
            .collect()
    }

    #[test]
    fn sg02_protocol_all_nodes_agree() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"label", b"tri plaintext", &mut r);
        let protos: Vec<_> = keys
            .into_iter()
            .map(|k| OneRoundProtocol::new(Sg02Decrypt::new(k, ct.clone())))
            .collect();
        let outputs = run_all(protos, &mut r);
        for out in outputs {
            assert_eq!(out, ProtocolOutput::Plaintext(b"tri plaintext".to_vec()));
        }
    }

    #[test]
    fn bls04_protocol_all_nodes_agree() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = theta_schemes::bls04::keygen(params, &mut r);
        let protos: Vec<_> = keys
            .into_iter()
            .map(|k| OneRoundProtocol::new(Bls04Sign::new(k, b"msg".to_vec())))
            .collect();
        let outputs = run_all(protos, &mut r);
        let first = outputs[0].clone();
        for out in &outputs {
            assert_eq!(*out, first);
        }
        if let ProtocolOutput::Signature(bytes) = first {
            let sig = <theta_schemes::bls04::Signature as theta_codec::Decode>::decoded(&bytes)
                .unwrap();
            assert!(theta_schemes::bls04::verify(&pk, b"msg", &sig));
        } else {
            panic!("expected signature output");
        }
    }

    #[test]
    fn cks05_protocol_coin_agreement() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (_pk, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let protos: Vec<_> = keys
            .into_iter()
            .map(|k| OneRoundProtocol::new(Cks05Coin::new(k, b"epoch-9".to_vec())))
            .collect();
        let outputs = run_all(protos, &mut r);
        let first = outputs[0].clone();
        for out in outputs {
            assert_eq!(out, first);
        }
    }

    #[test]
    fn finalizes_at_exact_quorum_without_all_messages() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let mut me = OneRoundProtocol::new(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        assert!(!me.is_ready_to_finalize()); // 1 of 3
        // Receive shares from parties 2 and 3 only.
        for k in &keys[1..3] {
            let share = theta_schemes::sg02::create_decryption_share(k, &ct, &mut r).unwrap();
            me.update(&InboundMessage {
                sender: k.id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&share),
            })
            .unwrap();
        }
        assert!(me.is_ready_to_finalize());
        assert_eq!(me.finalize().unwrap(), ProtocolOutput::Plaintext(b"m".to_vec()));
    }

    #[test]
    fn invalid_share_rejected_but_instance_survives() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let mut me = OneRoundProtocol::new(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        // Garbage payload.
        assert!(me
            .update(&InboundMessage { sender: PartyId(2), round: 1, payload: vec![1, 2, 3] })
            .is_err());
        // Mis-attributed (valid share from 3 claimed as from 2).
        let share3 = theta_schemes::sg02::create_decryption_share(&keys[2], &ct, &mut r).unwrap();
        assert!(me
            .update(&InboundMessage {
                sender: PartyId(2),
                round: 1,
                payload: theta_codec::Encode::encoded(&share3),
            })
            .is_err());
        assert_eq!(me.share_count(), 1);
        // The honest share still lands and completes the instance.
        me.update(&InboundMessage {
            sender: PartyId(3),
            round: 1,
            payload: theta_codec::Encode::encoded(&share3),
        })
        .unwrap();
        assert!(me.is_ready_to_finalize());
        assert_eq!(me.finalize().unwrap(), ProtocolOutput::Plaintext(b"m".to_vec()));
    }

    #[test]
    fn lazy_mode_agrees_with_eager() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"label", b"lazy batch", &mut r);
        let protos: Vec<_> = keys
            .into_iter()
            .map(|k| OneRoundProtocol::new_lazy(Sg02Decrypt::new(k, ct.clone())))
            .collect();
        let outputs = run_all(protos, &mut r);
        for out in outputs {
            assert_eq!(out, ProtocolOutput::Plaintext(b"lazy batch".to_vec()));
        }
    }

    #[test]
    fn lazy_mode_prunes_bad_share_at_quorum_and_recovers() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let mut me = OneRoundProtocol::new_lazy(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        // A forged share: a valid share from party 2 for a *different*
        // ciphertext decodes fine but fails verification.
        let other_ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let forged =
            theta_schemes::sg02::create_decryption_share(&keys[1], &other_ct, &mut r).unwrap();
        // Below quorum, the forged share is stored unverified.
        me.update(&InboundMessage {
            sender: keys[1].id(),
            round: 1,
            payload: theta_codec::Encode::encoded(&forged),
        })
        .unwrap();
        assert_eq!(me.share_count(), 2);
        assert!(!me.is_ready_to_finalize());
        // The third share triggers batch settlement: the forged share is
        // pruned (reported against party 2), count drops below quorum.
        let honest =
            theta_schemes::sg02::create_decryption_share(&keys[2], &ct, &mut r).unwrap();
        me.update(&InboundMessage {
            sender: keys[2].id(),
            round: 1,
            payload: theta_codec::Encode::encoded(&honest),
        })
        .unwrap();
        assert_eq!(me.share_count(), 2);
        assert!(!me.is_ready_to_finalize());
        // One more honest share completes the quorum.
        let honest2 =
            theta_schemes::sg02::create_decryption_share(&keys[3], &ct, &mut r).unwrap();
        me.update(&InboundMessage {
            sender: keys[3].id(),
            round: 1,
            payload: theta_codec::Encode::encoded(&honest2),
        })
        .unwrap();
        assert!(me.is_ready_to_finalize());
        assert_eq!(me.finalize().unwrap(), ProtocolOutput::Plaintext(b"m".to_vec()));
    }

    #[test]
    fn lazy_mode_rejects_bad_share_arriving_at_quorum() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let mut me = OneRoundProtocol::new_lazy(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        let other_ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let forged =
            theta_schemes::sg02::create_decryption_share(&keys[1], &other_ct, &mut r).unwrap();
        // Quorum is 2, so this arrival triggers settlement immediately and
        // the error names the sender.
        assert!(matches!(
            me.update(&InboundMessage {
                sender: keys[1].id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&forged),
            }),
            Err(SchemeError::InvalidShare { party: 2 })
        ));
        assert!(!me.is_ready_to_finalize());
    }

    #[test]
    fn stats_track_batch_and_prune_outcomes() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let mut me = OneRoundProtocol::new_lazy(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        let other_ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let forged =
            theta_schemes::sg02::create_decryption_share(&keys[1], &other_ct, &mut r).unwrap();
        me.update(&InboundMessage {
            sender: keys[1].id(),
            round: 1,
            payload: theta_codec::Encode::encoded(&forged),
        })
        .unwrap();
        for k in &keys[2..4] {
            let share = theta_schemes::sg02::create_decryption_share(k, &ct, &mut r).unwrap();
            let _ = me.update(&InboundMessage {
                sender: k.id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&share),
            });
        }
        let stats = me.stats();
        assert_eq!(stats.shares_pruned, 1, "the forged share must be pruned");
        assert!(stats.batch_verify_ok >= 1, "the honest remainder batch-verifies");
        assert_eq!(stats.eager_verifies, 0, "lazy mode never verifies eagerly");

        // Eager mode counts per-share checks instead.
        let mut eager = OneRoundProtocol::new(Sg02Decrypt::new(keys[4].clone(), ct.clone()));
        let _ = eager.do_round(&mut r).unwrap();
        let share = theta_schemes::sg02::create_decryption_share(&keys[5], &ct, &mut r).unwrap();
        eager
            .update(&InboundMessage {
                sender: keys[5].id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&share),
            })
            .unwrap();
        let stats = eager.stats();
        assert_eq!(stats.eager_verifies, 1);
        assert_eq!(stats.batch_verify_ok, 0);
    }

    /// Drives a pooled instance the way the orchestration layer does:
    /// deliver, drain the outbox, settle the checks, feed verdicts back.
    fn settle_outbox<S: OneRoundScheme>(p: &mut OneRoundProtocol<S>) -> usize {
        let pending = p.take_pending_checks();
        let checks: Vec<&theta_schemes::batch::PendingCheck> =
            pending.iter().map(|(_, c)| c).collect();
        let verdicts = theta_schemes::batch::settle_mixed(&checks);
        let resolved: Vec<(PartyId, bool)> = pending
            .iter()
            .zip(verdicts.iter())
            .map(|((id, _), ok)| (*id, *ok))
            .collect();
        p.resolve_checks(&resolved);
        resolved.len()
    }

    #[test]
    fn pooled_mode_agrees_with_eager_for_every_batchable_scheme() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();

        // SG02 decryption.
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"label", b"pooled", &mut r);
        let mut me = OneRoundProtocol::new_pooled(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        for k in &keys[1..3] {
            let share = theta_schemes::sg02::create_decryption_share(k, &ct, &mut r).unwrap();
            me.update(&InboundMessage {
                sender: k.id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&share),
            })
            .unwrap();
        }
        // Shares are held but unverified: quorum only counts verdicts.
        assert_eq!(me.share_count(), 3);
        assert!(!me.is_ready_to_finalize());
        assert_eq!(settle_outbox(&mut me), 2);
        assert!(me.is_ready_to_finalize());
        assert_eq!(me.finalize().unwrap(), ProtocolOutput::Plaintext(b"pooled".to_vec()));
        assert_eq!(me.stats().cross_batched, 2);
        assert_eq!(me.stats().eager_verifies, 0);

        // BLS04 signing (pairing checks ride the same outbox).
        let (bpk, bkeys) = theta_schemes::bls04::keygen(params, &mut r);
        let mut me = OneRoundProtocol::new_pooled(Bls04Sign::new(bkeys[0].clone(), b"m".to_vec()));
        let _ = me.do_round(&mut r).unwrap();
        for k in &bkeys[1..3] {
            let share = theta_schemes::bls04::sign_share(k, b"m").unwrap();
            me.update(&InboundMessage {
                sender: k.id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&share),
            })
            .unwrap();
        }
        assert!(!me.is_ready_to_finalize());
        settle_outbox(&mut me);
        assert!(me.is_ready_to_finalize());
        let out = me.finalize().unwrap();
        if let ProtocolOutput::Signature(bytes) = out {
            let sig =
                <theta_schemes::bls04::Signature as theta_codec::Decode>::decoded(&bytes).unwrap();
            assert!(theta_schemes::bls04::verify(&bpk, b"m", &sig));
        } else {
            panic!("expected signature output");
        }

        // CKS05 coin: pooled agrees with an eager run of the same coin.
        let (_cpk, ckeys) = theta_schemes::cks05::keygen(params, &mut r);
        let mut pooled =
            OneRoundProtocol::new_pooled(Cks05Coin::new(ckeys[0].clone(), b"c".to_vec()));
        let mut eager = OneRoundProtocol::new(Cks05Coin::new(ckeys[1].clone(), b"c".to_vec()));
        let _ = pooled.do_round(&mut r).unwrap();
        let _ = eager.do_round(&mut r).unwrap();
        for k in &ckeys[2..4] {
            let share = theta_schemes::cks05::create_coin_share(k, b"c", &mut r);
            let payload = theta_codec::Encode::encoded(&share);
            pooled
                .update(&InboundMessage { sender: k.id(), round: 1, payload: payload.clone() })
                .unwrap();
            eager.update(&InboundMessage { sender: k.id(), round: 1, payload }).unwrap();
        }
        settle_outbox(&mut pooled);
        assert_eq!(pooled.finalize().unwrap(), eager.finalize().unwrap());
    }

    #[test]
    fn pooled_mode_prunes_bad_share_on_false_verdict() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let mut me = OneRoundProtocol::new_pooled(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        let other_ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let forged =
            theta_schemes::sg02::create_decryption_share(&keys[1], &other_ct, &mut r).unwrap();
        me.update(&InboundMessage {
            sender: keys[1].id(),
            round: 1,
            payload: theta_codec::Encode::encoded(&forged),
        })
        .unwrap();
        let honest = theta_schemes::sg02::create_decryption_share(&keys[2], &ct, &mut r).unwrap();
        me.update(&InboundMessage {
            sender: keys[2].id(),
            round: 1,
            payload: theta_codec::Encode::encoded(&honest),
        })
        .unwrap();
        settle_outbox(&mut me);
        // The forged share was pruned by its verdict; the honest one
        // verified. 2 of 3 needed.
        assert_eq!(me.share_count(), 2);
        assert!(!me.is_ready_to_finalize());
        assert_eq!(me.stats().shares_pruned, 1);
        assert_eq!(me.stats().cross_batched, 1);
        // A replacement honest share from the pruned party is accepted
        // (its verdict slot is free again) and completes the quorum.
        let honest1 = theta_schemes::sg02::create_decryption_share(&keys[1], &ct, &mut r).unwrap();
        me.update(&InboundMessage {
            sender: keys[1].id(),
            round: 1,
            payload: theta_codec::Encode::encoded(&honest1),
        })
        .unwrap();
        settle_outbox(&mut me);
        assert!(me.is_ready_to_finalize());
        assert_eq!(me.finalize().unwrap(), ProtocolOutput::Plaintext(b"m".to_vec()));
    }

    #[test]
    fn pooled_mode_rejects_conflicting_share_while_verdict_outstanding() {
        let mut r = rng();
        let params = ThresholdParams::new(2, 7).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"m", &mut r);
        let mut me = OneRoundProtocol::new_pooled(Sg02Decrypt::new(keys[0].clone(), ct.clone()));
        let _ = me.do_round(&mut r).unwrap();
        let share = theta_schemes::sg02::create_decryption_share(&keys[1], &ct, &mut r).unwrap();
        let payload = theta_codec::Encode::encoded(&share);
        me.update(&InboundMessage { sender: keys[1].id(), round: 1, payload: payload.clone() })
            .unwrap();
        // A *different* share from the same party while its verdict is
        // outstanding: rejected (one share version in flight per party).
        let share2 = theta_schemes::sg02::create_decryption_share(&keys[1], &ct, &mut r).unwrap();
        assert!(matches!(
            me.update(&InboundMessage {
                sender: keys[1].id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&share2),
            }),
            Err(SchemeError::InvalidShare { party: 2 })
        ));
        // An identical re-delivery re-enqueues the check (self-healing
        // for a dropped verdict)...
        me.update(&InboundMessage { sender: keys[1].id(), round: 1, payload: payload.clone() })
            .unwrap();
        assert_eq!(me.take_pending_checks().len(), 2, "original + re-enqueued check");
        // ...and once the verdict lands, further re-deliveries are no-ops.
        me.resolve_checks(&[(keys[1].id(), true)]);
        me.update(&InboundMessage { sender: keys[1].id(), round: 1, payload }).unwrap();
        assert!(me.take_pending_checks().is_empty());
        // Stale verdict for a party with no held share is ignored.
        me.resolve_checks(&[(PartyId(6), false)]);
        assert_eq!(me.stats().shares_pruned, 0);
    }

    #[test]
    fn pooled_sh00_falls_back_to_eager_inline_verification() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = theta_schemes::sh00::keygen(params, 256, &mut r).unwrap();
        let protos: Vec<_> = keys
            .into_iter()
            .map(|k| OneRoundProtocol::new_pooled(Sh00Sign::new(k, b"rsa msg".to_vec())))
            .collect();
        // SH00 has no batchable check: pooled mode verifies inline, so
        // the all-to-all run completes without any settle step.
        let outputs = run_all(protos, &mut r);
        let first = outputs[0].clone();
        for out in &outputs {
            assert_eq!(*out, first);
        }
        if let ProtocolOutput::Signature(bytes) = first {
            let sig =
                <theta_schemes::sh00::Signature as theta_codec::Decode>::decoded(&bytes).unwrap();
            assert!(theta_schemes::sh00::verify(&pk, b"rsa msg", &sig));
        } else {
            panic!("expected signature output");
        }
    }

    #[test]
    fn driver_forwards_pending_checks_and_verdicts() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = theta_schemes::sg02::keygen(params, &mut r);
        let ct = theta_schemes::sg02::encrypt(&pk, b"l", b"driver", &mut r);
        let mut d = crate::ProtocolDriver::new(Box::new(OneRoundProtocol::new_pooled(
            Sg02Decrypt::new(keys[0].clone(), ct.clone()),
        )));
        let _ = d.start(&mut r).unwrap();
        for k in &keys[1..3] {
            let share = theta_schemes::sg02::create_decryption_share(k, &ct, &mut r).unwrap();
            d.deliver(&InboundMessage {
                sender: k.id(),
                round: 1,
                payload: theta_codec::Encode::encoded(&share),
            })
            .unwrap();
        }
        let pending = d.take_pending_checks();
        assert_eq!(pending.len(), 2);
        // No verdicts yet: the instance cannot finalize.
        assert!(d.advance(&mut r).finished.is_none());
        let verdicts: Vec<(PartyId, bool)> = pending.iter().map(|(id, _)| (*id, true)).collect();
        d.resolve_checks(&verdicts);
        let step = d.advance(&mut r);
        match step.finished {
            Some(Ok(ProtocolOutput::Plaintext(p))) => assert_eq!(p, b"driver".to_vec()),
            other => panic!("expected plaintext, got {other:?}"),
        }
        assert!(step.combine_time.is_some());
        // Finished: the driver drains and drops any residue.
        assert!(d.take_pending_checks().is_empty());
    }

    #[test]
    fn double_do_round_rejected() {
        let mut r = rng();
        let params = ThresholdParams::new(0, 1).unwrap();
        let (_pk, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let mut p = OneRoundProtocol::new(Cks05Coin::new(keys[0].clone(), b"c".to_vec()));
        let _ = p.do_round(&mut r).unwrap();
        assert!(p.do_round(&mut r).is_err());
    }

    #[test]
    fn finalize_before_quorum_errors() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (_pk, keys) = theta_schemes::cks05::keygen(params, &mut r);
        let mut p = OneRoundProtocol::new(Cks05Coin::new(keys[0].clone(), b"c".to_vec()));
        let _ = p.do_round(&mut r).unwrap();
        assert!(matches!(
            p.finalize(),
            Err(SchemeError::NotEnoughShares { have: 1, need: 2 })
        ));
    }
}
