//! The host-side protocol driver: the round/update/finalize state
//! machine that advances one [`ThresholdRoundProtocol`] instance.
//!
//! Historically this logic lived inline in the orchestration manager's
//! event loop; it is extracted here so an instance can be *owned by a
//! worker thread* — the driver is `Send`, has no channels or locks, and
//! exposes exactly three transitions:
//!
//! - [`ProtocolDriver::start`] — the first `do_round`;
//! - [`ProtocolDriver::deliver`] — absorb one network message;
//! - [`ProtocolDriver::advance`] — run `do_round` while the progression
//!   condition holds, then `finalize` once the termination condition
//!   holds.
//!
//! The caller decides *where* these run (which thread, behind which
//! mailbox) and what to do with the produced messages; the driver only
//! guarantees that every transition on a given instance is applied
//! sequentially and that a finished instance absorbs no further work.

use crate::{InboundMessage, ProtocolOutput, ProtocolStats, RoundOutput, ThresholdRoundProtocol};
use std::collections::BTreeMap;
use theta_schemes::{PartyId, SchemeError};

/// How many rounds ahead of the protocol's current round a message may
/// claim before it is rejected outright. Bounds the future buffer to
/// `lookahead × parties` entries, since senders are
/// transport-authenticated upstream.
const MAX_ROUND_LOOKAHEAD: u16 = 8;

/// What one [`ProtocolDriver::advance`] call produced.
#[derive(Debug, Default)]
pub struct Advance {
    /// Round outputs emitted while the progression condition held, in
    /// round order. Each must be dispatched to the network.
    pub outputs: Vec<RoundOutput>,
    /// `Some` exactly once per instance: the terminal outcome, produced
    /// either by `finalize` or by a failing `do_round`.
    pub finished: Option<Result<ProtocolOutput, SchemeError>>,
    /// Wall time spent inside `finalize` (the combine phase), when this
    /// advance reached it — so the caller can feed its combine-latency
    /// histogram without instrumenting the protocol itself.
    pub combine_time: Option<std::time::Duration>,
    /// Buffered future-round messages that were replayed by this advance
    /// and rejected by the protocol — reported here so the caller can
    /// count and journal them exactly like directly-delivered rejects.
    pub rejects: Vec<(PartyId, SchemeError)>,
}

/// Sequential state machine around one protocol instance.
///
/// The driver is an exclusive owner: it is handed the boxed protocol at
/// construction and nothing else may touch the protocol afterwards.
/// All methods take `&mut self`, so exclusive access is enforced by the
/// borrow checker rather than a runtime lock.
pub struct ProtocolDriver {
    protocol: Box<dyn ThresholdRoundProtocol>,
    /// Messages for rounds the protocol has not reached yet, keyed by
    /// `(round, sender)` so a retransmitted copy replaces — not
    /// duplicates — its predecessor. Replayed by [`Self::advance`] as
    /// the round catches up. Multi-round protocols need this because
    /// transports race: a round-2 share sent P2P (direct) can overtake
    /// a round-1 commitment routed over total-order broadcast (via the
    /// sequencer), and handing it to the protocol early makes it verify
    /// against incomplete round-1 state.
    future: BTreeMap<(u16, PartyId), InboundMessage>,
    done: bool,
}

impl ProtocolDriver {
    /// Wraps a freshly built protocol instance (no round run yet).
    pub fn new(protocol: Box<dyn ThresholdRoundProtocol>) -> ProtocolDriver {
        ProtocolDriver { protocol, future: BTreeMap::new(), done: false }
    }

    /// Runs the first round, returning its messages.
    ///
    /// # Errors
    ///
    /// A scheme-level failure (e.g. an invalid ciphertext) — the
    /// instance is terminal after such an error and [`Self::is_done`]
    /// turns true.
    pub fn start(&mut self, rng: &mut dyn rand::RngCore) -> Result<RoundOutput, SchemeError> {
        debug_assert!(!self.done, "start on a finished instance");
        match self.protocol.do_round(rng) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.done = true;
                Err(e)
            }
        }
    }

    /// Absorbs one network message. Messages for a round the protocol
    /// has not reached yet are buffered and replayed by
    /// [`Self::advance`] once the round catches up, instead of being
    /// handed to the protocol against incomplete earlier-round state.
    ///
    /// # Errors
    ///
    /// An error marks the *message* invalid (e.g. a bad share); the
    /// instance stays live. Messages delivered after the instance
    /// finished are ignored and reported as ok.
    pub fn deliver(&mut self, message: &InboundMessage) -> Result<(), SchemeError> {
        if self.done {
            return Ok(());
        }
        let current = self.protocol.current_round();
        if message.round > current {
            if message.round - current > MAX_ROUND_LOOKAHEAD {
                return Err(SchemeError::Malformed(format!(
                    "message for round {} but instance is in round {current}",
                    message.round
                )));
            }
            self.future
                .insert((message.round, message.sender), message.clone());
            return Ok(());
        }
        self.protocol.update(message)
    }

    /// Advances the instance as far as it can go: runs `do_round` while
    /// the progression condition holds, replays any buffered messages
    /// the new round makes current (which may unlock further rounds),
    /// then finalizes once the termination condition holds. Idempotent
    /// after completion.
    pub fn advance(&mut self, rng: &mut dyn rand::RngCore) -> Advance {
        let mut step = Advance::default();
        if self.done {
            return step;
        }
        loop {
            while self.protocol.is_ready_for_next_round() {
                match self.protocol.do_round(rng) {
                    Ok(out) => step.outputs.push(out),
                    Err(e) => {
                        self.done = true;
                        step.finished = Some(Err(e));
                        return step;
                    }
                }
            }
            if !self.replay_due(&mut step.rejects) {
                break;
            }
        }
        if self.protocol.is_ready_to_finalize() {
            self.done = true;
            let combine_start = std::time::Instant::now();
            step.finished = Some(self.protocol.finalize());
            step.combine_time = Some(combine_start.elapsed());
        }
        step
    }

    /// Hands buffered messages whose round has become current to the
    /// protocol, reporting per-message rejects into `rejects`. Returns
    /// `true` when at least one message was applied (the caller must
    /// re-check the progression condition).
    fn replay_due(&mut self, rejects: &mut Vec<(PartyId, SchemeError)>) -> bool {
        let current = self.protocol.current_round();
        let mut rest = self.future.split_off(&(current + 1, PartyId(0)));
        std::mem::swap(&mut self.future, &mut rest);
        let due = rest;
        let mut applied = false;
        for message in due.into_values() {
            applied = true;
            if let Err(e) = self.protocol.update(&message) {
                rejects.push((message.sender, e));
            }
        }
        applied
    }

    /// True once the instance reached a terminal outcome.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The party running this instance.
    pub fn party(&self) -> PartyId {
        self.protocol.party()
    }

    /// The protocol's current round.
    pub fn current_round(&self) -> u16 {
        self.protocol.current_round()
    }

    /// Verification-work statistics accumulated by the protocol.
    pub fn stats(&self) -> ProtocolStats {
        self.protocol.stats()
    }

    /// Drains the share-validity checks the protocol deferred for
    /// cross-instance batch verification (empty for protocols that
    /// verify inline, and always empty once the instance is done).
    pub fn take_pending_checks(
        &mut self,
    ) -> Vec<(PartyId, theta_schemes::batch::PendingCheck)> {
        if self.done {
            // Terminal: any still-deferred checks are moot, but drain
            // them so they cannot leak into a later flush.
            let _ = self.protocol.take_pending_checks();
            return Vec::new();
        }
        self.protocol.take_pending_checks()
    }

    /// Applies cross-instance batch verdicts to previously deferred
    /// checks. Ignored on a finished instance.
    pub fn resolve_checks(&mut self, verdicts: &[(PartyId, bool)]) {
        if self.done {
            return;
        }
        self.protocol.resolve_checks(verdicts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Transport;

    /// A scripted two-round protocol: round 1 emits one message, the
    /// second round unlocks after `need` deliveries, finalize echoes
    /// how many messages it saw.
    struct Scripted {
        round: u16,
        seen: usize,
        need: usize,
        fail_round_two: bool,
    }

    impl ThresholdRoundProtocol for Scripted {
        fn do_round(&mut self, _rng: &mut dyn rand::RngCore) -> Result<RoundOutput, SchemeError> {
            self.round += 1;
            if self.round == 2 && self.fail_round_two {
                return Err(SchemeError::HashToGroupFailed);
            }
            Ok(RoundOutput {
                messages: vec![crate::OutboundMessage {
                    transport: Transport::P2p,
                    round: self.round,
                    payload: vec![self.round as u8],
                }],
            })
        }

        fn update(&mut self, message: &InboundMessage) -> Result<(), SchemeError> {
            if message.payload.is_empty() {
                return Err(SchemeError::InvalidShare { party: message.sender.value() });
            }
            self.seen += 1;
            Ok(())
        }

        fn is_ready_for_next_round(&self) -> bool {
            self.round == 1 && self.seen >= self.need
        }

        fn is_ready_to_finalize(&self) -> bool {
            self.round == 2 && self.seen >= 2 * self.need
        }

        fn finalize(&mut self) -> Result<ProtocolOutput, SchemeError> {
            Ok(ProtocolOutput::Signature(vec![self.seen as u8]))
        }

        fn current_round(&self) -> u16 {
            self.round
        }

        fn party(&self) -> PartyId {
            PartyId(1)
        }
    }

    fn msg(sender: u16, round: u16, payload: Vec<u8>) -> InboundMessage {
        InboundMessage { sender: PartyId(sender), round, payload }
    }

    #[test]
    fn drives_two_rounds_to_completion() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d = ProtocolDriver::new(Box::new(Scripted {
            round: 0,
            seen: 0,
            need: 2,
            fail_round_two: false,
        }));
        let first = d.start(&mut rng).unwrap();
        assert_eq!(first.messages.len(), 1);
        assert!(d.advance(&mut rng).finished.is_none());

        d.deliver(&msg(2, 1, vec![1])).unwrap();
        assert!(d.advance(&mut rng).outputs.is_empty(), "one short of round 2");
        d.deliver(&msg(3, 1, vec![1])).unwrap();
        let step = d.advance(&mut rng);
        assert_eq!(step.outputs.len(), 1, "round 2 ran");
        assert!(step.finished.is_none());

        d.deliver(&msg(2, 2, vec![2])).unwrap();
        d.deliver(&msg(3, 2, vec![2])).unwrap();
        let step = d.advance(&mut rng);
        match step.finished {
            Some(Ok(ProtocolOutput::Signature(s))) => assert_eq!(s, vec![4]),
            other => panic!("expected a signature, got {other:?}"),
        }
        assert!(d.is_done());
        // Terminal: further work is absorbed without effect.
        d.deliver(&msg(2, 1, vec![9])).unwrap();
        assert!(d.advance(&mut rng).finished.is_none());
    }

    #[test]
    fn future_round_message_is_buffered_until_the_round_catches_up() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d = ProtocolDriver::new(Box::new(Scripted {
            round: 0,
            seen: 0,
            need: 2,
            fail_round_two: false,
        }));
        d.start(&mut rng).unwrap();

        // A round-2 message overtakes round 1: buffered, not applied.
        d.deliver(&msg(4, 2, vec![2])).unwrap();
        assert!(d.advance(&mut rng).outputs.is_empty());

        // A retransmitted copy replaces the buffered one (no duplicate).
        d.deliver(&msg(4, 2, vec![2])).unwrap();

        // Round 1 completes: round 2 runs, and the buffered message is
        // replayed — with its duplicate collapsed — leaving the driver
        // one delivery short of finalizing (3 seen, 4 needed).
        d.deliver(&msg(2, 1, vec![1])).unwrap();
        d.deliver(&msg(3, 1, vec![1])).unwrap();
        let step = d.advance(&mut rng);
        assert_eq!(step.outputs.len(), 1, "round 2 ran");
        assert!(step.rejects.is_empty());
        assert!(step.finished.is_none(), "duplicate must not double-count");

        d.deliver(&msg(3, 2, vec![2])).unwrap();
        let step = d.advance(&mut rng);
        match step.finished {
            Some(Ok(ProtocolOutput::Signature(s))) => assert_eq!(s, vec![4]),
            other => panic!("expected a signature, got {other:?}"),
        }
    }

    #[test]
    fn replayed_reject_is_reported_in_advance() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d = ProtocolDriver::new(Box::new(Scripted {
            round: 0,
            seen: 0,
            need: 1,
            fail_round_two: false,
        }));
        d.start(&mut rng).unwrap();
        // Empty payload = invalid, but it claims round 2 so the error
        // only surfaces on replay, via `Advance::rejects`.
        d.deliver(&msg(5, 2, vec![])).unwrap();
        d.deliver(&msg(2, 1, vec![1])).unwrap();
        let step = d.advance(&mut rng);
        assert_eq!(step.outputs.len(), 1, "round 2 ran");
        assert_eq!(step.rejects.len(), 1);
        assert!(matches!(
            step.rejects[0],
            (PartyId(5), SchemeError::InvalidShare { party: 5 })
        ));
        assert!(!d.is_done());
    }

    #[test]
    fn far_future_round_is_rejected_outright() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d = ProtocolDriver::new(Box::new(Scripted {
            round: 0,
            seen: 0,
            need: 1,
            fail_round_two: false,
        }));
        d.start(&mut rng).unwrap();
        let too_far = 1 + MAX_ROUND_LOOKAHEAD + 1;
        assert!(matches!(
            d.deliver(&msg(2, too_far, vec![1])),
            Err(SchemeError::Malformed(_))
        ));
        // The edge of the window is still buffered fine.
        d.deliver(&msg(2, 1 + MAX_ROUND_LOOKAHEAD, vec![1])).unwrap();
        assert!(!d.is_done());
    }

    /// Regression for the transport race that wedged KG20 over TCP: a
    /// round-2 share sent P2P (direct) arrives before the last round-1
    /// commitment routed over the sequencer. Handing it to the protocol
    /// early made it verify against an incomplete commitment list and
    /// permanently abort the run; the driver must instead buffer it and
    /// replay it once round 2 is reached, letting the run complete.
    #[test]
    fn kg20_round2_share_overtaking_commitments_still_completes() {
        use crate::kg20_protocol::Kg20Sign;
        use theta_schemes::kg20;
        use theta_schemes::ThresholdParams;

        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0x0f57);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = kg20::keygen(params, &mut rng);
        let message = b"overtaken".to_vec();

        // Parties 2..4 run in lockstep outside the driver, producing
        // their round-1 commitments and round-2 shares.
        let mut peers: Vec<Kg20Sign> = keys[1..]
            .iter()
            .map(|k| Kg20Sign::new(k.clone(), message.clone()))
            .collect();
        let commitments: Vec<InboundMessage> = peers
            .iter_mut()
            .map(|p| {
                let out = p.do_round(&mut rng).unwrap();
                msg(p.party().value(), 1, out.messages[0].payload.clone())
            })
            .collect();
        let mut d = ProtocolDriver::new(Box::new(Kg20Sign::new(keys[0].clone(), message.clone())));
        let own_commitment = d.start(&mut rng).unwrap();
        for p in peers.iter_mut() {
            for c in &commitments {
                if c.sender != p.party() {
                    p.update(c).unwrap();
                }
            }
            p.update(&msg(1, 1, own_commitment.messages[0].payload.clone())).unwrap();
        }
        let shares: Vec<InboundMessage> = peers
            .iter_mut()
            .map(|p| {
                let out = p.do_round(&mut rng).unwrap();
                msg(p.party().value(), 2, out.messages[0].payload.clone())
            })
            .collect();

        // Adversarial arrival order at party 1: two commitments, then a
        // share that OVERTAKES the third commitment, then the rest.
        d.deliver(&commitments[0]).unwrap();
        d.deliver(&commitments[1]).unwrap();
        d.deliver(&shares[0]).unwrap(); // round 2 before round 1 is complete
        assert!(d.advance(&mut rng).finished.is_none());
        d.deliver(&commitments[2]).unwrap();
        let step = d.advance(&mut rng);
        assert_eq!(step.outputs.len(), 1, "own round-2 share emitted");
        assert!(step.rejects.is_empty(), "overtaking share must verify on replay");
        d.deliver(&shares[1]).unwrap();
        d.deliver(&shares[2]).unwrap();
        let step = d.advance(&mut rng);
        let sig = match step.finished {
            Some(Ok(ProtocolOutput::Signature(s))) => s,
            other => panic!("expected a signature, got {other:?}"),
        };
        let sig = <kg20::Signature as theta_codec::Decode>::decoded(&sig).unwrap();
        assert!(kg20::verify(&pk, &message, &sig));
    }

    #[test]
    fn failing_round_is_terminal() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d = ProtocolDriver::new(Box::new(Scripted {
            round: 0,
            seen: 0,
            need: 1,
            fail_round_two: true,
        }));
        d.start(&mut rng).unwrap();
        d.deliver(&msg(2, 1, vec![1])).unwrap();
        let step = d.advance(&mut rng);
        assert!(matches!(step.finished, Some(Err(SchemeError::HashToGroupFailed))));
        assert!(d.is_done());
    }

    #[test]
    fn invalid_message_keeps_instance_live() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d = ProtocolDriver::new(Box::new(Scripted {
            round: 0,
            seen: 0,
            need: 1,
            fail_round_two: false,
        }));
        d.start(&mut rng).unwrap();
        assert!(matches!(
            d.deliver(&msg(5, 1, vec![])),
            Err(SchemeError::InvalidShare { party: 5 })
        ));
        assert!(!d.is_done());
    }

    #[test]
    fn failing_start_is_terminal() {
        struct FailStart;
        impl ThresholdRoundProtocol for FailStart {
            fn do_round(
                &mut self,
                _rng: &mut dyn rand::RngCore,
            ) -> Result<RoundOutput, SchemeError> {
                Err(SchemeError::InvalidCiphertext("bad".into()))
            }
            fn update(&mut self, _m: &InboundMessage) -> Result<(), SchemeError> {
                Ok(())
            }
            fn is_ready_for_next_round(&self) -> bool {
                false
            }
            fn is_ready_to_finalize(&self) -> bool {
                false
            }
            fn finalize(&mut self) -> Result<ProtocolOutput, SchemeError> {
                unreachable!()
            }
            fn current_round(&self) -> u16 {
                0
            }
            fn party(&self) -> PartyId {
                PartyId(1)
            }
        }
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
        let mut d = ProtocolDriver::new(Box::new(FailStart));
        assert!(d.start(&mut rng).is_err());
        assert!(d.is_done());
    }
}
