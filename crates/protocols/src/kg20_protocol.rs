//! The two-round KG20 / FROST protocol under the TRI.
//!
//! This is the multi-round protocol that motivated the TRI design in the
//! paper (§3.5: "FROST is the first multi-round protocol to have been
//! implemented in Thetacrypt, and served as a model and test case").
//!
//! Round 1 broadcasts nonce commitments over **total-order broadcast**
//! so every party derives the identical signing-set view; round 2 sends
//! responses peer-to-peer. The signing group is fixed a priori to all
//! `n` parties (as in the paper's evaluation), which is why KG20 waits
//! for everyone and is not robust: any misbehaviour aborts the run.
//!
//! With a precomputed nonce ([`Kg20Sign::with_precomputed_nonce`]) round
//! 1 still exchanges the commitments but needs no fresh randomness —
//! the paper's preprocessing mode.

use crate::{
    InboundMessage, OutboundMessage, ProtocolOutput, RoundOutput, ThresholdRoundProtocol,
    Transport,
};
use std::collections::BTreeMap;
use theta_codec::{Decode, Encode};
use theta_schemes::kg20::{self, KeyShare, NonceCommitment, SignatureShare, SigningNonce};
use theta_schemes::{PartyId, SchemeError};

/// TRI state machine for KG20 threshold Schnorr signing.
pub struct Kg20Sign {
    key: KeyShare,
    message: Vec<u8>,
    round: u16,
    nonce: Option<SigningNonce>,
    commitments: BTreeMap<PartyId, NonceCommitment>,
    shares: BTreeMap<PartyId, SignatureShare>,
    /// Set when a party misbehaved; FROST aborts.
    aborted_by: Option<PartyId>,
    finished: bool,
}

impl Kg20Sign {
    /// Creates a fresh two-round signing instance (nonce generated in
    /// round 1).
    pub fn new(key: KeyShare, message: Vec<u8>) -> Self {
        Kg20Sign {
            key,
            message,
            round: 0,
            nonce: None,
            commitments: BTreeMap::new(),
            shares: BTreeMap::new(),
            aborted_by: None,
            finished: false,
        }
    }

    /// Creates an instance that consumes a precomputed nonce (the
    /// paper's preprocessing mode — signing needs only one fresh round).
    pub fn with_precomputed_nonce(key: KeyShare, message: Vec<u8>, nonce: SigningNonce) -> Self {
        let mut p = Self::new(key, message);
        p.nonce = Some(nonce);
        p
    }

    /// The fixed signing group size (all `n` parties).
    fn group_size(&self) -> usize {
        self.key.public().params().n() as usize
    }

    fn commitment_list(&self) -> Vec<NonceCommitment> {
        self.commitments.values().cloned().collect()
    }

    /// The party that caused an abort, if any.
    pub fn aborted_by(&self) -> Option<PartyId> {
        self.aborted_by
    }
}

impl ThresholdRoundProtocol for Kg20Sign {
    fn do_round(&mut self, rng: &mut dyn rand::RngCore) -> Result<RoundOutput, SchemeError> {
        match self.round {
            0 => {
                self.round = 1;
                let nonce = match self.nonce.take() {
                    Some(n) => n,
                    None => kg20::generate_nonce(&self.key, rng),
                };
                let commitment = nonce.commitment().clone();
                self.commitments.insert(self.key.id(), commitment.clone());
                self.nonce = Some(nonce);
                Ok(RoundOutput {
                    messages: vec![OutboundMessage {
                        transport: Transport::Tob,
                        round: 1,
                        payload: commitment.encoded(),
                    }],
                })
            }
            1 => {
                if !self.is_ready_for_next_round() {
                    return Err(SchemeError::NotEnoughShares {
                        have: self.commitments.len(),
                        need: self.group_size(),
                    });
                }
                self.round = 2;
                let nonce = self
                    .nonce
                    .take()
                    .ok_or_else(|| SchemeError::InvalidParameters("nonce consumed".into()))?;
                let commitments = self.commitment_list();
                let share = kg20::sign_share(&self.key, nonce, &self.message, &commitments)?;
                let payload = share.encoded();
                self.shares.insert(self.key.id(), share);
                Ok(RoundOutput {
                    messages: vec![OutboundMessage {
                        transport: Transport::P2p,
                        round: 2,
                        payload,
                    }],
                })
            }
            _ => Err(SchemeError::InvalidParameters("protocol already in round 2".into())),
        }
    }

    fn update(&mut self, message: &InboundMessage) -> Result<(), SchemeError> {
        match message.round {
            1 => {
                let commitment = NonceCommitment::decoded(&message.payload)
                    .map_err(|e| SchemeError::Malformed(e.to_string()))?;
                if commitment.id() != message.sender {
                    return Err(SchemeError::InvalidShare { party: message.sender.value() });
                }
                if commitment.id().value() == 0
                    || commitment.id().value() > self.key.public().params().n()
                {
                    return Err(SchemeError::InvalidShareSet("party outside group".into()));
                }
                self.commitments.insert(commitment.id(), commitment);
                Ok(())
            }
            2 => {
                let share = SignatureShare::decoded(&message.payload)
                    .map_err(|e| SchemeError::Malformed(e.to_string()))?;
                if share.id() != message.sender {
                    self.aborted_by = Some(message.sender);
                    return Err(SchemeError::InvalidShare { party: message.sender.value() });
                }
                let commitments = self.commitment_list();
                if !kg20::verify_share(self.key.public(), &self.message, &commitments, &share) {
                    // Non-robust: a bad response dooms this run.
                    self.aborted_by = Some(share.id());
                    return Err(SchemeError::InvalidShare { party: share.id().value() });
                }
                self.shares.insert(share.id(), share);
                Ok(())
            }
            other => Err(SchemeError::Malformed(format!("unexpected round {other}"))),
        }
    }

    fn is_ready_for_next_round(&self) -> bool {
        self.round == 1 && self.commitments.len() == self.group_size()
    }

    fn is_ready_to_finalize(&self) -> bool {
        // An abort finalizes immediately (to the abort error): FROST is
        // non-robust, so once a party misbehaved the run can never
        // produce a signature and waiting for more shares only turns a
        // crisp failure into an instance timeout.
        !self.finished
            && (self.aborted_by.is_some()
                || (self.round == 2 && self.shares.len() == self.group_size()))
    }

    fn finalize(&mut self) -> Result<ProtocolOutput, SchemeError> {
        if let Some(party) = self.aborted_by {
            return Err(SchemeError::InvalidShare { party: party.value() });
        }
        if !self.is_ready_to_finalize() {
            return Err(SchemeError::NotEnoughShares {
                have: self.shares.len(),
                need: self.group_size(),
            });
        }
        let commitments = self.commitment_list();
        let shares: Vec<SignatureShare> = self.shares.values().cloned().collect();
        let sig = kg20::combine(self.key.public(), &self.message, &commitments, &shares)?;
        self.finished = true;
        Ok(ProtocolOutput::Signature(sig.encoded()))
    }

    fn current_round(&self) -> u16 {
        self.round
    }

    fn party(&self) -> PartyId {
        self.key.id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use theta_schemes::ThresholdParams;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x6021)
    }

    fn broadcast_round(
        protocols: &mut [Kg20Sign],
        r: &mut rand::rngs::StdRng,
    ) -> Vec<(PartyId, RoundOutput)> {
        let outs: Vec<(PartyId, RoundOutput)> = protocols
            .iter_mut()
            .map(|p| (p.party(), p.do_round(r).unwrap()))
            .collect();
        for (sender, out) in &outs {
            for msg in &out.messages {
                for p in protocols.iter_mut() {
                    if p.party() != *sender {
                        p.update(&InboundMessage {
                            sender: *sender,
                            round: msg.round,
                            payload: msg.payload.clone(),
                        })
                        .unwrap();
                    }
                }
            }
        }
        outs
    }

    #[test]
    fn full_two_round_run() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = kg20::keygen(params, &mut r);
        let mut protos: Vec<Kg20Sign> = keys
            .into_iter()
            .map(|k| Kg20Sign::new(k, b"two-round".to_vec()))
            .collect();

        // Round 1: everyone commits over TOB.
        let outs = broadcast_round(&mut protos, &mut r);
        for (_, out) in &outs {
            assert_eq!(out.messages[0].transport, Transport::Tob);
        }
        for p in &protos {
            assert!(p.is_ready_for_next_round());
            assert!(!p.is_ready_to_finalize());
        }

        // Round 2: responses over P2P.
        let outs = broadcast_round(&mut protos, &mut r);
        for (_, out) in &outs {
            assert_eq!(out.messages[0].transport, Transport::P2p);
        }
        let mut sigs = Vec::new();
        for p in protos.iter_mut() {
            assert!(p.is_ready_to_finalize());
            sigs.push(p.finalize().unwrap());
        }
        // All agree and the signature verifies.
        for s in &sigs {
            assert_eq!(*s, sigs[0]);
        }
        if let ProtocolOutput::Signature(bytes) = &sigs[0] {
            let sig = <theta_schemes::kg20::Signature as Decode>::decoded(bytes).unwrap();
            assert!(kg20::verify(&pk, b"two-round", &sig));
        } else {
            panic!("expected signature");
        }
    }

    #[test]
    fn precomputed_nonce_mode() {
        let mut r = rng();
        let params = ThresholdParams::new(0, 2).unwrap();
        let (pk, keys) = kg20::keygen(params, &mut r);
        let n0 = kg20::precompute_nonces(&keys[0], 1, &mut r).pop().unwrap();
        let n1 = kg20::precompute_nonces(&keys[1], 1, &mut r).pop().unwrap();
        let mut protos = vec![
            Kg20Sign::with_precomputed_nonce(keys[0].clone(), b"pre".to_vec(), n0),
            Kg20Sign::with_precomputed_nonce(keys[1].clone(), b"pre".to_vec(), n1),
        ];
        broadcast_round(&mut protos, &mut r);
        broadcast_round(&mut protos, &mut r);
        for p in protos.iter_mut() {
            let out = p.finalize().unwrap();
            if let ProtocolOutput::Signature(bytes) = out {
                let sig = <theta_schemes::kg20::Signature as Decode>::decoded(&bytes).unwrap();
                assert!(kg20::verify(&pk, b"pre", &sig));
            } else {
                panic!("expected signature");
            }
        }
    }

    #[test]
    fn cannot_advance_before_all_commitments() {
        let mut r = rng();
        let params = ThresholdParams::new(1, 4).unwrap();
        let (_pk, keys) = kg20::keygen(params, &mut r);
        let mut p = Kg20Sign::new(keys[0].clone(), b"m".to_vec());
        let _ = p.do_round(&mut r).unwrap();
        assert!(!p.is_ready_for_next_round()); // only own commitment
        assert!(p.do_round(&mut r).is_err()); // premature round 2
    }

    #[test]
    fn bad_round2_share_aborts() {
        let mut r = rng();
        let params = ThresholdParams::new(0, 2).unwrap();
        let (_pk, keys) = kg20::keygen(params, &mut r);
        let mut protos = vec![
            Kg20Sign::new(keys[0].clone(), b"m".to_vec()),
            Kg20Sign::new(keys[1].clone(), b"m".to_vec()),
        ];
        broadcast_round(&mut protos, &mut r);
        // Round 2 messages, but party 2's share is corrupted in flight.
        let outs: Vec<(PartyId, RoundOutput)> = protos
            .iter_mut()
            .map(|p| (p.party(), p.do_round(&mut r).unwrap()))
            .collect();
        let (sender2, out2) = &outs[1];
        let mut bad_payload = out2.messages[0].payload.clone();
        let last = bad_payload.len() - 1;
        bad_payload[last] ^= 1;
        let err = protos[0].update(&InboundMessage {
            sender: *sender2,
            round: 2,
            payload: bad_payload,
        });
        assert!(err.is_err());
        assert_eq!(protos[0].aborted_by(), Some(PartyId(2)));
        // The abort makes the run finalize *immediately* — to the abort
        // error, not a signature — instead of idling until timeout.
        assert!(protos[0].is_ready_to_finalize());
        assert!(protos[0].finalize().is_err());
    }

    #[test]
    fn mismatched_sender_rejected() {
        let mut r = rng();
        let params = ThresholdParams::new(0, 2).unwrap();
        let (_pk, keys) = kg20::keygen(params, &mut r);
        let mut p0 = Kg20Sign::new(keys[0].clone(), b"m".to_vec());
        let mut p1 = Kg20Sign::new(keys[1].clone(), b"m".to_vec());
        let _ = p0.do_round(&mut r).unwrap();
        let out1 = p1.do_round(&mut r).unwrap();
        // Party 2's commitment claimed to come from... party 2 is fine;
        // spoof it as from the wrong sender.
        let err = p0.update(&InboundMessage {
            sender: PartyId(1),
            round: 1,
            payload: out1.messages[0].payload.clone(),
        });
        assert!(err.is_err());
    }
}
