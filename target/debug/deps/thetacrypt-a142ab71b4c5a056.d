/root/repo/target/debug/deps/thetacrypt-a142ab71b4c5a056.d: src/lib.rs

/root/repo/target/debug/deps/libthetacrypt-a142ab71b4c5a056.rlib: src/lib.rs

/root/repo/target/debug/deps/libthetacrypt-a142ab71b4c5a056.rmeta: src/lib.rs

src/lib.rs:
