/root/repo/target/debug/deps/table1_schemes-3faed197b027ec30.d: crates/bench/src/bin/table1_schemes.rs

/root/repo/target/debug/deps/table1_schemes-3faed197b027ec30: crates/bench/src/bin/table1_schemes.rs

crates/bench/src/bin/table1_schemes.rs:
