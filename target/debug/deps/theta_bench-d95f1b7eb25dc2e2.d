/root/repo/target/debug/deps/theta_bench-d95f1b7eb25dc2e2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtheta_bench-d95f1b7eb25dc2e2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtheta_bench-d95f1b7eb25dc2e2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
