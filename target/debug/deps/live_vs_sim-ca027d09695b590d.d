/root/repo/target/debug/deps/live_vs_sim-ca027d09695b590d.d: crates/bench/src/bin/live_vs_sim.rs

/root/repo/target/debug/deps/live_vs_sim-ca027d09695b590d: crates/bench/src/bin/live_vs_sim.rs

crates/bench/src/bin/live_vs_sim.rs:
