/root/repo/target/debug/deps/table2_deployments-d8fba129249c8a34.d: crates/bench/src/bin/table2_deployments.rs

/root/repo/target/debug/deps/table2_deployments-d8fba129249c8a34: crates/bench/src/bin/table2_deployments.rs

crates/bench/src/bin/table2_deployments.rs:
