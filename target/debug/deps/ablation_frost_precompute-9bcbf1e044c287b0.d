/root/repo/target/debug/deps/ablation_frost_precompute-9bcbf1e044c287b0.d: crates/bench/src/bin/ablation_frost_precompute.rs

/root/repo/target/debug/deps/ablation_frost_precompute-9bcbf1e044c287b0: crates/bench/src/bin/ablation_frost_precompute.rs

crates/bench/src/bin/ablation_frost_precompute.rs:
