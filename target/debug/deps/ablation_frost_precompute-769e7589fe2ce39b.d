/root/repo/target/debug/deps/ablation_frost_precompute-769e7589fe2ce39b.d: crates/bench/src/bin/ablation_frost_precompute.rs

/root/repo/target/debug/deps/ablation_frost_precompute-769e7589fe2ce39b: crates/bench/src/bin/ablation_frost_precompute.rs

crates/bench/src/bin/ablation_frost_precompute.rs:
