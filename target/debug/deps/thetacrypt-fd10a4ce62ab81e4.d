/root/repo/target/debug/deps/thetacrypt-fd10a4ce62ab81e4.d: src/lib.rs

/root/repo/target/debug/deps/libthetacrypt-fd10a4ce62ab81e4.rlib: src/lib.rs

/root/repo/target/debug/deps/libthetacrypt-fd10a4ce62ab81e4.rmeta: src/lib.rs

src/lib.rs:
