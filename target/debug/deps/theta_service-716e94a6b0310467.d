/root/repo/target/debug/deps/theta_service-716e94a6b0310467.d: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/debug/deps/libtheta_service-716e94a6b0310467.rlib: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/debug/deps/libtheta_service-716e94a6b0310467.rmeta: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/client.rs:
crates/service/src/server.rs:
