/root/repo/target/debug/deps/theta_orchestration-30a75567c5524a4e.d: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

/root/repo/target/debug/deps/libtheta_orchestration-30a75567c5524a4e.rlib: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

/root/repo/target/debug/deps/libtheta_orchestration-30a75567c5524a4e.rmeta: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

crates/orchestration/src/lib.rs:
crates/orchestration/src/cache.rs:
crates/orchestration/src/manager.rs:
