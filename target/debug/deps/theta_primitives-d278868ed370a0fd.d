/root/repo/target/debug/deps/theta_primitives-d278868ed370a0fd.d: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

/root/repo/target/debug/deps/libtheta_primitives-d278868ed370a0fd.rlib: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

/root/repo/target/debug/deps/libtheta_primitives-d278868ed370a0fd.rmeta: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

crates/primitives/src/lib.rs:
crates/primitives/src/aead.rs:
crates/primitives/src/chacha20.rs:
crates/primitives/src/kdf.rs:
crates/primitives/src/poly1305.rs:
crates/primitives/src/sha2.rs:
