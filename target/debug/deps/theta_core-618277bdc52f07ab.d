/root/repo/target/debug/deps/theta_core-618277bdc52f07ab.d: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/debug/deps/libtheta_core-618277bdc52f07ab.rlib: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/debug/deps/libtheta_core-618277bdc52f07ab.rmeta: crates/core/src/lib.rs crates/core/src/keyfile.rs

crates/core/src/lib.rs:
crates/core/src/keyfile.rs:
