/root/repo/target/debug/deps/table3_params-df9cd9304fa86e18.d: crates/bench/src/bin/table3_params.rs

/root/repo/target/debug/deps/table3_params-df9cd9304fa86e18: crates/bench/src/bin/table3_params.rs

crates/bench/src/bin/table3_params.rs:
