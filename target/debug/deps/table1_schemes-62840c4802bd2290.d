/root/repo/target/debug/deps/table1_schemes-62840c4802bd2290.d: crates/bench/src/bin/table1_schemes.rs

/root/repo/target/debug/deps/table1_schemes-62840c4802bd2290: crates/bench/src/bin/table1_schemes.rs

crates/bench/src/bin/table1_schemes.rs:
