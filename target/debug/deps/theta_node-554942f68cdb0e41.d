/root/repo/target/debug/deps/theta_node-554942f68cdb0e41.d: crates/core/src/bin/theta_node.rs

/root/repo/target/debug/deps/theta_node-554942f68cdb0e41: crates/core/src/bin/theta_node.rs

crates/core/src/bin/theta_node.rs:
