/root/repo/target/debug/deps/bytes-e7caf1b266124f8a.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-e7caf1b266124f8a.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-e7caf1b266124f8a.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
