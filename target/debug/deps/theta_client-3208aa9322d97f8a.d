/root/repo/target/debug/deps/theta_client-3208aa9322d97f8a.d: crates/core/src/bin/theta_client.rs

/root/repo/target/debug/deps/theta_client-3208aa9322d97f8a: crates/core/src/bin/theta_client.rs

crates/core/src/bin/theta_client.rs:
