/root/repo/target/debug/deps/fig5a_steady_state-f3974acb57c29f24.d: crates/bench/src/bin/fig5a_steady_state.rs

/root/repo/target/debug/deps/fig5a_steady_state-f3974acb57c29f24: crates/bench/src/bin/fig5a_steady_state.rs

crates/bench/src/bin/fig5a_steady_state.rs:
