/root/repo/target/debug/deps/theta_service-8484925623c9e714.d: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/debug/deps/libtheta_service-8484925623c9e714.rlib: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/debug/deps/libtheta_service-8484925623c9e714.rmeta: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/client.rs:
crates/service/src/server.rs:
