/root/repo/target/debug/deps/table3_params-fb8167560206cf90.d: crates/bench/src/bin/table3_params.rs

/root/repo/target/debug/deps/table3_params-fb8167560206cf90: crates/bench/src/bin/table3_params.rs

crates/bench/src/bin/table3_params.rs:
