/root/repo/target/debug/deps/live_vs_sim-41218f77637932bc.d: crates/bench/src/bin/live_vs_sim.rs

/root/repo/target/debug/deps/live_vs_sim-41218f77637932bc: crates/bench/src/bin/live_vs_sim.rs

crates/bench/src/bin/live_vs_sim.rs:
