/root/repo/target/debug/deps/ablation_verification-39fdcce7e85db0c1.d: crates/bench/src/bin/ablation_verification.rs

/root/repo/target/debug/deps/ablation_verification-39fdcce7e85db0c1: crates/bench/src/bin/ablation_verification.rs

crates/bench/src/bin/ablation_verification.rs:
