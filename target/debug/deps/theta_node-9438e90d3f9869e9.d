/root/repo/target/debug/deps/theta_node-9438e90d3f9869e9.d: crates/core/src/bin/theta_node.rs

/root/repo/target/debug/deps/theta_node-9438e90d3f9869e9: crates/core/src/bin/theta_node.rs

crates/core/src/bin/theta_node.rs:
