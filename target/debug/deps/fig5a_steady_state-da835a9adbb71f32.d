/root/repo/target/debug/deps/fig5a_steady_state-da835a9adbb71f32.d: crates/bench/src/bin/fig5a_steady_state.rs

/root/repo/target/debug/deps/fig5a_steady_state-da835a9adbb71f32: crates/bench/src/bin/fig5a_steady_state.rs

crates/bench/src/bin/fig5a_steady_state.rs:
