/root/repo/target/debug/deps/theta_keygen-9b8527d4c371cd40.d: crates/core/src/bin/theta_keygen.rs

/root/repo/target/debug/deps/theta_keygen-9b8527d4c371cd40: crates/core/src/bin/theta_keygen.rs

crates/core/src/bin/theta_keygen.rs:
