/root/repo/target/debug/deps/theta_orchestration-6755e0dbfecd1e6d.d: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

/root/repo/target/debug/deps/libtheta_orchestration-6755e0dbfecd1e6d.rlib: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

/root/repo/target/debug/deps/libtheta_orchestration-6755e0dbfecd1e6d.rmeta: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

crates/orchestration/src/lib.rs:
crates/orchestration/src/manager.rs:
