/root/repo/target/debug/deps/table4_summary-2aa2fcd04440d72c.d: crates/bench/src/bin/table4_summary.rs

/root/repo/target/debug/deps/table4_summary-2aa2fcd04440d72c: crates/bench/src/bin/table4_summary.rs

crates/bench/src/bin/table4_summary.rs:
