/root/repo/target/debug/deps/theta_protocols-f7dee95078f0cf0b.d: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

/root/repo/target/debug/deps/libtheta_protocols-f7dee95078f0cf0b.rlib: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

/root/repo/target/debug/deps/libtheta_protocols-f7dee95078f0cf0b.rmeta: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

crates/protocols/src/lib.rs:
crates/protocols/src/kg20_protocol.rs:
crates/protocols/src/one_round.rs:
