/root/repo/target/debug/deps/theta_bench-27bba3eb64ee52c0.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtheta_bench-27bba3eb64ee52c0.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libtheta_bench-27bba3eb64ee52c0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
