/root/repo/target/debug/deps/theta_network-514d5890b35f34c7.d: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

/root/repo/target/debug/deps/libtheta_network-514d5890b35f34c7.rlib: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

/root/repo/target/debug/deps/libtheta_network-514d5890b35f34c7.rmeta: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

crates/network/src/lib.rs:
crates/network/src/inmemory.rs:
crates/network/src/tcp.rs:
