/root/repo/target/debug/deps/table2_deployments-0555245d18f666b8.d: crates/bench/src/bin/table2_deployments.rs

/root/repo/target/debug/deps/table2_deployments-0555245d18f666b8: crates/bench/src/bin/table2_deployments.rs

crates/bench/src/bin/table2_deployments.rs:
