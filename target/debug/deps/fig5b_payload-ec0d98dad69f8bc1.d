/root/repo/target/debug/deps/fig5b_payload-ec0d98dad69f8bc1.d: crates/bench/src/bin/fig5b_payload.rs

/root/repo/target/debug/deps/fig5b_payload-ec0d98dad69f8bc1: crates/bench/src/bin/fig5b_payload.rs

crates/bench/src/bin/fig5b_payload.rs:
