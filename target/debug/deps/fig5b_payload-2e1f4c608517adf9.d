/root/repo/target/debug/deps/fig5b_payload-2e1f4c608517adf9.d: crates/bench/src/bin/fig5b_payload.rs

/root/repo/target/debug/deps/fig5b_payload-2e1f4c608517adf9: crates/bench/src/bin/fig5b_payload.rs

crates/bench/src/bin/fig5b_payload.rs:
