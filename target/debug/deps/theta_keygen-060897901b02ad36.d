/root/repo/target/debug/deps/theta_keygen-060897901b02ad36.d: crates/core/src/bin/theta_keygen.rs

/root/repo/target/debug/deps/theta_keygen-060897901b02ad36: crates/core/src/bin/theta_keygen.rs

crates/core/src/bin/theta_keygen.rs:
