/root/repo/target/debug/deps/theta_sim-77bdbe832fe7bd78.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

/root/repo/target/debug/deps/libtheta_sim-77bdbe832fe7bd78.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

/root/repo/target/debug/deps/libtheta_sim-77bdbe832fe7bd78.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/deployment.rs:
crates/sim/src/engine.rs:
crates/sim/src/experiment.rs:
