/root/repo/target/debug/deps/fig4_capacity-08a4ec64ef360fb0.d: crates/bench/src/bin/fig4_capacity.rs

/root/repo/target/debug/deps/fig4_capacity-08a4ec64ef360fb0: crates/bench/src/bin/fig4_capacity.rs

crates/bench/src/bin/fig4_capacity.rs:
