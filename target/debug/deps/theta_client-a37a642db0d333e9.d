/root/repo/target/debug/deps/theta_client-a37a642db0d333e9.d: crates/core/src/bin/theta_client.rs

/root/repo/target/debug/deps/theta_client-a37a642db0d333e9: crates/core/src/bin/theta_client.rs

crates/core/src/bin/theta_client.rs:
