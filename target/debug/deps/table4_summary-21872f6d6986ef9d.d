/root/repo/target/debug/deps/table4_summary-21872f6d6986ef9d.d: crates/bench/src/bin/table4_summary.rs

/root/repo/target/debug/deps/table4_summary-21872f6d6986ef9d: crates/bench/src/bin/table4_summary.rs

crates/bench/src/bin/table4_summary.rs:
