/root/repo/target/debug/deps/ablation_verification-4aae70dfb65f3f4b.d: crates/bench/src/bin/ablation_verification.rs

/root/repo/target/debug/deps/ablation_verification-4aae70dfb65f3f4b: crates/bench/src/bin/ablation_verification.rs

crates/bench/src/bin/ablation_verification.rs:
