/root/repo/target/debug/deps/theta_codec-d766caf90790605e.d: crates/codec/src/lib.rs

/root/repo/target/debug/deps/libtheta_codec-d766caf90790605e.rlib: crates/codec/src/lib.rs

/root/repo/target/debug/deps/libtheta_codec-d766caf90790605e.rmeta: crates/codec/src/lib.rs

crates/codec/src/lib.rs:
