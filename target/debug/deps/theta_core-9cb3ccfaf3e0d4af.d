/root/repo/target/debug/deps/theta_core-9cb3ccfaf3e0d4af.d: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/debug/deps/libtheta_core-9cb3ccfaf3e0d4af.rlib: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/debug/deps/libtheta_core-9cb3ccfaf3e0d4af.rmeta: crates/core/src/lib.rs crates/core/src/keyfile.rs

crates/core/src/lib.rs:
crates/core/src/keyfile.rs:
