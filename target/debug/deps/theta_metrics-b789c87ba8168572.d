/root/repo/target/debug/deps/theta_metrics-b789c87ba8168572.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

/root/repo/target/debug/deps/libtheta_metrics-b789c87ba8168572.rlib: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

/root/repo/target/debug/deps/libtheta_metrics-b789c87ba8168572.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
