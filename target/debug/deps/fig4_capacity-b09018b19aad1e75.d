/root/repo/target/debug/deps/fig4_capacity-b09018b19aad1e75.d: crates/bench/src/bin/fig4_capacity.rs

/root/repo/target/debug/deps/fig4_capacity-b09018b19aad1e75: crates/bench/src/bin/fig4_capacity.rs

crates/bench/src/bin/fig4_capacity.rs:
