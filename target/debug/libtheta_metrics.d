/root/repo/target/debug/libtheta_metrics.rlib: /root/repo/crates/metrics/src/counters.rs /root/repo/crates/metrics/src/lib.rs
