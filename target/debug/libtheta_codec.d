/root/repo/target/debug/libtheta_codec.rlib: /root/repo/crates/codec/src/lib.rs /tmp/stubs/bytes/src/lib.rs
