/root/repo/target/release/deps/proptest-0c0e291e06f2e725.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0c0e291e06f2e725.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0c0e291e06f2e725.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
