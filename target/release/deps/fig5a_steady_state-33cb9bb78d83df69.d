/root/repo/target/release/deps/fig5a_steady_state-33cb9bb78d83df69.d: crates/bench/src/bin/fig5a_steady_state.rs

/root/repo/target/release/deps/fig5a_steady_state-33cb9bb78d83df69: crates/bench/src/bin/fig5a_steady_state.rs

crates/bench/src/bin/fig5a_steady_state.rs:
