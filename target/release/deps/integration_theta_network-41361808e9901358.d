/root/repo/target/release/deps/integration_theta_network-41361808e9901358.d: tests/integration_theta_network.rs

/root/repo/target/release/deps/integration_theta_network-41361808e9901358: tests/integration_theta_network.rs

tests/integration_theta_network.rs:
