/root/repo/target/release/deps/theta_node-a9d3f28e94544965.d: crates/core/src/bin/theta_node.rs

/root/repo/target/release/deps/theta_node-a9d3f28e94544965: crates/core/src/bin/theta_node.rs

crates/core/src/bin/theta_node.rs:
