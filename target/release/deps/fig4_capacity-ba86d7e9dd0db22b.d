/root/repo/target/release/deps/fig4_capacity-ba86d7e9dd0db22b.d: crates/bench/src/bin/fig4_capacity.rs

/root/repo/target/release/deps/fig4_capacity-ba86d7e9dd0db22b: crates/bench/src/bin/fig4_capacity.rs

crates/bench/src/bin/fig4_capacity.rs:
