/root/repo/target/release/deps/theta_primitives-173f1a245efd9f02.d: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

/root/repo/target/release/deps/libtheta_primitives-173f1a245efd9f02.rlib: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

/root/repo/target/release/deps/libtheta_primitives-173f1a245efd9f02.rmeta: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

crates/primitives/src/lib.rs:
crates/primitives/src/aead.rs:
crates/primitives/src/chacha20.rs:
crates/primitives/src/kdf.rs:
crates/primitives/src/poly1305.rs:
crates/primitives/src/sha2.rs:
