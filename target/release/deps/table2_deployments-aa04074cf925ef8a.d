/root/repo/target/release/deps/table2_deployments-aa04074cf925ef8a.d: crates/bench/src/bin/table2_deployments.rs

/root/repo/target/release/deps/table2_deployments-aa04074cf925ef8a: crates/bench/src/bin/table2_deployments.rs

crates/bench/src/bin/table2_deployments.rs:
