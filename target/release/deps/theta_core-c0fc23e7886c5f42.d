/root/repo/target/release/deps/theta_core-c0fc23e7886c5f42.d: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/release/deps/theta_core-c0fc23e7886c5f42: crates/core/src/lib.rs crates/core/src/keyfile.rs

crates/core/src/lib.rs:
crates/core/src/keyfile.rs:
