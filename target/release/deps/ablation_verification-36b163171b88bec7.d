/root/repo/target/release/deps/ablation_verification-36b163171b88bec7.d: crates/bench/src/bin/ablation_verification.rs

/root/repo/target/release/deps/ablation_verification-36b163171b88bec7: crates/bench/src/bin/ablation_verification.rs

crates/bench/src/bin/ablation_verification.rs:
