/root/repo/target/release/deps/table1_schemes-1165ad299829d2dc.d: crates/bench/src/bin/table1_schemes.rs

/root/repo/target/release/deps/table1_schemes-1165ad299829d2dc: crates/bench/src/bin/table1_schemes.rs

crates/bench/src/bin/table1_schemes.rs:
