/root/repo/target/release/deps/theta_schemes-a4f86c5ed2264e0b.d: crates/schemes/src/lib.rs crates/schemes/src/bls04.rs crates/schemes/src/bz03.rs crates/schemes/src/cks05.rs crates/schemes/src/common.rs crates/schemes/src/dkg.rs crates/schemes/src/dleq.rs crates/schemes/src/error.rs crates/schemes/src/hashing.rs crates/schemes/src/kg20.rs crates/schemes/src/registry.rs crates/schemes/src/sg02.rs crates/schemes/src/sh00.rs crates/schemes/src/wire.rs

/root/repo/target/release/deps/theta_schemes-a4f86c5ed2264e0b: crates/schemes/src/lib.rs crates/schemes/src/bls04.rs crates/schemes/src/bz03.rs crates/schemes/src/cks05.rs crates/schemes/src/common.rs crates/schemes/src/dkg.rs crates/schemes/src/dleq.rs crates/schemes/src/error.rs crates/schemes/src/hashing.rs crates/schemes/src/kg20.rs crates/schemes/src/registry.rs crates/schemes/src/sg02.rs crates/schemes/src/sh00.rs crates/schemes/src/wire.rs

crates/schemes/src/lib.rs:
crates/schemes/src/bls04.rs:
crates/schemes/src/bz03.rs:
crates/schemes/src/cks05.rs:
crates/schemes/src/common.rs:
crates/schemes/src/dkg.rs:
crates/schemes/src/dleq.rs:
crates/schemes/src/error.rs:
crates/schemes/src/hashing.rs:
crates/schemes/src/kg20.rs:
crates/schemes/src/registry.rs:
crates/schemes/src/sg02.rs:
crates/schemes/src/sh00.rs:
crates/schemes/src/wire.rs:
