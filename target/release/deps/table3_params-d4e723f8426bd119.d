/root/repo/target/release/deps/table3_params-d4e723f8426bd119.d: crates/bench/src/bin/table3_params.rs

/root/repo/target/release/deps/table3_params-d4e723f8426bd119: crates/bench/src/bin/table3_params.rs

crates/bench/src/bin/table3_params.rs:
