/root/repo/target/release/deps/theta_network-bdc1db032c33fa72.d: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

/root/repo/target/release/deps/libtheta_network-bdc1db032c33fa72.rlib: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

/root/repo/target/release/deps/libtheta_network-bdc1db032c33fa72.rmeta: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

crates/network/src/lib.rs:
crates/network/src/inmemory.rs:
crates/network/src/tcp.rs:
