/root/repo/target/release/deps/thetacrypt-96d177d2cb2a3aeb.d: src/lib.rs

/root/repo/target/release/deps/libthetacrypt-96d177d2cb2a3aeb.rlib: src/lib.rs

/root/repo/target/release/deps/libthetacrypt-96d177d2cb2a3aeb.rmeta: src/lib.rs

src/lib.rs:
