/root/repo/target/release/deps/theta_bench-2a9578b8d32f054f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/theta_bench-2a9578b8d32f054f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
