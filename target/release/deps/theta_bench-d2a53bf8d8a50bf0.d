/root/repo/target/release/deps/theta_bench-d2a53bf8d8a50bf0.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtheta_bench-d2a53bf8d8a50bf0.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libtheta_bench-d2a53bf8d8a50bf0.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
