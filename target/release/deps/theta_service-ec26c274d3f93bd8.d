/root/repo/target/release/deps/theta_service-ec26c274d3f93bd8.d: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/release/deps/theta_service-ec26c274d3f93bd8: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/client.rs:
crates/service/src/server.rs:
