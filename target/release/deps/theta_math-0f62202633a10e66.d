/root/repo/target/release/deps/theta_math-0f62202633a10e66.d: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/crt.rs crates/math/src/biguint.rs crates/math/src/mont.rs crates/math/src/prime.rs crates/math/src/bn254/mod.rs crates/math/src/bn254/curve.rs crates/math/src/bn254/fp.rs crates/math/src/bn254/fp12.rs crates/math/src/bn254/fp2.rs crates/math/src/bn254/fp6.rs crates/math/src/bn254/fr.rs crates/math/src/bn254/g1.rs crates/math/src/bn254/g2.rs crates/math/src/bn254/pairing.rs crates/math/src/ed25519/mod.rs crates/math/src/ed25519/fe.rs crates/math/src/ed25519/point.rs crates/math/src/ed25519/scalar.rs

/root/repo/target/release/deps/libtheta_math-0f62202633a10e66.rlib: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/crt.rs crates/math/src/biguint.rs crates/math/src/mont.rs crates/math/src/prime.rs crates/math/src/bn254/mod.rs crates/math/src/bn254/curve.rs crates/math/src/bn254/fp.rs crates/math/src/bn254/fp12.rs crates/math/src/bn254/fp2.rs crates/math/src/bn254/fp6.rs crates/math/src/bn254/fr.rs crates/math/src/bn254/g1.rs crates/math/src/bn254/g2.rs crates/math/src/bn254/pairing.rs crates/math/src/ed25519/mod.rs crates/math/src/ed25519/fe.rs crates/math/src/ed25519/point.rs crates/math/src/ed25519/scalar.rs

/root/repo/target/release/deps/libtheta_math-0f62202633a10e66.rmeta: crates/math/src/lib.rs crates/math/src/bigint.rs crates/math/src/crt.rs crates/math/src/biguint.rs crates/math/src/mont.rs crates/math/src/prime.rs crates/math/src/bn254/mod.rs crates/math/src/bn254/curve.rs crates/math/src/bn254/fp.rs crates/math/src/bn254/fp12.rs crates/math/src/bn254/fp2.rs crates/math/src/bn254/fp6.rs crates/math/src/bn254/fr.rs crates/math/src/bn254/g1.rs crates/math/src/bn254/g2.rs crates/math/src/bn254/pairing.rs crates/math/src/ed25519/mod.rs crates/math/src/ed25519/fe.rs crates/math/src/ed25519/point.rs crates/math/src/ed25519/scalar.rs

crates/math/src/lib.rs:
crates/math/src/bigint.rs:
crates/math/src/crt.rs:
crates/math/src/biguint.rs:
crates/math/src/mont.rs:
crates/math/src/prime.rs:
crates/math/src/bn254/mod.rs:
crates/math/src/bn254/curve.rs:
crates/math/src/bn254/fp.rs:
crates/math/src/bn254/fp12.rs:
crates/math/src/bn254/fp2.rs:
crates/math/src/bn254/fp6.rs:
crates/math/src/bn254/fr.rs:
crates/math/src/bn254/g1.rs:
crates/math/src/bn254/g2.rs:
crates/math/src/bn254/pairing.rs:
crates/math/src/ed25519/mod.rs:
crates/math/src/ed25519/fe.rs:
crates/math/src/ed25519/point.rs:
crates/math/src/ed25519/scalar.rs:
