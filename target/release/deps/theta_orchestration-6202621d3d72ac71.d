/root/repo/target/release/deps/theta_orchestration-6202621d3d72ac71.d: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

/root/repo/target/release/deps/theta_orchestration-6202621d3d72ac71: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

crates/orchestration/src/lib.rs:
crates/orchestration/src/cache.rs:
crates/orchestration/src/manager.rs:
