/root/repo/target/release/deps/table4_summary-cfd434ad414262c4.d: crates/bench/src/bin/table4_summary.rs

/root/repo/target/release/deps/table4_summary-cfd434ad414262c4: crates/bench/src/bin/table4_summary.rs

crates/bench/src/bin/table4_summary.rs:
