/root/repo/target/release/deps/fig5a_steady_state-4fb47014f1ff12d6.d: crates/bench/src/bin/fig5a_steady_state.rs

/root/repo/target/release/deps/fig5a_steady_state-4fb47014f1ff12d6: crates/bench/src/bin/fig5a_steady_state.rs

crates/bench/src/bin/fig5a_steady_state.rs:
