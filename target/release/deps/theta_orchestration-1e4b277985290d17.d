/root/repo/target/release/deps/theta_orchestration-1e4b277985290d17.d: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

/root/repo/target/release/deps/libtheta_orchestration-1e4b277985290d17.rlib: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

/root/repo/target/release/deps/libtheta_orchestration-1e4b277985290d17.rmeta: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

crates/orchestration/src/lib.rs:
crates/orchestration/src/manager.rs:
