/root/repo/target/release/deps/thetacrypt-bd2828d0b57ea35f.d: src/lib.rs

/root/repo/target/release/deps/libthetacrypt-bd2828d0b57ea35f.rlib: src/lib.rs

/root/repo/target/release/deps/libthetacrypt-bd2828d0b57ea35f.rmeta: src/lib.rs

src/lib.rs:
