/root/repo/target/release/deps/table2_deployments-7a38911e5f06f4c6.d: crates/bench/src/bin/table2_deployments.rs

/root/repo/target/release/deps/table2_deployments-7a38911e5f06f4c6: crates/bench/src/bin/table2_deployments.rs

crates/bench/src/bin/table2_deployments.rs:
