/root/repo/target/release/deps/theta_client-3147ab54ed71e8e3.d: crates/core/src/bin/theta_client.rs

/root/repo/target/release/deps/theta_client-3147ab54ed71e8e3: crates/core/src/bin/theta_client.rs

crates/core/src/bin/theta_client.rs:
