/root/repo/target/release/deps/theta_orchestration-68c0a697395fad7b.d: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

/root/repo/target/release/deps/libtheta_orchestration-68c0a697395fad7b.rlib: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

/root/repo/target/release/deps/libtheta_orchestration-68c0a697395fad7b.rmeta: crates/orchestration/src/lib.rs crates/orchestration/src/cache.rs crates/orchestration/src/manager.rs

crates/orchestration/src/lib.rs:
crates/orchestration/src/cache.rs:
crates/orchestration/src/manager.rs:
