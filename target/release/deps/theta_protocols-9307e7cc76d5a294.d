/root/repo/target/release/deps/theta_protocols-9307e7cc76d5a294.d: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

/root/repo/target/release/deps/theta_protocols-9307e7cc76d5a294: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

crates/protocols/src/lib.rs:
crates/protocols/src/kg20_protocol.rs:
crates/protocols/src/one_round.rs:
