/root/repo/target/release/deps/theta_protocols-aa3462ed177ce15d.d: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

/root/repo/target/release/deps/libtheta_protocols-aa3462ed177ce15d.rlib: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

/root/repo/target/release/deps/libtheta_protocols-aa3462ed177ce15d.rmeta: crates/protocols/src/lib.rs crates/protocols/src/kg20_protocol.rs crates/protocols/src/one_round.rs

crates/protocols/src/lib.rs:
crates/protocols/src/kg20_protocol.rs:
crates/protocols/src/one_round.rs:
