/root/repo/target/release/deps/ablation_frost_precompute-e73174de544e76a6.d: crates/bench/src/bin/ablation_frost_precompute.rs

/root/repo/target/release/deps/ablation_frost_precompute-e73174de544e76a6: crates/bench/src/bin/ablation_frost_precompute.rs

crates/bench/src/bin/ablation_frost_precompute.rs:
