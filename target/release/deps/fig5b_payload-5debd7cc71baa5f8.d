/root/repo/target/release/deps/fig5b_payload-5debd7cc71baa5f8.d: crates/bench/src/bin/fig5b_payload.rs

/root/repo/target/release/deps/fig5b_payload-5debd7cc71baa5f8: crates/bench/src/bin/fig5b_payload.rs

crates/bench/src/bin/fig5b_payload.rs:
