/root/repo/target/release/deps/theta_service-2cab5d0cd0adbd06.d: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/release/deps/libtheta_service-2cab5d0cd0adbd06.rlib: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/release/deps/libtheta_service-2cab5d0cd0adbd06.rmeta: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/client.rs:
crates/service/src/server.rs:
