/root/repo/target/release/deps/theta_service-fb0673cdd07fabeb.d: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/release/deps/theta_service-fb0673cdd07fabeb: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/client.rs:
crates/service/src/server.rs:
