/root/repo/target/release/deps/bytes-ee491347ebdfa467.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ee491347ebdfa467.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-ee491347ebdfa467.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
