/root/repo/target/release/deps/theta_codec-bd18a216d7f24675.d: crates/codec/src/lib.rs

/root/repo/target/release/deps/theta_codec-bd18a216d7f24675: crates/codec/src/lib.rs

crates/codec/src/lib.rs:
