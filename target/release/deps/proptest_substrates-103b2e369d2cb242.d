/root/repo/target/release/deps/proptest_substrates-103b2e369d2cb242.d: tests/proptest_substrates.rs

/root/repo/target/release/deps/proptest_substrates-103b2e369d2cb242: tests/proptest_substrates.rs

tests/proptest_substrates.rs:
