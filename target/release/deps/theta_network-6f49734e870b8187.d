/root/repo/target/release/deps/theta_network-6f49734e870b8187.d: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

/root/repo/target/release/deps/theta_network-6f49734e870b8187: crates/network/src/lib.rs crates/network/src/inmemory.rs crates/network/src/tcp.rs

crates/network/src/lib.rs:
crates/network/src/inmemory.rs:
crates/network/src/tcp.rs:
