/root/repo/target/release/deps/theta_keygen-5ca90b118839fd62.d: crates/core/src/bin/theta_keygen.rs

/root/repo/target/release/deps/theta_keygen-5ca90b118839fd62: crates/core/src/bin/theta_keygen.rs

crates/core/src/bin/theta_keygen.rs:
