/root/repo/target/release/deps/theta_metrics-c330a32bd49ba570.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

/root/repo/target/release/deps/libtheta_metrics-c330a32bd49ba570.rlib: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

/root/repo/target/release/deps/libtheta_metrics-c330a32bd49ba570.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
