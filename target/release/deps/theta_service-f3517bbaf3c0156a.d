/root/repo/target/release/deps/theta_service-f3517bbaf3c0156a.d: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/release/deps/libtheta_service-f3517bbaf3c0156a.rlib: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

/root/repo/target/release/deps/libtheta_service-f3517bbaf3c0156a.rmeta: crates/service/src/lib.rs crates/service/src/client.rs crates/service/src/server.rs

crates/service/src/lib.rs:
crates/service/src/client.rs:
crates/service/src/server.rs:
