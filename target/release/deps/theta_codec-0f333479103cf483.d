/root/repo/target/release/deps/theta_codec-0f333479103cf483.d: crates/codec/src/lib.rs

/root/repo/target/release/deps/libtheta_codec-0f333479103cf483.rlib: crates/codec/src/lib.rs

/root/repo/target/release/deps/libtheta_codec-0f333479103cf483.rmeta: crates/codec/src/lib.rs

crates/codec/src/lib.rs:
