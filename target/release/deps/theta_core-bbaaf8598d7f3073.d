/root/repo/target/release/deps/theta_core-bbaaf8598d7f3073.d: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/release/deps/theta_core-bbaaf8598d7f3073: crates/core/src/lib.rs crates/core/src/keyfile.rs

crates/core/src/lib.rs:
crates/core/src/keyfile.rs:
