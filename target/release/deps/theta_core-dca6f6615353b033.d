/root/repo/target/release/deps/theta_core-dca6f6615353b033.d: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/release/deps/libtheta_core-dca6f6615353b033.rlib: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/release/deps/libtheta_core-dca6f6615353b033.rmeta: crates/core/src/lib.rs crates/core/src/keyfile.rs

crates/core/src/lib.rs:
crates/core/src/keyfile.rs:
