/root/repo/target/release/deps/fig4_capacity-3867228fcd08eb27.d: crates/bench/src/bin/fig4_capacity.rs

/root/repo/target/release/deps/fig4_capacity-3867228fcd08eb27: crates/bench/src/bin/fig4_capacity.rs

crates/bench/src/bin/fig4_capacity.rs:
