/root/repo/target/release/deps/theta_orchestration-fc9732b64e32eeac.d: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

/root/repo/target/release/deps/theta_orchestration-fc9732b64e32eeac: crates/orchestration/src/lib.rs crates/orchestration/src/manager.rs

crates/orchestration/src/lib.rs:
crates/orchestration/src/manager.rs:
