/root/repo/target/release/deps/theta_schemes-4b9056636f44f4b5.d: crates/schemes/src/lib.rs crates/schemes/src/bls04.rs crates/schemes/src/bz03.rs crates/schemes/src/cks05.rs crates/schemes/src/common.rs crates/schemes/src/dkg.rs crates/schemes/src/dleq.rs crates/schemes/src/error.rs crates/schemes/src/hashing.rs crates/schemes/src/kg20.rs crates/schemes/src/registry.rs crates/schemes/src/sg02.rs crates/schemes/src/sh00.rs crates/schemes/src/wire.rs

/root/repo/target/release/deps/libtheta_schemes-4b9056636f44f4b5.rlib: crates/schemes/src/lib.rs crates/schemes/src/bls04.rs crates/schemes/src/bz03.rs crates/schemes/src/cks05.rs crates/schemes/src/common.rs crates/schemes/src/dkg.rs crates/schemes/src/dleq.rs crates/schemes/src/error.rs crates/schemes/src/hashing.rs crates/schemes/src/kg20.rs crates/schemes/src/registry.rs crates/schemes/src/sg02.rs crates/schemes/src/sh00.rs crates/schemes/src/wire.rs

/root/repo/target/release/deps/libtheta_schemes-4b9056636f44f4b5.rmeta: crates/schemes/src/lib.rs crates/schemes/src/bls04.rs crates/schemes/src/bz03.rs crates/schemes/src/cks05.rs crates/schemes/src/common.rs crates/schemes/src/dkg.rs crates/schemes/src/dleq.rs crates/schemes/src/error.rs crates/schemes/src/hashing.rs crates/schemes/src/kg20.rs crates/schemes/src/registry.rs crates/schemes/src/sg02.rs crates/schemes/src/sh00.rs crates/schemes/src/wire.rs

crates/schemes/src/lib.rs:
crates/schemes/src/bls04.rs:
crates/schemes/src/bz03.rs:
crates/schemes/src/cks05.rs:
crates/schemes/src/common.rs:
crates/schemes/src/dkg.rs:
crates/schemes/src/dleq.rs:
crates/schemes/src/error.rs:
crates/schemes/src/hashing.rs:
crates/schemes/src/kg20.rs:
crates/schemes/src/registry.rs:
crates/schemes/src/sg02.rs:
crates/schemes/src/sh00.rs:
crates/schemes/src/wire.rs:
