/root/repo/target/release/deps/criterion-e711bac21d04779c.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e711bac21d04779c.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-e711bac21d04779c.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
