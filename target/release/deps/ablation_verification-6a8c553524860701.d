/root/repo/target/release/deps/ablation_verification-6a8c553524860701.d: crates/bench/src/bin/ablation_verification.rs

/root/repo/target/release/deps/ablation_verification-6a8c553524860701: crates/bench/src/bin/ablation_verification.rs

crates/bench/src/bin/ablation_verification.rs:
