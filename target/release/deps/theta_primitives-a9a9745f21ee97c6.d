/root/repo/target/release/deps/theta_primitives-a9a9745f21ee97c6.d: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

/root/repo/target/release/deps/theta_primitives-a9a9745f21ee97c6: crates/primitives/src/lib.rs crates/primitives/src/aead.rs crates/primitives/src/chacha20.rs crates/primitives/src/kdf.rs crates/primitives/src/poly1305.rs crates/primitives/src/sha2.rs

crates/primitives/src/lib.rs:
crates/primitives/src/aead.rs:
crates/primitives/src/chacha20.rs:
crates/primitives/src/kdf.rs:
crates/primitives/src/poly1305.rs:
crates/primitives/src/sha2.rs:
