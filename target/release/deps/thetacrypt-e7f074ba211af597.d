/root/repo/target/release/deps/thetacrypt-e7f074ba211af597.d: src/lib.rs

/root/repo/target/release/deps/thetacrypt-e7f074ba211af597: src/lib.rs

src/lib.rs:
