/root/repo/target/release/deps/theta_node-531807d13fe71a14.d: crates/core/src/bin/theta_node.rs

/root/repo/target/release/deps/theta_node-531807d13fe71a14: crates/core/src/bin/theta_node.rs

crates/core/src/bin/theta_node.rs:
