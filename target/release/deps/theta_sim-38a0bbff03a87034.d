/root/repo/target/release/deps/theta_sim-38a0bbff03a87034.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

/root/repo/target/release/deps/theta_sim-38a0bbff03a87034: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/deployment.rs:
crates/sim/src/engine.rs:
crates/sim/src/experiment.rs:
