/root/repo/target/release/deps/parking_lot-6f14d40396329b75.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6f14d40396329b75.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-6f14d40396329b75.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
