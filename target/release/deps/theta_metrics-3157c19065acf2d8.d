/root/repo/target/release/deps/theta_metrics-3157c19065acf2d8.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

/root/repo/target/release/deps/theta_metrics-3157c19065acf2d8: crates/metrics/src/lib.rs crates/metrics/src/counters.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
