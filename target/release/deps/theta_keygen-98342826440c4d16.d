/root/repo/target/release/deps/theta_keygen-98342826440c4d16.d: crates/core/src/bin/theta_keygen.rs

/root/repo/target/release/deps/theta_keygen-98342826440c4d16: crates/core/src/bin/theta_keygen.rs

crates/core/src/bin/theta_keygen.rs:
