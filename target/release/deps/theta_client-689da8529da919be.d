/root/repo/target/release/deps/theta_client-689da8529da919be.d: crates/core/src/bin/theta_client.rs

/root/repo/target/release/deps/theta_client-689da8529da919be: crates/core/src/bin/theta_client.rs

crates/core/src/bin/theta_client.rs:
