/root/repo/target/release/deps/live_vs_sim-88d80e7b265542d1.d: crates/bench/src/bin/live_vs_sim.rs

/root/repo/target/release/deps/live_vs_sim-88d80e7b265542d1: crates/bench/src/bin/live_vs_sim.rs

crates/bench/src/bin/live_vs_sim.rs:
