/root/repo/target/release/deps/integration_theta_network-5064ad7d3fe86381.d: tests/integration_theta_network.rs

/root/repo/target/release/deps/integration_theta_network-5064ad7d3fe86381: tests/integration_theta_network.rs

tests/integration_theta_network.rs:
