/root/repo/target/release/deps/rand-17a66e89f5124cf7.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-17a66e89f5124cf7.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-17a66e89f5124cf7.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
