/root/repo/target/release/deps/theta_sim-b8dc4d0e2c2f7bfe.d: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

/root/repo/target/release/deps/libtheta_sim-b8dc4d0e2c2f7bfe.rlib: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

/root/repo/target/release/deps/libtheta_sim-b8dc4d0e2c2f7bfe.rmeta: crates/sim/src/lib.rs crates/sim/src/cost.rs crates/sim/src/deployment.rs crates/sim/src/engine.rs crates/sim/src/experiment.rs

crates/sim/src/lib.rs:
crates/sim/src/cost.rs:
crates/sim/src/deployment.rs:
crates/sim/src/engine.rs:
crates/sim/src/experiment.rs:
