/root/repo/target/release/deps/fig5b_payload-fb10928511410fd7.d: crates/bench/src/bin/fig5b_payload.rs

/root/repo/target/release/deps/fig5b_payload-fb10928511410fd7: crates/bench/src/bin/fig5b_payload.rs

crates/bench/src/bin/fig5b_payload.rs:
