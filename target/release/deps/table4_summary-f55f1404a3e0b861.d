/root/repo/target/release/deps/table4_summary-f55f1404a3e0b861.d: crates/bench/src/bin/table4_summary.rs

/root/repo/target/release/deps/table4_summary-f55f1404a3e0b861: crates/bench/src/bin/table4_summary.rs

crates/bench/src/bin/table4_summary.rs:
