/root/repo/target/release/deps/table3_params-417646a70135080c.d: crates/bench/src/bin/table3_params.rs

/root/repo/target/release/deps/table3_params-417646a70135080c: crates/bench/src/bin/table3_params.rs

crates/bench/src/bin/table3_params.rs:
