/root/repo/target/release/deps/live_vs_sim-6346857438c3cea7.d: crates/bench/src/bin/live_vs_sim.rs

/root/repo/target/release/deps/live_vs_sim-6346857438c3cea7: crates/bench/src/bin/live_vs_sim.rs

crates/bench/src/bin/live_vs_sim.rs:
