/root/repo/target/release/deps/table1_schemes-524b8ec9772b1071.d: crates/bench/src/bin/table1_schemes.rs

/root/repo/target/release/deps/table1_schemes-524b8ec9772b1071: crates/bench/src/bin/table1_schemes.rs

crates/bench/src/bin/table1_schemes.rs:
