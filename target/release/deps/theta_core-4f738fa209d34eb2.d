/root/repo/target/release/deps/theta_core-4f738fa209d34eb2.d: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/release/deps/libtheta_core-4f738fa209d34eb2.rlib: crates/core/src/lib.rs crates/core/src/keyfile.rs

/root/repo/target/release/deps/libtheta_core-4f738fa209d34eb2.rmeta: crates/core/src/lib.rs crates/core/src/keyfile.rs

crates/core/src/lib.rs:
crates/core/src/keyfile.rs:
