/root/repo/target/release/deps/ablation_frost_precompute-d977c4e99d67f8cf.d: crates/bench/src/bin/ablation_frost_precompute.rs

/root/repo/target/release/deps/ablation_frost_precompute-d977c4e99d67f8cf: crates/bench/src/bin/ablation_frost_precompute.rs

crates/bench/src/bin/ablation_frost_precompute.rs:
