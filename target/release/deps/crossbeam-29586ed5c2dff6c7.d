/root/repo/target/release/deps/crossbeam-29586ed5c2dff6c7.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-29586ed5c2dff6c7.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-29586ed5c2dff6c7.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
