/root/repo/target/release/examples/threshold_wallet-378e78d45e858aca.d: examples/threshold_wallet.rs

/root/repo/target/release/examples/threshold_wallet-378e78d45e858aca: examples/threshold_wallet.rs

examples/threshold_wallet.rs:
