/root/repo/target/release/examples/randomness_beacon-7cd87829024189bf.d: examples/randomness_beacon.rs

/root/repo/target/release/examples/randomness_beacon-7cd87829024189bf: examples/randomness_beacon.rs

examples/randomness_beacon.rs:
