//! Offline stand-in for the `rand` crate (API subset used by thetacrypt).
//! Functional: xoshiro256** core, so tests genuinely run.

use std::fmt;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

fn entropy_u64() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let addr = &t as *const _ as u64;
    t ^ addr.rotate_left(32) ^ 0x9e3779b97f4a7c15
}

pub mod rngs {
    use super::*;

    /// xoshiro256** seeded via splitmix64 (statistically solid, not the
    /// real StdRng, but deterministic per seed which is all tests need).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.step().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
    }

    /// Process-global RNG standing in for the OS entropy source.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    fn with_global<T>(f: impl FnOnce(&mut StdRng) -> T) -> T {
        use std::sync::{Mutex, OnceLock};
        static GLOBAL: OnceLock<Mutex<StdRng>> = OnceLock::new();
        let m = GLOBAL.get_or_init(|| Mutex::new(StdRng::seed_from_u64(super::entropy_u64())));
        f(&mut m.lock().unwrap())
    }

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            with_global(|r| r.next_u32())
        }
        fn next_u64(&mut self) -> u64 {
            with_global(|r| r.next_u64())
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            with_global(|r| r.fill_bytes(dest))
        }
    }
}

/// Marker for types `gen()` can produce.
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                let mut b = [0u8; std::mem::size_of::<$t>()];
                rng.fill_bytes(&mut b);
                <$t>::from_le_bytes(b)
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.next_u64() as usize % self.len())
            }
        }
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.next_u64() as usize % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub fn thread_rng() -> rngs::StdRng {
    use crate::SeedableRng;
    rngs::StdRng::seed_from_u64(entropy_u64())
}
