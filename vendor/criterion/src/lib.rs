//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` surface the
//! workspace benches use, with a simple wall-clock measurement loop:
//! a short warm-up, then a time-budgeted batch whose mean per-iteration
//! time is printed in Criterion-like form. Honours `CRITERION_QUICK=1`
//! to shrink the measurement budget for smoke runs.

use std::time::{Duration, Instant};

fn budget() -> Duration {
    if std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false) {
        Duration::from_millis(30)
    } else {
        Duration::from_millis(200)
    }
}

/// Re-export-compatible opaque hint.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    pub mean_ns: f64,
    pub iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || (warm_start.elapsed() < Duration::from_millis(5) && warm_iters < 1000) {
            black_box(f());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let target = budget().as_nanos() as f64;
        let n = ((target / est.max(1.0)) as u64).clamp(1, 100_000);
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / n as f64;
        self.iters = n;
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.mean_ns;
    let (val, unit) = if ns < 1_000.0 {
        (ns, "ns")
    } else if ns < 1_000_000.0 {
        (ns / 1_000.0, "µs")
    } else if ns < 1_000_000_000.0 {
        (ns / 1_000_000.0, "ms")
    } else {
        (ns / 1_000_000_000.0, "s")
    };
    println!("{:<40} time: {:>10.3} {:<2} ({} iters)", name, val, unit, b.iters);
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0, iters: 0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0, iters: 0 };
        f(&mut b);
        report(id, &b);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
