//! Offline stand-in for `crossbeam` (channel subset used by thetacrypt).
//! Functional MPMC channels over Mutex+Condvar; `select!` polls.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cond: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        capacity: Option<usize>,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    enum ReceiverKind<T> {
        Normal(Arc<Shared<T>>),
        Never,
        At { when: Instant, fired: Arc<AtomicBool> },
    }

    pub struct Receiver<T> {
        kind: ReceiverKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            match &self.kind {
                ReceiverKind::Normal(shared) => {
                    shared.receivers.fetch_add(1, Ordering::SeqCst);
                    Receiver { kind: ReceiverKind::Normal(shared.clone()) }
                }
                ReceiverKind::Never => Receiver { kind: ReceiverKind::Never },
                ReceiverKind::At { when, fired } => Receiver {
                    kind: ReceiverKind::At { when: *when, fired: fired.clone() },
                },
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let ReceiverKind::Normal(shared) = &self.kind {
                if shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                    shared.cond.notify_all();
                }
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap();
            if let Some(cap) = self.shared.capacity {
                while q.len() >= cap {
                    if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    let (guard, _) = self
                        .shared
                        .cond
                        .wait_timeout(q, Duration::from_millis(5))
                        .unwrap();
                    q = guard;
                }
            }
            q.push_back(value);
            drop(q);
            self.shared.cond.notify_all();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            match &self.kind {
                ReceiverKind::Normal(shared) => {
                    let mut q = shared.queue.lock().unwrap();
                    if let Some(v) = q.pop_front() {
                        drop(q);
                        shared.cond.notify_all();
                        return Ok(v);
                    }
                    if shared.senders.load(Ordering::SeqCst) == 0 {
                        Err(TryRecvError::Disconnected)
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
                ReceiverKind::Never => Err(TryRecvError::Empty),
                ReceiverKind::At { when, fired } => {
                    if Instant::now() >= *when
                        && fired
                            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                    {
                        Err(TryRecvError::Disconnected) // see at(): fires via select poll
                    } else {
                        Err(TryRecvError::Empty)
                    }
                }
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                match self.recv_timeout(Duration::from_millis(50)) {
                    Ok(v) => return Ok(v),
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return Err(RecvError),
                }
            }
        }

        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            self.recv_timeout(deadline.saturating_duration_since(Instant::now()))
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            match &self.kind {
                ReceiverKind::Normal(shared) => {
                    let deadline = Instant::now() + timeout;
                    let mut q = shared.queue.lock().unwrap();
                    loop {
                        if let Some(v) = q.pop_front() {
                            drop(q);
                            shared.cond.notify_all();
                            return Ok(v);
                        }
                        if shared.senders.load(Ordering::SeqCst) == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        let (guard, _) = shared
                            .cond
                            .wait_timeout(q, deadline - now)
                            .unwrap();
                        q = guard;
                    }
                }
                ReceiverKind::Never => {
                    std::thread::sleep(timeout);
                    Err(RecvTimeoutError::Timeout)
                }
                ReceiverKind::At { when, fired } => {
                    let deadline = Instant::now() + timeout;
                    loop {
                        if Instant::now() >= *when
                            && fired
                                .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                                .is_ok()
                        {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        if Instant::now() >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        std::thread::sleep(Duration::from_micros(500));
                    }
                }
            }
        }

        /// select! support: Empty / ready probe without consuming.
        pub fn stub_ready(&self) -> bool {
            match &self.kind {
                ReceiverKind::Normal(shared) => {
                    !shared.queue.lock().unwrap().is_empty()
                        || shared.senders.load(Ordering::SeqCst) == 0
                }
                ReceiverKind::Never => false,
                ReceiverKind::At { when, fired } => {
                    !fired.load(Ordering::SeqCst) && Instant::now() >= *when
                }
            }
        }

        /// select! support: blocking recv yielding the arm's Result type.
        pub fn stub_select_recv(&self) -> Result<T, RecvError> {
            match &self.kind {
                ReceiverKind::Normal(_) => match self.try_recv() {
                    Ok(v) => Ok(v),
                    Err(_) => Err(RecvError),
                },
                ReceiverKind::Never => Err(RecvError),
                ReceiverKind::At { .. } => Err(RecvError),
            }
        }
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
        });
        (
            Sender { shared: shared.clone() },
            Receiver { kind: ReceiverKind::Normal(shared) },
        )
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }


    /// Support for the `select!` stub: one non-blocking poll, `None`
    /// when the channel is merely empty.
    pub fn __select_poll<T>(r: &Receiver<T>) -> Option<Result<T, RecvError>> {
        match r.try_recv() {
            Ok(v) => Some(Ok(v)),
            Err(TryRecvError::Disconnected) => Some(Err(RecvError)),
            Err(TryRecvError::Empty) => None,
        }
    }

    pub fn never<T>() -> Receiver<T> {
        Receiver { kind: ReceiverKind::Never }
    }

    pub fn at(when: Instant) -> Receiver<Instant> {
        Receiver {
            kind: ReceiverKind::At { when, fired: Arc::new(AtomicBool::new(false)) },
        }
    }

    pub fn after(duration: Duration) -> Receiver<Instant> {
        at(Instant::now() + duration)
    }
}

/// Polling select!: semantically equivalent for the arm bodies (each arm
/// fires with Ok(msg) on a message, Err on disconnect/timer), trading
/// blocking efficiency for simplicity.
#[macro_export]
macro_rules! select {
    ($(recv($r:expr) -> $msg:pat => $body:expr),+ $(,)?) => {{
        loop {
            let mut fired = false;
            $(
                if !fired {
                    // The helper ties the Result's Ok type to the
                    // receiver, so `_` patterns need no annotation.
                    if let Some(res) = $crate::channel::__select_poll(&$r) {
                        fired = true;
                        let $msg = res;
                        $body
                    }
                }
            )+
            if fired {
                break;
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
        }
    }};
}
