//! Model-aware mirrors of `std::sync` primitives.
//!
//! Every type here is dual-mode: inside a [`crate::model`] execution the
//! operations are scheduling points driven by the exploration runtime;
//! outside a model they delegate straight to `std`, so code compiled
//! against these types keeps working in ordinary tests and binaries.

use crate::rt::{self, current_ctx};
use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

pub use std::sync::Arc;

pub mod atomic {
    //! Model-aware atomics. Inside a model every operation is a
    //! scheduling point and executes with `SeqCst` semantics regardless
    //! of the requested ordering: the checker explores interleavings
    //! under sequential consistency (see the soundness note on
    //! [`crate::model`]); it does not model weak-memory reordering.

    use crate::rt;
    pub use std::sync::atomic::Ordering;

    macro_rules! numeric_atomic {
        ($name:ident, $std:ident, $ty:ty) => {
            /// Model-aware mirror of `std::sync::atomic` counterpart.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Mirror of the std constructor.
                pub const fn new(v: $ty) -> Self {
                    Self { inner: std::sync::atomic::$std::new(v) }
                }

                /// Loads the value (scheduling point inside a model).
                pub fn load(&self, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.inner.load(Ordering::SeqCst)
                }

                /// Stores `v` (scheduling point inside a model).
                pub fn store(&self, v: $ty, _order: Ordering) {
                    rt::yield_point();
                    self.inner.store(v, Ordering::SeqCst)
                }

                /// Swaps in `v`, returning the previous value.
                pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.inner.swap(v, Ordering::SeqCst)
                }

                /// Adds `v`, returning the previous value.
                pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.inner.fetch_add(v, Ordering::SeqCst)
                }

                /// Subtracts `v`, returning the previous value.
                pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.inner.fetch_sub(v, Ordering::SeqCst)
                }

                /// Bitwise-or with `v`, returning the previous value.
                pub fn fetch_or(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.inner.fetch_or(v, Ordering::SeqCst)
                }

                /// Bitwise-and with `v`, returning the previous value.
                pub fn fetch_and(&self, v: $ty, _order: Ordering) -> $ty {
                    rt::yield_point();
                    self.inner.fetch_and(v, Ordering::SeqCst)
                }

                /// Mirror of std `compare_exchange`.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::yield_point();
                    self.inner
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Mirror of std `compare_exchange_weak` (never fails
                /// spuriously in the model — spurious failure is a
                /// hardware artifact, not an interleaving).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Consumes the atomic, returning the inner value.
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }

                /// Mutable access without synchronization.
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.inner.get_mut()
                }
            }
        };
    }

    numeric_atomic!(AtomicUsize, AtomicUsize, usize);
    numeric_atomic!(AtomicU32, AtomicU32, u32);
    numeric_atomic!(AtomicU64, AtomicU64, u64);
    numeric_atomic!(AtomicI64, AtomicI64, i64);

    /// Model-aware mirror of `std::sync::atomic::AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Mirror of the std constructor.
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        /// Loads the value (scheduling point inside a model).
        pub fn load(&self, _order: Ordering) -> bool {
            rt::yield_point();
            self.inner.load(Ordering::SeqCst)
        }

        /// Stores `v` (scheduling point inside a model).
        pub fn store(&self, v: bool, _order: Ordering) {
            rt::yield_point();
            self.inner.store(v, Ordering::SeqCst)
        }

        /// Swaps in `v`, returning the previous value.
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            rt::yield_point();
            self.inner.swap(v, Ordering::SeqCst)
        }

        /// Mirror of std `compare_exchange`.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            rt::yield_point();
            self.inner
                .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
        }

        /// Bitwise-or with `v`, returning the previous value.
        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            rt::yield_point();
            self.inner.fetch_or(v, Ordering::SeqCst)
        }

        /// Bitwise-and with `v`, returning the previous value.
        pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
            rt::yield_point();
            self.inner.fetch_and(v, Ordering::SeqCst)
        }

        /// Consumes the atomic, returning the inner value.
        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }
    }

    /// Model-aware memory fence (a scheduling point; `SeqCst` inside).
    pub fn fence(_order: Ordering) {
        rt::yield_point();
        std::sync::atomic::fence(Ordering::SeqCst);
    }
}

/// Model-aware mirror of `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releasing it wakes model threads
/// blocked on the same mutex.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `None` only after the guard was dismantled for a condvar wait.
    guard: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Mirror of the std constructor.
    pub const fn new(t: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(t) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The identity used for scheduler bookkeeping. Addresses are
    /// stable for the lifetime of the mutex, which spans the execution.
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    fn wrap<'a>(&'a self, guard: std::sync::MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        MutexGuard { guard: Some(guard), lock: self }
    }

    /// Mirror of std `lock`. Inside a model, acquisition is a
    /// scheduling point and contention blocks the model thread.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match current_ctx() {
            Some((exec, tid)) => loop {
                exec.switch(tid, None);
                match self.inner.try_lock() {
                    Ok(g) => return Ok(self.wrap(g)),
                    Err(TryLockError::WouldBlock) => exec.block_on_mutex(tid, self.addr()),
                    Err(TryLockError::Poisoned(e)) => {
                        return Err(PoisonError::new(self.wrap(e.into_inner())));
                    }
                }
            },
            None => match self.inner.lock() {
                Ok(g) => Ok(self.wrap(g)),
                Err(e) => Err(PoisonError::new(self.wrap(e.into_inner()))),
            },
        }
    }

    /// Mirror of std `try_lock` (a scheduling point, never blocks).
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if current_ctx().is_some() {
            rt::yield_point();
        }
        match self.inner.try_lock() {
            Ok(g) => Ok(self.wrap(g)),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(e)) => {
                Err(TryLockError::Poisoned(PoisonError::new(self.wrap(e.into_inner()))))
            }
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.inner.get_mut()
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard dismantled")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard dismantled")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(g) = self.guard.take() {
            drop(g);
            if let Some((exec, _tid)) = current_ctx() {
                exec.mutex_released(self.lock.addr());
            }
        }
    }
}

/// Result of a timed condvar wait (mirrors `std::sync::WaitTimeoutResult`,
/// which has no public constructor).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-aware mirror of `std::sync::Condvar`. The modeled semantics
/// are exactly the ones lost-wakeup bugs depend on: a notify with no
/// parked waiter is lost.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Mirror of the std constructor.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    /// Mirror of std `wait`: atomically releases the mutex and parks.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match current_ctx() {
            Some((exec, tid)) => {
                let lock = guard.lock;
                // The park-and-release pair is atomic with respect to
                // other model threads: this thread holds the scheduler
                // token from here until the switch inside condvar_wait.
                drop(guard);
                exec.condvar_wait(tid, self.addr());
                lock.lock()
            }
            None => {
                let lock = guard.lock;
                let inner = guard.guard.take().expect("guard dismantled");
                match self.inner.wait(inner) {
                    Ok(g) => Ok(lock.wrap(g)),
                    Err(e) => Err(PoisonError::new(lock.wrap(e.into_inner()))),
                }
            }
        }
    }

    /// Mirror of std `wait_timeout`. Inside a model the timeout is not
    /// modeled (time is not part of the state space): the wait behaves
    /// like [`Condvar::wait`], and code whose *correctness* (rather than
    /// liveness) depends on the timeout firing will be reported as a
    /// deadlock by the scheduler.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match current_ctx() {
            Some(_) => match self.wait(guard) {
                Ok(g) => Ok((g, WaitTimeoutResult { timed_out: false })),
                Err(e) => {
                    let g = e.into_inner();
                    Err(PoisonError::new((g, WaitTimeoutResult { timed_out: false })))
                }
            },
            None => {
                let lock = guard.lock;
                let mut guard = guard;
                let inner = guard.guard.take().expect("guard dismantled");
                match self.inner.wait_timeout(inner, dur) {
                    Ok((g, t)) => {
                        Ok((lock.wrap(g), WaitTimeoutResult { timed_out: t.timed_out() }))
                    }
                    Err(e) => {
                        let (g, t) = e.into_inner();
                        Err(PoisonError::new((
                            lock.wrap(g),
                            WaitTimeoutResult { timed_out: t.timed_out() },
                        )))
                    }
                }
            }
        }
    }

    /// Mirror of std `notify_one` (a scheduling point).
    pub fn notify_one(&self) {
        match current_ctx() {
            Some((exec, tid)) => {
                exec.switch(tid, None);
                exec.condvar_notify_one(self.addr());
            }
            None => self.inner.notify_one(),
        }
    }

    /// Mirror of std `notify_all` (a scheduling point).
    pub fn notify_all(&self) {
        match current_ctx() {
            Some((exec, tid)) => {
                exec.switch(tid, None);
                exec.condvar_notify_all(self.addr());
            }
            None => self.inner.notify_all(),
        }
    }
}
