//! Offline stand-in for [`loom`](https://docs.rs/loom): systematic
//! concurrency model checking for the API subset thetacrypt uses.
//!
//! The build environment has no crates registry, so like the other
//! `vendor/` crates this re-implements exactly the surface the workspace
//! needs: `loom::model`, `loom::thread::{spawn, yield_now}`, and the
//! `loom::sync` mirrors of `Mutex`, `Condvar` and the atomics.
//!
//! # How it differs from real loom
//!
//! - **Exploration**: CHESS-style stateless DFS over scheduling choices
//!   with a preemption bound (default 2, `LOOM_MAX_PREEMPTIONS` to
//!   change, [`model_bounded`] for per-model control), instead of loom's
//!   DPOR. Two-thread models are cheap to explore fully unbounded.
//! - **Memory model**: executions are sequentially consistent; weaker
//!   orderings are *executed* as `SeqCst` (interleaving bugs are caught,
//!   compiler/CPU reordering is not — document every `Relaxed` with the
//!   invariant that makes it safe).
//! - **Dual mode**: outside [`model`], every primitive delegates to
//!   `std`, so code built against these types runs normally in ordinary
//!   tests.
//!
//! # Example
//!
//! ```
//! use loom::sync::atomic::{AtomicUsize, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let h: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = n.clone();
//!             loom::thread::spawn(move || n.fetch_add(1, Ordering::SeqCst))
//!         })
//!         .collect();
//!     for t in h {
//!         t.join().unwrap();
//!     }
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```

mod rt;
pub mod sync;

pub use rt::{model, model_bounded};

pub mod thread {
    //! Model-aware mirrors of `std::thread` spawning.
    pub use crate::rt::{spawn, yield_now, JoinHandle};
}

pub mod hint {
    //! Mirror of `std::hint` spin hints (a scheduling point in a model).
    /// Spin-loop hint; inside a model this is a scheduling point so
    /// spin-waiting threads cannot monopolize the token.
    pub fn spin_loop() {
        crate::rt::yield_point();
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::{Arc, Condvar, Mutex};

    /// The canonical store-buffer-free SC check: two increments always
    /// sum to 2.
    #[test]
    fn counter_increments_are_atomic() {
        crate::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    crate::thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 2);
        });
    }

    /// The checker must FIND the classic racy read-modify-write: two
    /// load-then-store increments can lose an update under some
    /// schedule.
    #[test]
    fn finds_lost_update() {
        let found = std::panic::catch_unwind(|| {
            crate::model(|| {
                let n = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..2)
                    .map(|_| {
                        let n = n.clone();
                        crate::thread::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(found.is_err(), "model must discover the lost-update schedule");
    }

    /// The checker must find a lost wakeup when the flag check and the
    /// park are not under the same critical section.
    #[test]
    fn finds_lost_wakeup_and_reports_deadlock() {
        let found = std::panic::catch_unwind(|| {
            crate::model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let waiter = {
                    let pair = pair.clone();
                    crate::thread::spawn(move || {
                        // BUG under test: the flag check and the park
                        // are separate critical sections, so the notify
                        // can land in the gap and be lost.
                        let flagged = { *pair.0.lock().unwrap() };
                        if !flagged {
                            let g = pair.0.lock().unwrap();
                            let _g = pair.1.wait(g).unwrap();
                        }
                    })
                };
                let notifier = {
                    let pair = pair.clone();
                    crate::thread::spawn(move || {
                        *pair.0.lock().unwrap() = true;
                        pair.1.notify_one();
                    })
                };
                waiter.join().unwrap();
                notifier.join().unwrap();
            });
        });
        assert!(found.is_err(), "model must discover the lost-wakeup deadlock");
    }

    /// Correctly synchronized condvar handoff passes exhaustively.
    #[test]
    fn correct_condvar_handoff_passes() {
        crate::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let waiter = {
                let pair = pair.clone();
                crate::thread::spawn(move || {
                    let mut g = pair.0.lock().unwrap();
                    while !*g {
                        g = pair.1.wait(g).unwrap();
                    }
                })
            };
            let notifier = {
                let pair = pair.clone();
                crate::thread::spawn(move || {
                    *pair.0.lock().unwrap() = true;
                    pair.1.notify_one();
                })
            };
            waiter.join().unwrap();
            notifier.join().unwrap();
        });
    }

    /// Mutexes provide mutual exclusion across all schedules.
    #[test]
    fn mutex_mutual_exclusion() {
        crate::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = m.clone();
                    crate::thread::spawn(move || {
                        let mut g = m.lock().unwrap();
                        let v = *g;
                        *g = v + 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    /// Outside a model, the primitives behave like std (dual mode).
    #[test]
    fn passthrough_outside_model() {
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
        let a = AtomicUsize::new(3);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 3);
        let h = crate::thread::spawn(|| 7u8);
        assert_eq!(h.join().unwrap(), 7);
    }
}
