//! The scheduler: systematic exploration of thread interleavings.
//!
//! One execution runs every model thread on a real OS thread, but a
//! token-passing scheduler grants the CPU to exactly one thread at a
//! time. Every shared-memory operation (atomic access, mutex
//! acquisition, condvar op, spawn/join/yield) first calls into
//! [`Execution::switch`], which is a *choice point*: the scheduler picks
//! the next thread to run, either from the prescribed replay prefix or
//! by the default policy (keep the current thread running).
//!
//! [`model`] drives a depth-first enumeration over those choices: after
//! each execution it finds the deepest choice point with an untried
//! alternative, and replays with that prefix. Schedules are explored in
//! lexicographic order of choice indices, so the search never repeats a
//! schedule and terminates. A CHESS-style preemption bound keeps the
//! space tractable for 3+-thread models; 2-thread models are typically
//! explored unbounded (set the bound to `usize::MAX`).
//!
//! Soundness note: all inter-thread transitions hand the token through
//! one `std::sync::Mutex`, so every modeled execution is sequentially
//! consistent and data-race-free at the OS level. The checker therefore
//! verifies *interleaving* correctness (lost wakeups, double schedules,
//! torn accounting), not weak-memory reorderings — `Relaxed` operations
//! are executed as `SeqCst`. Pair it with the comment-the-invariant rule
//! for every `Ordering::Relaxed` in reviewed code.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Sentinel panic payload used to unwind every controlled thread when an
/// execution aborts (deadlock or a real panic on another thread).
pub(crate) struct AbortExecution;

/// `current` value meaning "no thread runnable, execution complete".
const DONE: usize = usize::MAX;

/// What a controlled thread is blocked on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Resource {
    /// Waiting to acquire the mutex with this identity.
    Mutex(usize),
    /// Parked on the condvar with this identity.
    Condvar(usize),
    /// Joining the thread with this id.
    Join(usize),
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Eligible to be granted the token.
    Ready,
    /// Currently holds the token.
    Running,
    /// Not eligible until the resource is released/notified/finished.
    Blocked(Resource),
    /// The thread's closure returned (or unwound).
    Finished,
}

/// One recorded scheduling decision.
struct TraceStep {
    /// Candidate threads in canonical order: the previously running
    /// thread first (continuing is never a preemption), then the rest
    /// ascending. Identical prefixes always reproduce identical
    /// candidate lists because executions are deterministic.
    candidates: Vec<usize>,
    /// Index into `candidates` of the thread actually chosen.
    chosen_idx: usize,
    /// Preemptions consumed by the schedule before this step.
    preemptions_before: usize,
    /// The thread that held the token when this choice was made.
    prev_running: usize,
}

struct ExecState {
    status: Vec<Status>,
    /// Thread currently granted the token (or [`DONE`]).
    current: usize,
    /// Replay prefix of choices (thread ids) from the DFS driver.
    schedule: Vec<usize>,
    /// Next choice index.
    step: usize,
    trace: Vec<TraceStep>,
    /// FIFO waiters per condvar identity (assoc list keeps iteration
    /// deterministic — no HashMap).
    cond_waiters: Vec<(usize, VecDeque<usize>)>,
    /// First real panic raised by any thread this execution.
    panic_payload: Option<Box<dyn Any + Send + 'static>>,
    aborting: bool,
    /// Threads not yet `Finished`.
    live: usize,
    preemption_bound: usize,
    preemptions_used: usize,
}

pub(crate) struct Execution {
    inner: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution + thread id of the calling thread, when it is a
/// controlled model thread.
pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn set_ctx(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// A scheduling point for the calling thread, if it is controlled.
/// Called before every shared-memory operation.
#[inline]
pub(crate) fn yield_point() {
    if let Some((exec, tid)) = current_ctx() {
        exec.switch(tid, None);
    }
}

impl Execution {
    fn new(schedule: Vec<usize>, preemption_bound: usize) -> Execution {
        Execution {
            inner: Mutex::new(ExecState {
                status: vec![Status::Running],
                current: 0,
                schedule,
                step: 0,
                trace: Vec::new(),
                cond_waiters: Vec::new(),
                panic_payload: None,
                aborting: false,
                live: 1,
                preemption_bound,
                preemptions_used: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Registers a newly spawned thread; it starts `Ready` and runs when
    /// first granted the token.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.inner.lock().unwrap();
        st.status.push(Status::Ready);
        st.live += 1;
        assert!(st.status.len() <= 16, "loom-lite: too many model threads");
        st.status.len() - 1
    }

    /// Blocks a freshly spawned thread until the scheduler first grants
    /// it the token.
    fn wait_first_grant(&self, tid: usize) {
        let mut st = self.inner.lock().unwrap();
        while st.current != tid && !st.aborting {
            st = self.cv.wait(st).unwrap();
        }
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        st.status[tid] = Status::Running;
    }

    /// The core choice point: records `tid`'s new status, lets the
    /// scheduler pick the next thread, and blocks until `tid` is granted
    /// the token again. `block_on == None` means "still runnable".
    pub(crate) fn switch(&self, tid: usize, block_on: Option<Resource>) {
        let mut st = self.inner.lock().unwrap();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        st.status[tid] = match block_on {
            None => Status::Ready,
            Some(r) => Status::Blocked(r),
        };
        self.choose_next(&mut st, tid);
        self.cv.notify_all();
        while st.current != tid && !st.aborting {
            st = self.cv.wait(st).unwrap();
        }
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortExecution);
        }
        st.status[tid] = Status::Running;
    }

    /// Picks the next thread to grant. Default policy: keep `prev`
    /// running (non-preemptive), else the lowest-id ready thread. A
    /// replay prefix overrides the default.
    fn choose_next(&self, st: &mut ExecState, prev: usize) {
        let mut candidates: Vec<usize> = Vec::new();
        if matches!(st.status[prev], Status::Ready) {
            candidates.push(prev);
        }
        for t in 0..st.status.len() {
            if t != prev && matches!(st.status[t], Status::Ready) {
                candidates.push(t);
            }
        }
        if candidates.is_empty() {
            if st.live == 0 {
                st.current = DONE;
                return;
            }
            // Threads alive but none runnable: deadlock. Abort and
            // report with the schedule that got here.
            let blocked: Vec<(usize, Resource)> = st
                .status
                .iter()
                .enumerate()
                .filter_map(|(t, s)| match s {
                    Status::Blocked(r) => Some((t, *r)),
                    _ => None,
                })
                .collect();
            st.panic_payload.get_or_insert_with(|| {
                Box::new(format!(
                    "loom-lite: deadlock — blocked threads {blocked:?}, schedule {:?}",
                    st.trace
                        .iter()
                        .map(|s| s.candidates[s.chosen_idx])
                        .collect::<Vec<_>>()
                ))
            });
            st.aborting = true;
            return;
        }
        let chosen = if st.step < st.schedule.len() {
            let c = st.schedule[st.step];
            assert!(
                candidates.contains(&c),
                "loom-lite: nondeterministic execution — replay prescribed thread {c} \
                 but candidates are {candidates:?} at step {} (model code must be \
                 deterministic: no time, randomness or HashMap iteration)",
                st.step
            );
            c
        } else {
            candidates[0]
        };
        let chosen_idx = candidates.iter().position(|&t| t == chosen).unwrap();
        let is_preempt = candidates.first() == Some(&prev) && chosen != prev;
        st.trace.push(TraceStep {
            candidates,
            chosen_idx,
            preemptions_before: st.preemptions_used,
            prev_running: prev,
        });
        if is_preempt {
            st.preemptions_used += 1;
        }
        st.step += 1;
        st.current = chosen;
    }

    /// Marks `tid` finished, wakes joiners, records a real panic (which
    /// aborts the whole execution), and hands the token onward.
    fn thread_finished(&self, tid: usize, panic: Option<Box<dyn Any + Send + 'static>>) {
        let mut st = self.inner.lock().unwrap();
        st.status[tid] = Status::Finished;
        st.live -= 1;
        for t in 0..st.status.len() {
            if st.status[t] == Status::Blocked(Resource::Join(tid)) {
                st.status[t] = Status::Ready;
            }
        }
        if let Some(p) = panic {
            if st.panic_payload.is_none() {
                st.panic_payload = Some(p);
            }
            st.aborting = true;
        }
        if !st.aborting {
            self.choose_next(&mut st, tid);
        }
        self.cv.notify_all();
    }

    /// Blocks the controller until every model thread has finished
    /// (normally or via abort-unwind).
    fn wait_all_finished(&self) {
        let mut st = self.inner.lock().unwrap();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap();
        }
    }

    // ---- resource hooks used by the sync primitives ----

    /// Wakes every thread blocked acquiring the mutex `addr`. They
    /// re-attempt `try_lock` when next scheduled; exactly one wins.
    pub(crate) fn mutex_released(&self, addr: usize) {
        let mut st = self.inner.lock().unwrap();
        for t in 0..st.status.len() {
            if st.status[t] == Status::Blocked(Resource::Mutex(addr)) {
                st.status[t] = Status::Ready;
            }
        }
        self.cv.notify_all();
    }

    /// Blocks `tid` until `mutex_released(addr)` makes it ready again.
    pub(crate) fn block_on_mutex(&self, tid: usize, addr: usize) {
        self.switch(tid, Some(Resource::Mutex(addr)));
    }

    /// Parks `tid` on condvar `addr`. The caller must have released the
    /// associated mutex first; because `tid` still holds the token until
    /// the switch below, no notifier can run in between — the
    /// release-and-wait pair is atomic exactly like a real condvar.
    pub(crate) fn condvar_wait(&self, tid: usize, addr: usize) {
        {
            let mut st = self.inner.lock().unwrap();
            match st.cond_waiters.iter_mut().find(|(a, _)| *a == addr) {
                Some((_, q)) => q.push_back(tid),
                None => {
                    let mut q = VecDeque::new();
                    q.push_back(tid);
                    st.cond_waiters.push((addr, q));
                }
            }
        }
        self.switch(tid, Some(Resource::Condvar(addr)));
    }

    /// Readies the longest-waiting thread parked on `addr` (it still
    /// must re-acquire the mutex). A notify with no waiters is lost —
    /// exactly the semantics lost-wakeup bugs depend on.
    pub(crate) fn condvar_notify_one(&self, addr: usize) {
        let mut st = self.inner.lock().unwrap();
        let woken = st
            .cond_waiters
            .iter_mut()
            .find(|(a, _)| *a == addr)
            .and_then(|(_, q)| q.pop_front());
        if let Some(t) = woken {
            st.status[t] = Status::Ready;
        }
        self.cv.notify_all();
    }

    /// Readies every thread parked on `addr`.
    pub(crate) fn condvar_notify_all(&self, addr: usize) {
        let mut st = self.inner.lock().unwrap();
        let woken: Vec<usize> = st
            .cond_waiters
            .iter_mut()
            .find(|(a, _)| *a == addr)
            .map(|(_, q)| q.drain(..).collect())
            .unwrap_or_default();
        for t in woken {
            st.status[t] = Status::Ready;
        }
        self.cv.notify_all();
    }

    /// True once thread `target` has finished.
    #[allow(dead_code)] // kept for parity with JoinHandle::is_finished
    pub(crate) fn is_finished(&self, target: usize) -> bool {
        matches!(self.inner.lock().unwrap().status[target], Status::Finished)
    }

    /// Blocks `tid` until `target` finishes.
    pub(crate) fn block_on_join(&self, tid: usize, target: usize) {
        let blocked = {
            let st = self.inner.lock().unwrap();
            !matches!(st.status[target], Status::Finished)
        };
        if blocked {
            self.switch(tid, Some(Resource::Join(target)));
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.inner.lock().unwrap().panic_payload.take()
    }

    /// The choices actually taken this execution, for failure reports.
    fn choices(&self) -> Vec<usize> {
        self.inner
            .lock()
            .unwrap()
            .trace
            .iter()
            .map(|s| s.candidates[s.chosen_idx])
            .collect()
    }

    /// The lexicographically next unexplored schedule under the
    /// preemption bound, or `None` when the space is exhausted.
    fn next_schedule(&self) -> Option<Vec<usize>> {
        let st = self.inner.lock().unwrap();
        for i in (0..st.trace.len()).rev() {
            let step = &st.trace[i];
            for alt_idx in step.chosen_idx + 1..step.candidates.len() {
                let is_preempt = step.candidates.first() == Some(&step.prev_running)
                    && step.candidates[alt_idx] != step.prev_running;
                let used = step.preemptions_before + usize::from(is_preempt);
                if used > st.preemption_bound {
                    continue;
                }
                let mut sched: Vec<usize> = st.trace[..i]
                    .iter()
                    .map(|s| s.candidates[s.chosen_idx])
                    .collect();
                sched.push(step.candidates[alt_idx]);
                return Some(sched);
            }
        }
        None
    }
}

// ---- thread support ----

enum HandleInner<T> {
    Model {
        exec: Arc<Execution>,
        tid: usize,
        inner: std::thread::JoinHandle<Option<T>>,
    },
    Plain(std::thread::JoinHandle<T>),
}

/// Mirror of `std::thread::JoinHandle` for controlled threads.
pub struct JoinHandle<T> {
    inner: HandleInner<T>,
}

impl<T> JoinHandle<T> {
    /// Mirror of `std::thread::JoinHandle::join`. Inside a model the
    /// join is a blocking scheduling point.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            HandleInner::Model { exec, tid, inner } => {
                if let Some((ctx_exec, self_tid)) = current_ctx() {
                    debug_assert!(Arc::ptr_eq(&ctx_exec, &exec));
                    ctx_exec.block_on_join(self_tid, tid);
                }
                match inner.join() {
                    Ok(Some(v)) => Ok(v),
                    // The closure panicked; the wrapper already recorded
                    // the payload and aborted the execution, so unwind
                    // the joiner too.
                    Ok(None) | Err(_) => std::panic::panic_any(AbortExecution),
                }
            }
            HandleInner::Plain(h) => h.join(),
        }
    }
}

/// Mirror of `std::thread::spawn`: controlled inside a model,
/// passthrough outside.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        Some((exec, _)) => {
            let tid = exec.register_thread();
            let exec2 = exec.clone();
            let inner = std::thread::Builder::new()
                .name(format!("loom-{tid}"))
                .spawn(move || {
                    set_ctx(exec2.clone(), tid);
                    exec2.wait_first_grant(tid);
                    let result = catch_unwind(AssertUnwindSafe(f));
                    clear_ctx();
                    match result {
                        Ok(v) => {
                            exec2.thread_finished(tid, None);
                            Some(v)
                        }
                        Err(p) => {
                            let real = if p.is::<AbortExecution>() { None } else { Some(p) };
                            exec2.thread_finished(tid, real);
                            None
                        }
                    }
                })
                .expect("spawn model thread");
            JoinHandle { inner: HandleInner::Model { exec, tid, inner } }
        }
        None => JoinHandle { inner: HandleInner::Plain(std::thread::spawn(f)) },
    }
}

/// Mirror of `std::thread::yield_now`: a pure scheduling point inside a
/// model.
pub fn yield_now() {
    match current_ctx() {
        Some((exec, tid)) => exec.switch(tid, None),
        None => std::thread::yield_now(),
    }
}

// ---- the DFS driver ----

/// Serializes model executions within one process: the scheduler state
/// is per-execution, but tests run on multiple threads.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Explores every schedule of `f` within `preemption_bound` context
/// switches away from the non-preemptive baseline. `usize::MAX` means
/// full exhaustive search (feasible for 2-thread models).
///
/// Panics (propagating the model's own panic, with the failing schedule
/// on stderr) when any execution fails an assertion or deadlocks.
pub fn model_bounded<F>(preemption_bound: usize, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = MODEL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let f = Arc::new(f);
    let max_execs = env_usize("LOOM_MAX_BRANCHES", 1_000_000);
    let mut schedule: Vec<usize> = Vec::new();
    let mut executions: usize = 0;
    loop {
        executions += 1;
        assert!(
            executions <= max_execs,
            "loom-lite: exceeded {max_execs} executions — shrink the model or raise LOOM_MAX_BRANCHES"
        );
        let exec = Arc::new(Execution::new(schedule.clone(), preemption_bound));
        let exec_root = exec.clone();
        let f_run = f.clone();
        let root = std::thread::Builder::new()
            .name("loom-0".into())
            .spawn(move || {
                set_ctx(exec_root.clone(), 0);
                let result = catch_unwind(AssertUnwindSafe(|| f_run()));
                clear_ctx();
                match result {
                    Ok(()) => exec_root.thread_finished(0, None),
                    Err(p) => {
                        let real = if p.is::<AbortExecution>() { None } else { Some(p) };
                        exec_root.thread_finished(0, real);
                    }
                }
            })
            .expect("spawn model root thread");
        exec.wait_all_finished();
        let _ = root.join();
        if let Some(p) = exec.take_panic() {
            eprintln!(
                "loom-lite: execution {executions} failed with schedule {:?}",
                exec.choices()
            );
            if let Some(msg) = p.downcast_ref::<String>() {
                eprintln!("loom-lite: failure: {msg}");
            }
            resume_unwind(p);
        }
        match exec.next_schedule() {
            Some(s) => schedule = s,
            None => break,
        }
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom-lite: explored {executions} executions exhaustively (preemption bound {preemption_bound})");
    }
}

/// Explores every schedule of `f` under the default preemption bound
/// (`LOOM_MAX_PREEMPTIONS`, default 2 — the CHESS result: almost all
/// interleaving bugs manifest within two preemptions).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_bounded(env_usize("LOOM_MAX_PREEMPTIONS", 2), f);
}
