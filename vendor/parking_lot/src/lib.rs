//! Offline stand-in for `parking_lot`: std sync primitives without
//! poisoning in the API.

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
