//! empty offline stub
