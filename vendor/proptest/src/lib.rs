//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements exactly the API surface this workspace uses: the
//! `proptest!` macro with an optional `#![proptest_config(..)]` header,
//! `any::<T>()` for primitive integers and byte arrays, integer/float
//! range strategies, `collection::vec`, `option::of`, a tiny
//! `[c1-c2]{lo,hi}`-style string strategy, and the `prop_assert*`
//! macros. Generation is deterministic: each test case derives its RNG
//! seed from the test name and case index, so failures reproduce.

/// Deterministic splitmix64-based generator used to drive strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<T>(core::marker::PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

// ---- Range strategies ----

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                *self.start() + rng.below(span + 1) as $t
            }
        }
        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start + rng.below(span.saturating_add(1)) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// ---- String pattern strategy ----
//
// Supports the `[c1-c2]{lo,hi}` shape (e.g. `"[a-z]{0,16}"`); anything
// else falls back to short lowercase ASCII strings.

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (mut lo_c, mut hi_c) = (b'a', b'z');
        let (mut lo_n, mut hi_n) = (0u64, 16u64);
        let bytes = self.as_bytes();
        if bytes.len() >= 5 && bytes[0] == b'[' && bytes[4] == b']' && bytes[2] == b'-' {
            lo_c = bytes[1];
            hi_c = bytes[3];
            if let (Some(open), Some(close)) = (self.find('{'), self.find('}')) {
                let inner = &self[open + 1..close];
                let mut parts = inner.splitn(2, ',');
                if let Some(a) = parts.next().and_then(|s| s.parse::<u64>().ok()) {
                    lo_n = a;
                    hi_n = a;
                }
                if let Some(b) = parts.next().and_then(|s| s.parse::<u64>().ok()) {
                    hi_n = b;
                }
            }
        }
        let len = lo_n + rng.below(hi_n - lo_n + 1);
        (0..len)
            .map(|_| (lo_c + rng.below((hi_c - lo_c + 1) as u64) as u8) as char)
            .collect()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + if span == 0 { 0 } else { rng.below(span) as usize };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
