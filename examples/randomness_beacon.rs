//! A distributed randomness beacon (drand-style) built on the CKS05
//! common coin — the paper's §2.3 "randomness generation" application.
//!
//! Each beacon round derives its coin name from the round number and the
//! previous beacon value, producing an unbiased, verifiable chain of
//! random values that any `t+1` nodes can extend and no `t` can predict.
//!
//! ```text
//! cargo run --example randomness_beacon
//! ```

use thetacrypt::core::ThetaNetworkBuilder;
use thetacrypt::orchestration::Request;
use thetacrypt::primitives::to_hex;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("setting up a 3-out-of-7 randomness beacon...");
    let net = ThetaNetworkBuilder::new(2, 7).with_cks05().seed(77).build()?;

    let mut previous = [0u8; 32];
    let mut history = Vec::new();
    for round in 1u64..=8 {
        // Chain the beacon: name = round || previous value.
        let mut name = Vec::with_capacity(40);
        name.extend_from_slice(&round.to_le_bytes());
        name.extend_from_slice(&previous);

        // Any node can serve the request; rotate for fun.
        let serving_node = (round % 7 + 1) as u16;
        let output = net.submit_and_wait(serving_node, Request::Cks05Coin(name.clone()))?;
        let value: [u8; 32] = output.as_bytes().try_into().expect("32-byte coin");

        // Every other node reports the identical value (public
        // verifiability comes from the DLEQ proofs on every share).
        let check_node = (round % 7) as u16 + 1;
        let check = net.submit_and_wait(
            if check_node == serving_node { serving_node % 7 + 1 } else { check_node },
            Request::Cks05Coin(name),
        )?;
        assert_eq!(check.as_bytes(), value);

        println!("round {round}: {}", to_hex(&value));
        history.push(value);
        previous = value;
    }

    // Sanity: all beacon values distinct (collision would be a 2^-128 event).
    for i in 0..history.len() {
        for j in i + 1..history.len() {
            assert_ne!(history[i], history[j]);
        }
    }
    // Bias check (coarse): bytes spread over the range.
    let mean: f64 = history
        .iter()
        .flat_map(|v| v.iter())
        .map(|&b| b as f64)
        .sum::<f64>()
        / (history.len() * 32) as f64;
    println!("mean output byte {mean:.1} (≈127.5 for uniform randomness)");
    assert!(mean > 90.0 && mean < 165.0);

    println!("beacon demo complete: {} chained rounds", history.len());
    Ok(())
}
