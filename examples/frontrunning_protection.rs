//! Front-running protection — the paper's §2.3 motivating application.
//!
//! Transactions are encrypted under the service-wide SG02 key, ordered
//! through the total-order broadcast channel *while still encrypted*,
//! and only threshold-decrypted once their position is committed. A
//! front-running validator therefore never sees transaction contents
//! before ordering.
//!
//! ```text
//! cargo run --example frontrunning_protection
//! ```

use std::time::Duration;
use theta_codec::Encode;
use thetacrypt::core::ThetaNetworkBuilder;
use thetacrypt::network::LinkProfile;
use thetacrypt::orchestration::Request;
use thetacrypt::protocols::ProtocolOutput;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 7-node BFT deployment (t = 2, n = 3t + 1) with datacenter RTTs.
    println!("setting up a 3-out-of-7 Θ-network with local-datacenter links...");
    let net = ThetaNetworkBuilder::new(2, 7)
        .with_sg02()
        .link_profile(LinkProfile::local())
        .seed(2024)
        .build()?;
    let pk = net.public_keys().sg02.as_ref().expect("provisioned");

    // Users submit encrypted transactions to the mempool. The label binds
    // the target block height so a ciphertext cannot be replayed later.
    let mut rng = rand::rngs::OsRng;
    let block_height: u64 = 811;
    let label = block_height.to_le_bytes();
    let transactions = [
        "swap 500 USDC -> ETH, max slippage 0.1%",
        "buy NFT #42 for 3 ETH",
        "liquidate vault 0xabc if health < 1.0",
    ];
    let mempool: Vec<Vec<u8>> = transactions
        .iter()
        .map(|tx| {
            let ct = thetacrypt::schemes::sg02::encrypt(pk, &label, tx.as_bytes(), &mut rng);
            ct.encoded()
        })
        .collect();
    println!("mempool holds {} encrypted transactions (contents invisible)", mempool.len());

    // The chain orders the *ciphertexts* (here: the submission order
    // stands in for consensus) and only then decrypts each one.
    for (position, ct_bytes) in mempool.into_iter().enumerate() {
        let output = net.submit_and_wait(1, Request::Sg02Decrypt(ct_bytes))?;
        let ProtocolOutput::Plaintext(tx) = output else {
            panic!("expected plaintext");
        };
        println!(
            "slot {position}: committed then decrypted -> {:?}",
            String::from_utf8_lossy(&tx)
        );
        assert_eq!(String::from_utf8_lossy(&tx), transactions[position]);
    }

    // A tampered ciphertext (a front-runner attempting malleability) is
    // rejected by the CCA validity check before any share is produced.
    let ct = thetacrypt::schemes::sg02::encrypt(pk, &label, b"victim tx", &mut rng);
    let mut bytes = ct.encoded();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    match net.submit_and_wait(1, Request::Sg02Decrypt(bytes)) {
        Err(e) => println!("tampered ciphertext rejected: {e}"),
        Ok(_) => panic!("tampered ciphertext must not decrypt"),
    }

    // Give residual shares a moment to drain before teardown.
    std::thread::sleep(Duration::from_millis(100));
    println!("front-running protection demo complete");
    Ok(())
}
