//! Quickstart: stand up a 4-node Θ-network and run one operation of each
//! kind — a threshold decryption, a threshold signature and a common coin.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use thetacrypt::core::ThetaNetworkBuilder;
use thetacrypt::orchestration::Request;
use thetacrypt::protocols::ProtocolOutput;
use thetacrypt::schemes::registry::SchemeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A (t+1)-out-of-n = 2-out-of-4 deployment with three schemes.
    println!("setting up a 2-out-of-4 Θ-network (dealer keygen)...");
    let net = ThetaNetworkBuilder::new(1, 4)
        .with_sg02()
        .with_bls04()
        .with_cks05()
        .seed(42)
        .build()?;

    // --- Threshold decryption (SG02) -----------------------------------
    let mut rng = rand::rngs::OsRng;
    let pk = net.public_keys().sg02.as_ref().expect("provisioned");
    let secret_tx = b"transfer 10 coins from alice to bob";
    let ciphertext = thetacrypt::schemes::sg02::encrypt(pk, b"demo", secret_tx, &mut rng);
    println!(
        "encrypted {} plaintext bytes into a {}-byte TDH2 ciphertext",
        secret_tx.len(),
        theta_codec::Encode::encoded(&ciphertext).len(),
    );
    let out = net.submit_and_wait(
        1,
        Request::Sg02Decrypt(theta_codec::Encode::encoded(&ciphertext)),
    )?;
    match &out {
        ProtocolOutput::Plaintext(p) => {
            assert_eq!(p, secret_tx);
            println!("threshold-decrypted: {:?}", String::from_utf8_lossy(p));
        }
        other => panic!("unexpected output {other:?}"),
    }

    // --- Threshold signature (BLS04) ------------------------------------
    let message = b"block #1337";
    let out = net.submit_and_wait(2, Request::Bls04Sign(message.to_vec()))?;
    let ProtocolOutput::Signature(sig_bytes) = &out else {
        panic!("unexpected output {out:?}");
    };
    let sig = <thetacrypt::schemes::bls04::Signature as theta_codec::Decode>::decoded(sig_bytes)?;
    let bls_pk = net.public_keys().bls04.as_ref().expect("provisioned");
    assert!(thetacrypt::schemes::bls04::verify(bls_pk, message, &sig));
    println!(
        "threshold-signed {:?} with {} ({} signature bytes), verified OK",
        String::from_utf8_lossy(message),
        SchemeId::Bls04,
        sig_bytes.len(),
    );

    // --- Distributed randomness (CKS05) ---------------------------------
    let coin_a = net.submit_and_wait(3, Request::Cks05Coin(b"epoch-9".to_vec()))?;
    let coin_b = net.submit_and_wait(4, Request::Cks05Coin(b"epoch-9".to_vec()))?;
    assert_eq!(coin_a, coin_b, "all nodes agree on the coin");
    println!(
        "common coin for epoch-9: {}",
        thetacrypt::primitives::to_hex(coin_a.as_bytes())
    );

    println!("quickstart complete");
    Ok(())
}
