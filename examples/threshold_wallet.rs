//! A threshold cryptocurrency wallet — the paper's §2.3 key-management
//! application (Dfns/Coinbase-style MPC custody).
//!
//! The wallet key never exists in one place: 5 custodians hold FROST
//! (KG20) shares and any 3 can co-sign a transaction. The example also
//! exercises the paper's precomputation mode (nonces generated ahead of
//! time turn signing into a single round) and shows the non-robustness
//! trade-off: if a custodian misbehaves mid-signing, the run aborts and
//! is retried with a different quorum — contrasted with robust BLS04
//! custody where bad shares are simply excluded.
//!
//! ```text
//! cargo run --example threshold_wallet
//! ```

use rand::SeedableRng;
use thetacrypt::schemes::{bls04, kg20, ThresholdParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xc0ffee);
    let params = ThresholdParams::new(2, 5)?; // 3-of-5 custody

    // --- FROST wallet ----------------------------------------------------
    println!("dealer provisions a 3-of-5 FROST (KG20) wallet...");
    let (wallet_pk, custodians) = kg20::keygen(params, &mut rng);

    // Preprocessing: each custodian banks a batch of nonces offline.
    let mut nonce_stock: Vec<Vec<kg20::SigningNonce>> = custodians
        .iter()
        .map(|k| kg20::precompute_nonces(k, 4, &mut rng))
        .collect();
    println!("each custodian precomputed 4 signing nonces (paper's 1-round mode)");

    for (i, tx) in ["pay 1.5 BTC to bc1q...", "sweep fees", "rotate cold storage"]
        .iter()
        .enumerate()
    {
        // A different quorum co-signs each transaction.
        let signer_idx = [(i) % 5, (i + 1) % 5, (i + 2) % 5];
        let nonces: Vec<kg20::SigningNonce> = signer_idx
            .iter()
            .map(|&s| nonce_stock[s].pop().expect("stock left"))
            .collect();
        let commits: Vec<kg20::NonceCommitment> =
            nonces.iter().map(|n| n.commitment().clone()).collect();
        let shares: Vec<kg20::SignatureShare> = signer_idx
            .iter()
            .zip(nonces)
            .map(|(&s, nonce)| {
                kg20::sign_share(&custodians[s], nonce, tx.as_bytes(), &commits)
                    .expect("honest signer")
            })
            .collect();
        let signature = kg20::combine(&wallet_pk, tx.as_bytes(), &commits, &shares)?;
        assert!(kg20::verify(&wallet_pk, tx.as_bytes(), &signature));
        println!(
            "tx {i}: signed by custodians {:?} -> valid Schnorr signature",
            signer_idx.map(|s| s + 1)
        );
    }

    // --- Misbehaviour: FROST aborts, identifies the culprit --------------
    let tx = b"malicious attempt";
    let n1 = kg20::generate_nonce(&custodians[0], &mut rng);
    let n2 = kg20::generate_nonce(&custodians[1], &mut rng);
    let n3 = kg20::generate_nonce(&custodians[2], &mut rng);
    let commits = vec![
        n1.commitment().clone(),
        n2.commitment().clone(),
        n3.commitment().clone(),
    ];
    let s1 = kg20::sign_share(&custodians[0], n1, tx, &commits)?;
    let s2 = kg20::sign_share(&custodians[1], n2, tx, &commits)?;
    // Custodian 3 sends garbage (its share, for a different message).
    let s3_bad = kg20::sign_share(&custodians[2], n3, b"other message", &commits)?;
    match kg20::combine(&wallet_pk, tx, &commits, &[s1, s2, s3_bad]) {
        Err(e) => println!("FROST aborted as designed (non-robust): {e}"),
        Ok(_) => panic!("bad share must abort"),
    }

    // --- Contrast: robust BLS04 custody ----------------------------------
    println!("\ncontrast: robust BLS04 custody of the same policy");
    let (bls_pk, bls_custodians) = bls04::keygen(params, &mut rng);
    let tx = b"robust payout";
    let mut shares: Vec<bls04::SignatureShare> = bls_custodians[..4]
        .iter()
        .map(|k| bls04::sign_share(k, tx).expect("sign"))
        .collect();
    // One custodian is corrupted — detected and *excluded*, not fatal.
    shares[0] = bls04::sign_share(&bls_custodians[0], b"forged").expect("sign");
    let honest: Vec<bls04::SignatureShare> = shares
        .into_iter()
        .filter(|s| bls04::verify_share(&bls_pk, tx, s))
        .collect();
    println!("{} of 4 shares survived verification", honest.len());
    let signature = bls04::combine(&bls_pk, tx, &honest)?;
    assert!(bls04::verify(&bls_pk, tx, &signature));
    println!("robust combine succeeded despite the corrupted share");

    println!("\nthreshold wallet demo complete");
    Ok(())
}
