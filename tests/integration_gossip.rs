//! Gossip-overlay integration: a 20-node Θ-network on O(degree)
//! encrypted links runs threshold protocols end-to-end, keeps working
//! through a partition (dropped links mid-protocol), and survives an
//! AEAD-tampered frame by tearing the affected link down.

use rand::SeedableRng;
use std::time::Duration;
use theta_codec::Encode;
use theta_network::gossip::GossipMesh;
use theta_network::handshake::MeshAuth;
use theta_network::Network;
use theta_orchestration::{spawn_node, KeyChest, NodeConfig};
use thetacrypt::orchestration::Request;
use thetacrypt::protocols::ProtocolOutput;
use thetacrypt::schemes::ThresholdParams;

#[test]
fn twenty_node_gossip_overlay_runs_threshold_protocols_through_faults() {
    const N: u16 = 20;
    const MESH_DEGREE: usize = 6; // offsets {1, 2, 4}: 6 links ≪ 19

    let mut r = rand::rngs::StdRng::seed_from_u64(0x906);
    let params = ThresholdParams::new(5, N).unwrap();
    let (pk, sg_keys) = thetacrypt::schemes::sg02::keygen(params, &mut r);

    // Bind all listeners first (OS-assigned ports), then connect the
    // overlay concurrently — the circulant graph has cycles, so every
    // node dials and accepts at the same time.
    let listeners: Vec<std::net::TcpListener> = (0..N)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> =
        listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let meshes: Vec<_> = listeners
        .into_iter()
        .zip(1..=N)
        .map(|(listener, id)| {
            let list = addrs.clone();
            std::thread::spawn(move || {
                let auth = MeshAuth::insecure_dev(id, N, 0x61055);
                GossipMesh::connect_listener(id, listener, &list, auth, MESH_DEGREE).unwrap()
            })
        })
        .collect();

    let mut controllers = Vec::new();
    let handles: Vec<_> = meshes
        .into_iter()
        .enumerate()
        .map(|(i, join)| {
            let mesh = join.join().unwrap();
            // The acceptance bar: far fewer links than a full mesh.
            assert!(
                mesh.degree() < (N - 1) as usize,
                "node {} holds {} links — not sublinear",
                i + 1,
                mesh.degree()
            );
            assert_eq!(mesh.degree(), MESH_DEGREE);
            controllers.push(mesh.link_controller());
            let mut chest = KeyChest::new();
            chest.sg02 = Some(sg_keys[i].clone());
            spawn_node(chest, Box::new(mesh) as Box<dyn Network>, NodeConfig::default())
        })
        .collect();

    // Round 1: every node decrypts over the healthy overlay, and links
    // are dropped *while the protocol floods are in flight*.
    let ct = thetacrypt::schemes::sg02::encrypt(&pk, b"l", b"over gossip", &mut r);
    let pending: Vec<_> = handles
        .iter()
        .map(|h| h.submit(Request::Sg02Decrypt(ct.encoded())))
        .collect();

    // Partition mid-protocol: cut the 3↔4 and 11↔12 ring edges (both
    // sides, so the readers die immediately). Offsets 2 and 4 keep the
    // graph connected; the flood must route around the gaps.
    controllers[2].drop_link(4);
    controllers[3].drop_link(3);
    controllers[10].drop_link(12);
    controllers[11].drop_link(11);

    for (i, p) in pending.into_iter().enumerate() {
        let result = p
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("node {} timed out in round 1", i + 1));
        assert_eq!(
            result.outcome.unwrap(),
            ProtocolOutput::Plaintext(b"over gossip".to_vec()),
            "node {} failed to decrypt through the partition",
            i + 1
        );
    }

    // Tamper: push an unauthenticated frame at node 6 over node 5's
    // link. Node 6's AEAD open fails and it tears that link down —
    // without crashing, and without losing protocol liveness.
    controllers[4].corrupt_link(6);

    // Round 2: the overlay (now missing several links) still reaches
    // quorum for every node.
    let ct2 = thetacrypt::schemes::sg02::encrypt(&pk, b"l", b"after churn", &mut r);
    let pending2: Vec<_> = handles
        .iter()
        .map(|h| h.submit(Request::Sg02Decrypt(ct2.encoded())))
        .collect();
    for (i, p) in pending2.into_iter().enumerate() {
        let result = p
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("node {} timed out after churn", i + 1));
        assert_eq!(
            result.outcome.unwrap(),
            ProtocolOutput::Plaintext(b"after churn".to_vec()),
            "node {} failed to decrypt after link churn",
            i + 1
        );
    }

    // The tampered link was torn down and counted by node 5 (its reader
    // on that connection saw the shutdown) or node 6 (AEAD failure) —
    // poll briefly, teardown is asynchronous.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, exits_5, _) = controllers[4].health();
        let (_, _, aead_6) = controllers[5].health();
        if aead_6 >= 1 && exits_5 >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tampered link never tore down (node5 exits={exits_5}, node6 aead={aead_6})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}
