//! Gossip-overlay integration: a 20-node Θ-network on O(degree)
//! encrypted links runs threshold protocols end-to-end, keeps working
//! through a partition (dropped links mid-protocol), and survives an
//! AEAD-tampered frame by tearing the affected link down. A second
//! test pins the trace context riding those frames: it survives AEAD
//! re-framing at every relay, its hop counts match the overlay's BFS
//! distances exactly, and a tampered frame never lands in a journal.

use rand::SeedableRng;
use std::time::Duration;
use theta_codec::Encode;
use theta_network::demux::{span_hex, span_of};
use theta_network::gossip::GossipMesh;
use theta_network::handshake::MeshAuth;
use theta_network::Network;
use theta_orchestration::{spawn_node, KeyChest, NodeConfig};
use thetacrypt::metrics::TraceEventKind;
use thetacrypt::orchestration::Request;
use thetacrypt::protocols::ProtocolOutput;
use thetacrypt::schemes::ThresholdParams;

#[test]
fn twenty_node_gossip_overlay_runs_threshold_protocols_through_faults() {
    const N: u16 = 20;
    const MESH_DEGREE: usize = 6; // offsets {1, 2, 4}: 6 links ≪ 19

    let mut r = rand::rngs::StdRng::seed_from_u64(0x906);
    let params = ThresholdParams::new(5, N).unwrap();
    let (pk, sg_keys) = thetacrypt::schemes::sg02::keygen(params, &mut r);

    // Bind all listeners first (OS-assigned ports), then connect the
    // overlay concurrently — the circulant graph has cycles, so every
    // node dials and accepts at the same time.
    let listeners: Vec<std::net::TcpListener> = (0..N)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> =
        listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let meshes: Vec<_> = listeners
        .into_iter()
        .zip(1..=N)
        .map(|(listener, id)| {
            let list = addrs.clone();
            std::thread::spawn(move || {
                let auth = MeshAuth::insecure_dev(id, N, 0x61055);
                GossipMesh::connect_listener(id, listener, &list, auth, MESH_DEGREE).unwrap()
            })
        })
        .collect();

    let mut controllers = Vec::new();
    let handles: Vec<_> = meshes
        .into_iter()
        .enumerate()
        .map(|(i, join)| {
            let mesh = join.join().unwrap();
            // The acceptance bar: far fewer links than a full mesh.
            assert!(
                mesh.degree() < (N - 1) as usize,
                "node {} holds {} links — not sublinear",
                i + 1,
                mesh.degree()
            );
            assert_eq!(mesh.degree(), MESH_DEGREE);
            controllers.push(mesh.link_controller());
            let mut chest = KeyChest::new();
            chest.sg02 = Some(sg_keys[i].clone());
            spawn_node(chest, Box::new(mesh) as Box<dyn Network>, NodeConfig::default())
        })
        .collect();

    // Round 1: every node decrypts over the healthy overlay, and links
    // are dropped *while the protocol floods are in flight*.
    let ct = thetacrypt::schemes::sg02::encrypt(&pk, b"l", b"over gossip", &mut r);
    let pending: Vec<_> = handles
        .iter()
        .map(|h| h.submit(Request::Sg02Decrypt(ct.encoded())))
        .collect();

    // Partition mid-protocol: cut the 3↔4 and 11↔12 ring edges (both
    // sides, so the readers die immediately). Offsets 2 and 4 keep the
    // graph connected; the flood must route around the gaps.
    controllers[2].drop_link(4);
    controllers[3].drop_link(3);
    controllers[10].drop_link(12);
    controllers[11].drop_link(11);

    for (i, p) in pending.into_iter().enumerate() {
        let result = p
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("node {} timed out in round 1", i + 1));
        assert_eq!(
            result.outcome.unwrap(),
            ProtocolOutput::Plaintext(b"over gossip".to_vec()),
            "node {} failed to decrypt through the partition",
            i + 1
        );
    }

    // Tamper: push an unauthenticated frame at node 6 over node 5's
    // link. Node 6's AEAD open fails and it tears that link down —
    // without crashing, and without losing protocol liveness.
    controllers[4].corrupt_link(6);

    // Round 2: the overlay (now missing several links) still reaches
    // quorum for every node.
    let ct2 = thetacrypt::schemes::sg02::encrypt(&pk, b"l", b"after churn", &mut r);
    let pending2: Vec<_> = handles
        .iter()
        .map(|h| h.submit(Request::Sg02Decrypt(ct2.encoded())))
        .collect();
    for (i, p) in pending2.into_iter().enumerate() {
        let result = p
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|_| panic!("node {} timed out after churn", i + 1));
        assert_eq!(
            result.outcome.unwrap(),
            ProtocolOutput::Plaintext(b"after churn".to_vec()),
            "node {} failed to decrypt after link churn",
            i + 1
        );
    }

    // The tampered link was torn down and counted by node 5 (its reader
    // on that connection saw the shutdown) or node 6 (AEAD failure) —
    // poll briefly, teardown is asynchronous.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, exits_5, _) = controllers[4].health();
        let (_, _, aead_6) = controllers[5].health();
        if aead_6 >= 1 && exits_5 >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tampered link never tore down (node5 exits={exits_5}, node6 aead={aead_6})"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// BFS distances from every node on the circulant overlay
/// C(n; ±offsets) with 1-based ids; `dist[a-1][b-1]` = links on a
/// shortest path a→b.
fn bfs_distances(n: u16, offsets: &[u16]) -> Vec<Vec<u32>> {
    (1..=n)
        .map(|start| {
            let mut dist = vec![u32::MAX; n as usize];
            dist[start as usize - 1] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(v) = queue.pop_front() {
                for &off in offsets {
                    for next in [
                        (v - 1 + off) % n + 1,
                        (v - 1 + n - off % n) % n + 1,
                    ] {
                        if dist[next as usize - 1] == u32::MAX {
                            dist[next as usize - 1] = dist[v as usize - 1] + 1;
                            queue.push_back(next);
                        }
                    }
                }
            }
            dist
        })
        .collect()
}

/// Parses the `hop=<n>` token out of a PeerRecv detail string.
fn hop_of(detail: &str) -> Option<u32> {
    detail.split_whitespace().find_map(|t| t.strip_prefix("hop=")?.parse().ok())
}

#[test]
fn trace_context_survives_relays_with_exact_hop_counts() {
    const N: u16 = 20;
    const MESH_DEGREE: usize = 6; // offsets {1, 2, 4}

    let mut r = rand::rngs::StdRng::seed_from_u64(0x40b5);
    let params = ThresholdParams::new(5, N).unwrap();
    let (pk, sg_keys) = thetacrypt::schemes::sg02::keygen(params, &mut r);

    let listeners: Vec<std::net::TcpListener> = (0..N)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> =
        listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let meshes: Vec<_> = listeners
        .into_iter()
        .zip(1..=N)
        .map(|(listener, id)| {
            let list = addrs.clone();
            std::thread::spawn(move || {
                let auth = MeshAuth::insecure_dev(id, N, 0x40b55);
                GossipMesh::connect_listener(id, listener, &list, auth, MESH_DEGREE).unwrap()
            })
        })
        .collect();

    let mut controllers = Vec::new();
    let handles: Vec<_> = meshes
        .into_iter()
        .enumerate()
        .map(|(i, join)| {
            let mesh = join.join().unwrap();
            controllers.push(mesh.link_controller());
            let mut chest = KeyChest::new();
            chest.sg02 = Some(sg_keys[i].clone());
            spawn_node(chest, Box::new(mesh) as Box<dyn Network>, NodeConfig::default())
        })
        .collect();

    // One decrypt submitted at node 1; every node joins on first
    // contact and floods its own share, so every ordered node pair
    // gets a traced send→receive over the overlay.
    let ct = thetacrypt::schemes::sg02::encrypt(&pk, b"l", b"hop audit", &mut r);
    let request = Request::Sg02Decrypt(ct.encoded());
    let instance = request.instance_id().0;
    let span = format!("span={}", span_hex(&span_of(&instance)));
    let result = handles[0]
        .submit(request)
        .wait_timeout(Duration::from_secs(30))
        .expect("decrypt timed out");
    assert_eq!(
        result.outcome.unwrap(),
        ProtocolOutput::Plaintext(b"hop audit".to_vec())
    );

    // The context propagated through every AEAD re-framing: each relay
    // re-seals the frame for the next link, yet the span and a correct
    // hop count must come out at every journal. First arrivals travel
    // shortest paths, so the minimum hop per (origin, receiver) pair is
    // exactly the BFS distance on C(20; ±{1,2,4}).
    let dist = bfs_distances(N, &[1, 2, 4]);
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    'settle: loop {
        let mut complete = true;
        'scan: for receiver in 1..=N {
            let journal = &handles[receiver as usize - 1].observability().journal;
            let (events, _) = journal.events_for_flagged(&instance);
            for origin in 1..=N {
                if origin == receiver {
                    continue;
                }
                let min_hop = events
                    .iter()
                    .filter(|e| e.kind == TraceEventKind::PeerRecv && e.peer == origin)
                    .filter_map(|e| hop_of(&e.detail))
                    .min();
                let want = dist[origin as usize - 1][receiver as usize - 1];
                match min_hop {
                    // First arrival still in flight — wait and rescan.
                    None => {
                        complete = false;
                        break 'scan;
                    }
                    // A hop below the BFS distance is impossible (a
                    // shorter path than the shortest); above it means a
                    // relay failed to stamp. Both are counting bugs, so
                    // fail immediately rather than waiting out races.
                    Some(hop) if hop < want => panic!(
                        "{origin}→{receiver}: hop {hop} beats the BFS distance {want}"
                    ),
                    Some(hop) => {
                        if hop != want {
                            complete = false;
                            break 'scan;
                        }
                    }
                }
            }
            // Context integrity: every traced receive at this node
            // carries the instance's own span, never a forged one.
            for e in &events {
                if e.kind == TraceEventKind::PeerRecv {
                    assert!(
                        e.detail.contains(&span),
                        "node {receiver} journaled a foreign span: {}",
                        e.detail
                    );
                }
            }
        }
        if complete {
            break 'settle;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "hop counts never converged to the overlay's BFS distances"
        );
        std::thread::sleep(Duration::from_millis(30));
    }

    // Tampered context dies with its frame: corrupt node 2's link to
    // node 3. The context rides *inside* the AEAD envelope, so the
    // forged frame fails the open at node 3 and is dropped whole —
    // nothing of it (span, hop or payload) can reach any journal, and
    // the poisoned link is torn down.
    controllers[1].corrupt_link(3);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let (_, _, aead_3) = controllers[2].health();
        if aead_3 >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "tampered frame never hit node 3's AEAD check"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    for id in 1..=N {
        let (events, _) = handles[id as usize - 1]
            .observability()
            .journal
            .events_for_flagged(&instance);
        for e in &events {
            if e.kind == TraceEventKind::PeerRecv {
                assert!(e.detail.contains(&span), "forged span journaled: {}", e.detail);
            }
        }
    }
}
