//! Fuzz-style property tests: decoding attacker-controlled bytes into
//! any wire type must never panic — only return structured errors —
//! and mutated valid encodings must never decode into a *different*
//! valid object that passes verification.

use proptest::prelude::*;
use rand::SeedableRng;
use thetacrypt::codec::{Decode, Encode};
use thetacrypt::schemes::ThresholdParams;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_bytes_never_panic_decoders(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        use thetacrypt::schemes::{bls04, bz03, cks05, kg20, sg02, sh00, dkg};
        // Scheme objects.
        let _ = sg02::PublicKey::decoded(&bytes);
        let _ = sg02::Ciphertext::decoded(&bytes);
        let _ = sg02::DecryptionShare::decoded(&bytes);
        let _ = bz03::Ciphertext::decoded(&bytes);
        let _ = bz03::DecryptionShare::decoded(&bytes);
        let _ = sh00::PublicKey::decoded(&bytes);
        let _ = sh00::SignatureShare::decoded(&bytes);
        let _ = bls04::PublicKey::decoded(&bytes);
        let _ = bls04::SignatureShare::decoded(&bytes);
        let _ = bls04::Signature::decoded(&bytes);
        let _ = kg20::NonceCommitment::decoded(&bytes);
        let _ = kg20::SignatureShare::decoded(&bytes);
        let _ = kg20::Signature::decoded(&bytes);
        let _ = cks05::CoinShare::decoded(&bytes);
        let _ = dkg::Commitment::decoded(&bytes);
        let _ = dkg::DealtShare::decoded(&bytes);
        // Orchestration envelopes.
        let _ = thetacrypt::orchestration::Envelope::decoded(&bytes);
        let _ = thetacrypt::orchestration::Request::decoded(&bytes);
        // Service frames.
        let _ =
            thetacrypt::service::Frame::<thetacrypt::service::RpcRequest>::decoded(&bytes);
        let _ =
            thetacrypt::service::Frame::<thetacrypt::service::RpcResponse>::decoded(&bytes);
    }

    #[test]
    fn mutated_share_never_verifies(seed in any::<u64>(), flip in 0usize..512) {
        use thetacrypt::schemes::sg02;
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = sg02::keygen(params, &mut r);
        let ct = sg02::encrypt(&pk, b"l", b"m", &mut r);
        let share = sg02::create_decryption_share(&keys[0], &ct, &mut r).unwrap();
        let mut bytes = share.encoded();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        // Either the mutation breaks decoding, or the decoded share fails
        // verification — it must never verify as a different valid share.
        if let Ok(mutated) = sg02::DecryptionShare::decoded(&bytes) {
            prop_assert!(
                !sg02::verify_decryption_share(&pk, &ct, &mutated) || mutated == share,
                "bit flip produced a distinct verifying share"
            );
        }
    }

    #[test]
    fn mutated_signature_never_verifies(seed in any::<u64>(), flip in 0usize..264) {
        use thetacrypt::schemes::bls04;
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let params = ThresholdParams::new(0, 1).unwrap();
        let (pk, keys) = bls04::keygen(params, &mut r);
        let share = bls04::sign_share(&keys[0], b"msg").unwrap();
        let sig = bls04::combine(&pk, b"msg", &[share]).unwrap();
        let mut bytes = sig.encoded();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        if let Ok(mutated) = bls04::Signature::decoded(&bytes) {
            prop_assert!(
                !bls04::verify(&pk, b"msg", &mutated) || mutated == sig,
                "bit flip produced a distinct verifying signature"
            );
        }
    }
}
