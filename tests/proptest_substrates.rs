//! Property-based tests (proptest) over the mathematical and encoding
//! substrates: bigint ring axioms against a `u128` oracle, Montgomery
//! vs naive modexp, field/group laws on random inputs, codec roundtrips.

use proptest::prelude::*;
use thetacrypt::codec::{Decode, Encode};
use thetacrypt::math::{mod_inverse, BigUint, Montgomery};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- BigUint vs u128 oracle ----------------

    #[test]
    fn biguint_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = &BigUint::from_u64(a) + &BigUint::from_u64(b);
        prop_assert_eq!(sum.to_u128().unwrap(), a as u128 + b as u128);
    }

    #[test]
    fn biguint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = &BigUint::from_u64(a) * &BigUint::from_u64(b);
        prop_assert_eq!(prod.to_u128().unwrap(), a as u128 * b as u128);
    }

    #[test]
    fn biguint_divrem_matches_u128(a in any::<u128>(), b in 1u64..) {
        let (q, r) = BigUint::from_u128(a).divrem(&BigUint::from_u64(b));
        prop_assert_eq!(q.to_u128().unwrap(), a / b as u128);
        prop_assert_eq!(r.to_u64().unwrap(), (a % b as u128) as u64);
    }

    #[test]
    fn biguint_bytes_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        // Canonical re-encoding strips leading zeros.
        let canon = v.to_bytes_be();
        prop_assert_eq!(BigUint::from_bytes_be(&canon), v);
    }

    #[test]
    fn biguint_shift_roundtrip(a in any::<u128>(), shift in 0usize..200) {
        let v = BigUint::from_u128(a);
        prop_assert_eq!(&(&v << shift) >> shift, v);
    }

    #[test]
    fn biguint_mul_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (ba, bb, bc) = (BigUint::from_u64(a), BigUint::from_u64(b), BigUint::from_u64(c));
        prop_assert_eq!(&ba * &(&bb + &bc), &(&ba * &bb) + &(&ba * &bc));
    }

    // ---------------- Montgomery vs plain modexp ----------------

    #[test]
    fn montgomery_pow_matches_naive(base in any::<u64>(), exp in any::<u32>(), m in any::<u64>()) {
        let modulus = BigUint::from_u64((m | 1).max(3));
        let ctx = Montgomery::new(modulus.clone());
        let b = BigUint::from_u64(base);
        let e = BigUint::from_u64(exp as u64);
        // Plain square-and-multiply oracle via divrem.
        let mut acc = BigUint::one().rem(&modulus);
        let mut sq = b.rem(&modulus);
        for i in 0..e.bits() {
            if e.bit(i) {
                acc = (&acc * &sq).rem(&modulus);
            }
            sq = (&sq * &sq).rem(&modulus);
        }
        prop_assert_eq!(ctx.pow(&b, &e), acc);
    }

    #[test]
    fn mod_inverse_is_inverse(a in 1u64.., p_sel in 0usize..3) {
        let primes = ["65537", "4294967311", "1000000007"];
        let p = BigUint::from_dec(primes[p_sel]).unwrap();
        let a = BigUint::from_u64(a).rem(&p);
        if !a.is_zero() {
            let inv = mod_inverse(&a, &p).unwrap();
            prop_assert!((&inv * &a).rem(&p).is_one());
        }
    }

    // ---------------- Ed25519 group laws ----------------

    #[test]
    fn ed25519_scalar_mul_additive(a in any::<u64>(), b in any::<u64>()) {
        use thetacrypt::math::ed25519::{Point, Scalar};
        let sa = Scalar::from_u64(a);
        let sb = Scalar::from_u64(b);
        let lhs = Point::mul_base(&sa.add(&sb));
        let rhs = Point::mul_base(&sa).add(&Point::mul_base(&sb));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn ed25519_compress_roundtrip(k in 1u64..) {
        use thetacrypt::math::ed25519::{Point, Scalar};
        let p = Point::mul_base(&Scalar::from_u64(k));
        prop_assert_eq!(Point::decompress(&p.compress()).unwrap(), p);
    }

    // ---------------- BN254 group laws ----------------

    #[test]
    fn bn254_g1_scalar_mul_additive(a in any::<u32>(), b in any::<u32>()) {
        use thetacrypt::math::bn254::{Fr, G1};
        let sa = Fr::from_u64(a as u64);
        let sb = Fr::from_u64(b as u64);
        let lhs = G1::mul_generator(&sa.add(&sb));
        let rhs = G1::mul_generator(&sa).add(&G1::mul_generator(&sb));
        prop_assert_eq!(lhs, rhs);
    }

    // ---------------- Symmetric primitives ----------------

    #[test]
    fn aead_roundtrip(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use thetacrypt::primitives::aead;
        let sealed = aead::seal(&key, &nonce, &aad, &msg);
        prop_assert_eq!(aead::open(&key, &nonce, &aad, &sealed).unwrap(), msg);
    }

    #[test]
    fn aead_tamper_rejected(
        key in any::<[u8; 32]>(),
        nonce in any::<[u8; 12]>(),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
        flip_bit in 0usize..64,
    ) {
        use thetacrypt::primitives::aead;
        let mut sealed = aead::seal(&key, &nonce, b"", &msg);
        let idx = flip_bit % (sealed.len() * 8);
        sealed[idx / 8] ^= 1 << (idx % 8);
        prop_assert!(aead::open(&key, &nonce, b"", &sealed).is_err());
    }

    #[test]
    fn sha256_incremental_any_split(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        split_frac in 0.0f64..1.0,
    ) {
        use thetacrypt::primitives::Sha256;
        let split = (data.len() as f64 * split_frac) as usize;
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    // ---------------- Codec roundtrips ----------------

    #[test]
    fn codec_roundtrip_composite(
        a in any::<u64>(),
        b in proptest::collection::vec(any::<u8>(), 0..64),
        c in proptest::option::of(any::<u32>()),
        s in "[a-z]{0,16}",
    ) {
        let v = (a, b, (c, s));
        let bytes = v.encoded();
        let back: (u64, Vec<u8>, (Option<u32>, String)) = Decode::decoded(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn codec_rejects_truncation(
        a in any::<u64>(),
        b in proptest::collection::vec(any::<u8>(), 1..32),
        cut in 1usize..8,
    ) {
        let v = (a, b);
        let bytes = v.encoded();
        let cut = cut.min(bytes.len() - 1);
        let truncated = &bytes[..bytes.len() - cut];
        let r: Result<(u64, Vec<u8>), _> = Decode::decoded(truncated);
        prop_assert!(r.is_err());
    }
}
