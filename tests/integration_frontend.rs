//! Integration tests for the event-driven service front-end and the
//! multi-tenant key manager: on-demand keygen → scoped sign → verify →
//! restart-reload, per-tenant quotas, backpressure interleave on one
//! pipelined connection, and shutdown hygiene (idempotent stop, no
//! leaked descriptors).

use std::time::Duration;
use thetacrypt::core::ThetaNetworkBuilder;
use thetacrypt::network::LinkProfile;
use thetacrypt::orchestration::{KeyRef, Request};
use thetacrypt::schemes::registry::SchemeId;
use thetacrypt::service::{RpcClient, RpcError};

fn keystore_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "theta-frontend-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The paper's on-demand story, end to end over RPC: a client asks a
/// live Θ-network to deal a tenant key, signs under it, verifies the
/// signature against the served tenant public key — and after the whole
/// network restarts, signing works again purely from the sealed
/// keystore records on disk.
#[test]
fn on_demand_keygen_sign_verify_and_restart_reload() {
    let dir = keystore_dir("e2e");
    let keyref = KeyRef::new("acme", "signing");

    let tenant_pk = {
        let mut net = ThetaNetworkBuilder::new(1, 3)
            .with_bls04()
            .seed(41)
            .with_keystore(&dir, b"correct horse battery staple")
            .build()
            .expect("build");
        let addr = net.serve_rpc(1, "127.0.0.1:0".parse().unwrap()).unwrap();
        let mut client = RpcClient::connect(addr, Duration::from_secs(10)).unwrap();

        // Nothing yet; then deal on demand.
        assert!(client.list_keys("acme").unwrap().is_empty());
        let pk_bytes = client.keygen(keyref.clone(), SchemeId::Bls04).unwrap();
        assert_eq!(
            client.list_keys("acme").unwrap(),
            vec![("signing".to_string(), SchemeId::Bls04)]
        );
        // Re-dealing the same name is refused.
        assert!(matches!(
            client.keygen(keyref.clone(), SchemeId::Bls04),
            Err(RpcError::Server(_))
        ));

        // Sign under the tenant key and verify against its public key.
        let (scheme, served_pk) = client.tenant_key(keyref.clone()).unwrap();
        assert_eq!(scheme, SchemeId::Bls04);
        assert_eq!(served_pk, pk_bytes);
        let (sig, _) = client
            .run_protocol(Request::scoped(keyref.clone(), Request::Bls04Sign(b"epoch-1".to_vec())))
            .unwrap();
        let pk = <thetacrypt::schemes::bls04::PublicKey as thetacrypt::codec::Decode>::decoded(
            &pk_bytes,
        )
        .unwrap();
        let sig = <thetacrypt::schemes::bls04::Signature as thetacrypt::codec::Decode>::decoded(
            &sig,
        )
        .unwrap();
        assert!(thetacrypt::schemes::bls04::verify(&pk, b"epoch-1", &sig));
        // The tenant key is NOT the dealer's network-wide key.
        let dealer_pk = net.public_keys().bls04.as_ref().unwrap();
        assert!(!thetacrypt::schemes::bls04::verify(dealer_pk, b"epoch-1", &sig));
        pk_bytes
    };

    // The network is gone (nodes, services, hot caches). Rebuild over
    // the same keystore directory: shares come back from the sealed
    // records alone — no keygen this time.
    let mut net = ThetaNetworkBuilder::new(1, 3)
        .with_bls04()
        .seed(42)
        .with_keystore(&dir, b"correct horse battery staple")
        .build()
        .expect("rebuild");
    let addr = net.serve_rpc(1, "127.0.0.1:0".parse().unwrap()).unwrap();
    let mut client = RpcClient::connect(addr, Duration::from_secs(10)).unwrap();
    let (_, served_pk) = client.tenant_key(keyref.clone()).unwrap();
    assert_eq!(served_pk, tenant_pk, "tenant key must survive the restart");
    let (sig, _) = client
        .run_protocol(Request::scoped(keyref.clone(), Request::Bls04Sign(b"epoch-2".to_vec())))
        .unwrap();
    let pk = <thetacrypt::schemes::bls04::PublicKey as thetacrypt::codec::Decode>::decoded(
        &tenant_pk,
    )
    .unwrap();
    let sig = <thetacrypt::schemes::bls04::Signature as thetacrypt::codec::Decode>::decoded(
        &sig,
    )
    .unwrap();
    assert!(thetacrypt::schemes::bls04::verify(&pk, b"epoch-2", &sig));
    // The reload shows up in the key-manager metrics.
    let metrics = client.metrics().unwrap();
    let loaded = metrics
        .lines()
        .find(|l| l.starts_with("theta_keys_loaded_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert!(loaded >= 1, "expected a keystore load after restart:\n{metrics}");

    // A wrong passphrase fails closed: the records do not decrypt.
    let bad = ThetaNetworkBuilder::new(1, 3)
        .with_bls04()
        .seed(43)
        .with_keystore(&dir, b"wrong passphrase")
        .build()
        .expect("build with wrong passphrase");
    assert!(bad.key_manager(1).unwrap().load(&keyref).is_err());
}

/// One tenant at its in-flight cap gets the retryable `Overloaded`
/// refusal while its earlier request is still running — and the slot
/// frees once that request completes.
#[test]
fn per_tenant_quota_rejects_excess_in_flight_requests() {
    let dir = keystore_dir("quota");
    let mut net = ThetaNetworkBuilder::new(1, 3)
        .with_bls04()
        .seed(7)
        .with_keystore(&dir, b"pass")
        .tenant_quota(1)
        // Slow links keep the first scoped sign in flight while the
        // rest of the burst arrives.
        .link_profile(LinkProfile::fixed(Duration::from_millis(150)))
        .build()
        .expect("build");
    let addr = net.serve_rpc(1, "127.0.0.1:0".parse().unwrap()).unwrap();
    let mut client = RpcClient::connect(addr, Duration::from_secs(20)).unwrap();
    let keyref = KeyRef::new("acme", "burst");
    client.keygen(keyref.clone(), SchemeId::Bls04).unwrap();

    // Pipeline a burst of scoped signs on one connection.
    let ids: Vec<u64> = (0..4)
        .map(|i| {
            client
                .submit_protocol(Request::scoped(
                    keyref.clone(),
                    Request::Bls04Sign(format!("msg-{i}").into_bytes()),
                ))
                .unwrap()
        })
        .collect();
    let mut ok = 0;
    let mut overloaded = 0;
    for id in ids {
        match client.collect_protocol(id) {
            Ok(_) => ok += 1,
            Err(RpcError::Overloaded) => overloaded += 1,
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!(ok + overloaded, 4);
    assert!(ok >= 1, "the first request holds the only slot and completes");
    assert!(overloaded >= 1, "the burst must overrun a quota of 1");

    // The slot was released on completion: a fresh scoped sign succeeds.
    client
        .run_protocol(Request::scoped(keyref.clone(), Request::Bls04Sign(b"after".to_vec())))
        .unwrap();
    // And the rejections are visible in the metrics plane.
    let metrics = client.metrics().unwrap();
    let rejected = metrics
        .lines()
        .find(|l| l.starts_with("theta_quota_rejections_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    assert_eq!(rejected, overloaded as u64, "metrics:\n{metrics}");
}

/// A full submission queue refuses with `Overloaded` while earlier
/// accepted requests on the *same pipelined connection* still complete:
/// both kinds of response correlate correctly however they interleave.
#[test]
fn backpressure_interleaves_with_successes_on_one_connection() {
    let mut net = ThetaNetworkBuilder::new(0, 1)
        .with_bls04()
        .seed(9)
        .submission_queue_capacity(1)
        .worker_threads(1)
        .build()
        .expect("build");
    let addr = net.serve_rpc(1, "127.0.0.1:0".parse().unwrap()).unwrap();
    let mut client = RpcClient::connect(addr, Duration::from_secs(20)).unwrap();

    // Burst hard enough that the front-end's submit loop overruns the
    // router's dequeue at least once. The capacity-1 queue makes any
    // concurrent pair a refusal; a few rounds kill scheduling luck.
    let mut ok = 0;
    let mut overloaded = 0;
    for round in 0..8 {
        let ids: Vec<u64> = (0..64)
            .map(|i| {
                client
                    .submit_protocol(Request::Bls04Sign(
                        format!("burst-{round}-{i}").into_bytes(),
                    ))
                    .unwrap()
            })
            .collect();
        for id in ids {
            match client.collect_protocol(id) {
                Ok((sig, _)) => {
                    assert!(!sig.is_empty());
                    ok += 1;
                }
                Err(RpcError::Overloaded) => overloaded += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        if ok >= 1 && overloaded >= 1 {
            break;
        }
    }
    assert!(ok >= 1, "some requests must clear the queue");
    assert!(
        overloaded >= 1,
        "a 64-deep burst against a capacity-1 queue must be refused at least once"
    );

    // The connection survives the refusals: a quiet request succeeds.
    client.run_protocol(Request::Bls04Sign(b"calm".to_vec())).unwrap();
}

fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").map(|d| d.count()).unwrap_or(0)
}

/// `ServiceHandle::stop` is idempotent, returns promptly with no
/// connected client (the waker pipe, not a dummy connect, unblocks the
/// loop), and closes every descriptor the front-end owned.
#[test]
fn stop_is_idempotent_and_leaks_no_descriptors() {
    let net = ThetaNetworkBuilder::new(0, 1).with_bls04().seed(11).build().unwrap();
    let node = net.node(1).clone();
    let keys = net.public_keys().clone();

    let baseline = open_fds();
    let mut handle = thetacrypt::service::serve(
        "127.0.0.1:0".parse().unwrap(),
        node,
        keys,
        Duration::from_secs(5),
    )
    .unwrap();
    // Exercise the loop: a few concurrent connections, one with
    // requests in flight, one idle, one half-closed.
    let mut active = RpcClient::connect(handle.addr(), Duration::from_secs(5)).unwrap();
    active.run_protocol(Request::Bls04Sign(b"pre-stop".to_vec())).unwrap();
    let idle = std::net::TcpStream::connect(handle.addr()).unwrap();
    let dropped = std::net::TcpStream::connect(handle.addr()).unwrap();
    drop(dropped);
    assert!(open_fds() > baseline, "the service must hold descriptors while up");

    let start = std::time::Instant::now();
    handle.stop();
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "stop must not wait out a poll timeout ({:?})",
        start.elapsed()
    );
    // Second stop: a no-op, not a panic or a hang.
    handle.stop();
    drop(handle);
    drop(active);
    drop(idle);

    assert!(
        open_fds() <= baseline,
        "descriptors leaked: {} before serve, {} after stop",
        baseline,
        open_fds()
    );
}
