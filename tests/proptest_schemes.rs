//! Property-based tests over the threshold schemes: Shamir quorum
//! invariants, scheme roundtrips at random (t, n) and payloads, and the
//! evaluation metrics' invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use thetacrypt::schemes::common::{shamir_reconstruct, shamir_share};
use thetacrypt::schemes::{ThresholdParams};

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shamir_any_quorum_reconstructs(
        t in 0u16..4,
        extra in 1u16..4,
        seed in any::<u64>(),
        subset_seed in any::<u64>(),
    ) {
        use thetacrypt::math::ed25519::Scalar;
        use rand::seq::SliceRandom;
        let n = 3 * t + extra; // any n > t
        let params = ThresholdParams::new(t, n).unwrap();
        let mut r = rng_from(seed);
        let secret = Scalar::random(&mut r);
        let shares = shamir_share(&secret, params, &mut r);
        // A random quorum-sized subset reconstructs.
        let mut subset = shares.clone();
        let mut sr = rng_from(subset_seed);
        subset.shuffle(&mut sr);
        subset.truncate((t + 1) as usize);
        prop_assert_eq!(shamir_reconstruct(&subset).unwrap(), secret);
    }

    #[test]
    fn sg02_roundtrip_random_payload(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..512),
        label in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        use thetacrypt::schemes::sg02;
        let mut r = rng_from(seed);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = sg02::keygen(params, &mut r);
        let ct = sg02::encrypt(&pk, &label, &msg, &mut r);
        prop_assert!(sg02::verify_ciphertext(&pk, &ct));
        let shares: Vec<_> = keys[..2]
            .iter()
            .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
            .collect();
        prop_assert_eq!(sg02::combine(&pk, &ct, &shares).unwrap(), msg);
    }

    #[test]
    fn bls04_signatures_deterministic_over_quorums(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        pick in 0usize..4,
    ) {
        use thetacrypt::schemes::bls04;
        let mut r = rng_from(seed);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = bls04::keygen(params, &mut r);
        let all: Vec<_> = keys.iter().map(|k| bls04::sign_share(k, &msg).unwrap()).collect();
        let a = bls04::combine(&pk, &msg, &[all[pick].clone(), all[(pick + 1) % 4].clone()]).unwrap();
        let b = bls04::combine(&pk, &msg, &[all[(pick + 2) % 4].clone(), all[(pick + 3) % 4].clone()]).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(bls04::verify(&pk, &msg, &a));
    }

    #[test]
    fn cks05_coins_agree_and_look_random(seed in any::<u64>(), name in any::<[u8; 8]>()) {
        use thetacrypt::schemes::cks05;
        let mut r = rng_from(seed);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = cks05::keygen(params, &mut r);
        let shares: Vec<_> = keys
            .iter()
            .map(|k| cks05::create_coin_share(k, &name, &mut r))
            .collect();
        let a = cks05::combine(&pk, &name, &shares[..2]).unwrap();
        let b = cks05::combine(&pk, &name, &shares[2..]).unwrap();
        prop_assert_eq!(a, b);
        prop_assert_ne!(a, [0u8; 32]);
    }

    #[test]
    fn metrics_invariants_hold(
        samples in proptest::collection::vec(0.001f64..10.0, 10..200),
        t in 1u16..10, // BFT sizing keeps θ = (t+1)/n·100 ≤ 50 < 95
    ) {
        use thetacrypt::metrics::latency_summary;
        let n = 3 * t + 1;
        let s = latency_summary(&samples, t, n);
        prop_assert!(s.l_theta <= s.l95 + 1e-12);
        prop_assert!(s.l50 <= s.l95 + 1e-12);
        prop_assert!(s.delta_res >= -1e-12);
        prop_assert!(s.eta_theta > 0.0 && s.eta_theta <= 1.0 + 1e-12);
        // The paper's inverse relationship: η_θ = 1 / (1 + δ_res).
        prop_assert!((s.eta_theta - 1.0 / (1.0 + s.delta_res)).abs() < 1e-9);
    }

    #[test]
    fn wire_scheme_objects_roundtrip(seed in any::<u64>()) {
        use thetacrypt::codec::{Decode, Encode};
        use thetacrypt::schemes::{bls04, sg02};
        let mut r = rng_from(seed);
        let params = ThresholdParams::new(1, 4).unwrap();
        let (pk, keys) = sg02::keygen(params, &mut r);
        prop_assert_eq!(&sg02::PublicKey::decoded(&pk.encoded()).unwrap(), &pk);
        let ct = sg02::encrypt(&pk, b"l", b"m", &mut r);
        prop_assert_eq!(&sg02::Ciphertext::decoded(&ct.encoded()).unwrap(), &ct);
        let share = sg02::create_decryption_share(&keys[0], &ct, &mut r).unwrap();
        prop_assert_eq!(&sg02::DecryptionShare::decoded(&share.encoded()).unwrap(), &share);
        let (bpk, bkeys) = bls04::keygen(params, &mut r);
        let bshare = bls04::sign_share(&bkeys[0], b"m").unwrap();
        prop_assert_eq!(&bls04::SignatureShare::decoded(&bshare.encoded()).unwrap(), &bshare);
        prop_assert_eq!(&bls04::PublicKey::decoded(&bpk.encoded()).unwrap(), &bpk);
    }
}
