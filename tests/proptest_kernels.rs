//! Property-based tests for the scalar-multiplication kernels: the MSM
//! agrees with the naive `Σ sᵢ·Pᵢ` loop on every group, batched share
//! verification accepts exactly when every share verifies individually
//! (with bisection naming the first culprit), and the optimised combine
//! paths produce the same results as the serial baselines they
//! replaced.

use proptest::prelude::*;
use rand::SeedableRng;
use thetacrypt::math::msm::msm;
use thetacrypt::math::BigUint;
use thetacrypt::schemes::ThresholdParams;

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn msm_matches_naive_ed25519(seed in any::<u64>(), n in 0usize..10) {
        use thetacrypt::math::ed25519::{Point, Scalar};
        let mut r = rng_from(seed);
        let scalars: Vec<Scalar> = (0..n).map(|_| Scalar::random(&mut r)).collect();
        let points: Vec<Point> =
            (0..n).map(|_| Point::mul_base(&Scalar::random(&mut r))).collect();
        let coeffs: Vec<&BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
        let mut naive = Point::identity();
        for (p, s) in points.iter().zip(&scalars) {
            naive = naive.add(&p.mul(s));
        }
        prop_assert_eq!(msm(&points, &coeffs), naive);
    }

    #[test]
    fn msm_matches_naive_bn254(seed in any::<u64>(), n in 0usize..6) {
        use thetacrypt::math::bn254::{Fr, G1, G2};
        let mut r = rng_from(seed);
        let scalars: Vec<Fr> = (0..n).map(|_| Fr::random(&mut r)).collect();
        let coeffs: Vec<&BigUint> = scalars.iter().map(|s| s.to_biguint()).collect();
        let g1s: Vec<G1> = (0..n).map(|_| G1::mul_generator(&Fr::random(&mut r))).collect();
        let mut naive1 = G1::identity();
        for (p, s) in g1s.iter().zip(&scalars) {
            naive1 = naive1.add(&p.mul(s));
        }
        prop_assert_eq!(msm(&g1s, &coeffs), naive1);
        let g2s: Vec<G2> = (0..n).map(|_| G2::mul_generator(&Fr::random(&mut r))).collect();
        let mut naive2 = G2::identity();
        for (p, s) in g2s.iter().zip(&scalars) {
            naive2 = naive2.add(&p.mul(s));
        }
        prop_assert_eq!(msm(&g2s, &coeffs), naive2);
    }

    #[test]
    fn batch_lagrange_matches_per_party(seed in any::<u64>(), t in 0u16..5, extra in 1u16..4) {
        use thetacrypt::schemes::common::{
            lagrange_at_zero, lagrange_coeffs_at_zero, shamir_share, PartyId,
        };
        use thetacrypt::math::ed25519::Scalar;
        use rand::seq::SliceRandom;
        let n = 2 * t + extra;
        let params = ThresholdParams::new(t, n).unwrap();
        let mut r = rng_from(seed);
        let shares = shamir_share(&Scalar::random(&mut r), params, &mut r);
        let mut ids: Vec<PartyId> = shares.iter().map(|(id, _)| *id).collect();
        ids.shuffle(&mut r);
        ids.truncate((t + 1) as usize);
        let batch = lagrange_coeffs_at_zero::<Scalar>(&ids).unwrap();
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(&batch[i], &lagrange_at_zero::<Scalar>(*id, &ids).unwrap());
        }
    }

    #[test]
    fn bls04_batch_accepts_iff_all_valid(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        bad in proptest::option::of(0usize..5),
    ) {
        use thetacrypt::schemes::{bls04, SchemeError};
        let mut r = rng_from(seed);
        let params = ThresholdParams::new(2, 5).unwrap();
        let (pk, keys) = bls04::keygen(params, &mut r);
        let mut shares: Vec<_> =
            keys.iter().map(|k| bls04::sign_share(k, &msg).unwrap()).collect();
        if let Some(i) = bad {
            // Forge share i by signing a different message with the
            // same key: individually well-formed, but invalid here.
            shares[i] = bls04::sign_share(&keys[i], b"forged").unwrap();
            // A forgery only exists when the messages actually differ.
            prop_assume!(msg != b"forged");
        }
        let all_valid = shares.iter().all(|s| bls04::verify_share(&pk, &msg, s));
        let batch = bls04::verify_shares_batch(&pk, &msg, &shares);
        prop_assert_eq!(all_valid, batch.is_ok());
        if let Some(i) = bad {
            match batch {
                Err(SchemeError::InvalidShare { party }) => {
                    prop_assert_eq!(party, shares[i].id().value());
                }
                other => prop_assert!(false, "expected InvalidShare, got {:?}", other),
            }
        }
    }

    #[test]
    fn sg02_batch_accepts_iff_all_valid(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..64),
        bad in proptest::option::of(0usize..5),
    ) {
        use thetacrypt::schemes::{sg02, SchemeError};
        let mut r = rng_from(seed);
        let params = ThresholdParams::new(2, 5).unwrap();
        let (pk, keys) = sg02::keygen(params, &mut r);
        let ct = sg02::encrypt(&pk, b"label", &msg, &mut r);
        let other_ct = sg02::encrypt(&pk, b"label", &msg, &mut r);
        let mut shares: Vec<_> = keys
            .iter()
            .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
            .collect();
        if let Some(i) = bad {
            // A valid share for a *different* ciphertext: the proof
            // verifies against other_ct but not against ct.
            shares[i] = sg02::create_decryption_share(&keys[i], &other_ct, &mut r).unwrap();
        }
        let all_valid =
            shares.iter().all(|s| sg02::verify_decryption_share(&pk, &ct, s));
        let batch = sg02::verify_decryption_shares_batch(&pk, &ct, &shares);
        prop_assert_eq!(all_valid, batch.is_ok());
        if let Some(i) = bad {
            prop_assert!(!all_valid);
            match batch {
                Err(SchemeError::InvalidShare { party }) => {
                    prop_assert_eq!(party, shares[i].id().value());
                }
                other => prop_assert!(false, "expected InvalidShare, got {:?}", other),
            }
        }
    }

    #[test]
    fn optimized_combine_matches_serial_baseline(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        use thetacrypt::schemes::{bls04, sg02};
        let mut r = rng_from(seed);
        let params = ThresholdParams::new(2, 5).unwrap();

        let (bpk, bkeys) = bls04::keygen(params, &mut r);
        let bshares: Vec<_> =
            bkeys[..3].iter().map(|k| bls04::sign_share(k, &msg).unwrap()).collect();
        let fast = bls04::combine(&bpk, &msg, &bshares).unwrap();
        let slow = bls04::combine_serial_baseline(&bpk, &msg, &bshares).unwrap();
        prop_assert_eq!(fast, slow);

        let (spk, skeys) = sg02::keygen(params, &mut r);
        let ct = sg02::encrypt(&spk, b"label", &msg, &mut r);
        let sshares: Vec<_> = skeys[..3]
            .iter()
            .map(|k| sg02::create_decryption_share(k, &ct, &mut r).unwrap())
            .collect();
        let fast = sg02::combine(&spk, &ct, &sshares).unwrap();
        let slow = sg02::combine_serial_baseline(&spk, &ct, &sshares).unwrap();
        prop_assert_eq!(&fast, &msg);
        prop_assert_eq!(fast, slow);
    }
}
