//! End-to-end observability test: a 4-node in-memory Θ-network driven
//! through the RPC service, asserting that the three observability
//! endpoints (`GetNodeStats`, `GetMetrics`, `GetTrace`) agree with each
//! other and with the work actually performed.

use std::time::Duration;
use thetacrypt::core::ThetaNetworkBuilder;
use thetacrypt::metrics::TraceEventKind;
use thetacrypt::orchestration::Request;
use thetacrypt::service::RpcClient;

/// Extracts the value of an exact metric line (`name value` or
/// `name{labels} value`) from a Prometheus text exposition.
fn metric_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        let rest = line.strip_prefix(series)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[test]
fn observability_endpoints_agree_end_to_end() {
    let mut net = ThetaNetworkBuilder::new(1, 4)
        .with_bls04()
        .seed(41)
        .build()
        .expect("build");
    let addr = net.serve_rpc(1, "127.0.0.1:0".parse().unwrap()).unwrap();
    let mut client = RpcClient::connect(addr, Duration::from_secs(5)).unwrap();

    // Drive three distinct signing requests plus one duplicate (the
    // duplicate must be answered from the result cache, not start a
    // fourth instance).
    let messages: [&[u8]; 3] = [b"block 1", b"block 2", b"block 3"];
    for msg in messages {
        let (sig, _) = client.run_protocol(Request::Bls04Sign(msg.to_vec())).unwrap();
        assert!(!sig.is_empty());
    }
    let (dup, _) = client
        .run_protocol(Request::Bls04Sign(messages[0].to_vec()))
        .unwrap();
    assert!(!dup.is_empty());

    // --- GetNodeStats vs the trace journal ---------------------------
    let stats = client.node_stats().unwrap();
    assert_eq!(stats.instances_started, 3);
    assert_eq!(stats.instances_completed, 3);
    assert_eq!(stats.instances_timed_out, 0);
    let obs = net.node_observability(1);
    assert_eq!(
        obs.journal.instances_started() as u64,
        stats.instances_started,
        "trace journal and event-loop counters must agree on starts"
    );

    // --- GetMetrics: per-phase histograms ----------------------------
    let text = client.metrics().unwrap();
    for name in [
        "theta_share_compute_seconds",
        "theta_share_verify_seconds",
        "theta_combine_seconds",
        "theta_e2e_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {name} histogram")),
            "metrics text is missing histogram {name}:\n{text}"
        );
    }
    // The e2e histogram records one sample per completed instance; the
    // cache-hit duplicate must not add one.
    assert_eq!(metric_value(&text, "theta_e2e_seconds_count"), Some(3.0));
    assert_eq!(
        metric_value(&text, "theta_share_compute_seconds_count"),
        Some(3.0)
    );
    assert_eq!(metric_value(&text, "theta_combine_seconds_count"), Some(3.0));
    assert_eq!(metric_value(&text, "theta_instances_started_total"), Some(3.0));
    assert_eq!(metric_value(&text, "theta_cache_hits_total"), Some(1.0));

    // --- GetMetrics: per-peer network counters -----------------------
    // Node 1 broadcasts its share to each of the three peers once per
    // instance (more under retries, never less).
    for peer in 2..=4 {
        let series = format!("theta_net_messages_sent_total{{peer=\"{peer}\"}}");
        let sent = metric_value(&text, &series)
            .unwrap_or_else(|| panic!("missing series {series} in:\n{text}"));
        assert!(sent >= 3.0, "{series} = {sent}, expected >= 3");
    }
    // Quorum is 2-of-4, so at least one peer share arrived per instance.
    let received: f64 = (2..=4)
        .filter_map(|peer| {
            metric_value(
                &text,
                &format!("theta_net_messages_received_total{{peer=\"{peer}\"}}"),
            )
        })
        .sum();
    assert!(received >= 3.0, "received {received} peer messages, expected >= 3");

    // --- GetMetrics: RPC-layer counters ------------------------------
    // 4 protocol calls (3 + duplicate) on this connection so far.
    let protocol_rpcs =
        metric_value(&text, "theta_rpc_requests_total{method=\"protocol\"}").unwrap();
    assert_eq!(protocol_rpcs, 4.0);

    // --- GetTrace: ordered lifecycle ---------------------------------
    let instance = Request::Bls04Sign(messages[1].to_vec()).instance_id().0;
    let trace = client.trace(instance).unwrap();
    assert!(!trace.truncated, "nothing was evicted, the trace must be complete");
    assert!(trace.wall_anchor_micros > 0, "journal must carry a wall-clock anchor");
    let events = trace.events;
    assert!(events.iter().all(|e| e.instance == instance));
    assert!(
        events.windows(2).all(|w| w[0].at_micros <= w[1].at_micros),
        "trace timestamps must be monotonic"
    );
    let position = |kind: TraceEventKind| {
        events
            .iter()
            .position(|e| e.kind == kind)
            .unwrap_or_else(|| panic!("trace is missing {}", kind.label()))
    };
    let lifecycle = [
        TraceEventKind::RpcReceived,
        TraceEventKind::InstanceStarted,
        TraceEventKind::ShareComputed,
        TraceEventKind::ShareSent,
        TraceEventKind::QuorumReached,
        TraceEventKind::Combined,
        TraceEventKind::ResultDelivered,
    ];
    let positions: Vec<usize> = lifecycle.iter().map(|&k| position(k)).collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "lifecycle out of order: {positions:?}"
    );
    // At least one peer share was received and verified on the way.
    assert!(events
        .iter()
        .any(|e| e.kind == TraceEventKind::ShareVerified && e.peer != 0));

    // The duplicate shows up as a cache hit on the first instance's trace.
    let first = Request::Bls04Sign(messages[0].to_vec()).instance_id().0;
    let first_events = client.trace(first).unwrap().events;
    assert!(first_events
        .iter()
        .any(|e| e.kind == TraceEventKind::CacheHit));

    // --- Unknown-instance error path ---------------------------------
    let err = client.trace([0xEE; 32]).unwrap_err();
    assert!(
        matches!(err, thetacrypt::service::client::RpcError::Server(_)),
        "unknown instance id must yield a server error, got {err:?}"
    );
}

/// `GetTrace` on an instance whose journal entries were (partially)
/// evicted by the ring must flag the trace truncated on the wire
/// instead of silently serving the suffix as if it were complete.
#[test]
fn get_trace_flags_ring_evicted_instances() {
    let mut net = ThetaNetworkBuilder::new(1, 4)
        .with_bls04()
        .seed(42)
        .build()
        .expect("build");
    let addr = net.serve_rpc(1, "127.0.0.1:0".parse().unwrap()).unwrap();
    let mut client = RpcClient::connect(addr, Duration::from_secs(5)).unwrap();

    let (sig, _) = client
        .run_protocol(Request::Bls04Sign(b"soon evicted".to_vec()))
        .unwrap();
    assert!(!sig.is_empty());
    let instance = Request::Bls04Sign(b"soon evicted".to_vec()).instance_id().0;
    let complete = client.trace(instance).unwrap();
    assert!(!complete.truncated);
    let full_len = complete.events.len();
    assert!(full_len > 0);

    // Wrap the ring: enough filler traffic from other instances to push
    // the signing instance's *oldest* events out of the journal while
    // its tail survives (a fully evicted instance reads as "nothing
    // recorded", which is a different, already-tested path).
    assert!(full_len > 3, "trace too short to evict partially");
    let obs = net.node_observability(1);
    for i in 0..thetacrypt::metrics::DEFAULT_JOURNAL_CAPACITY - full_len + 3 {
        let mut filler = [0xAB; 32];
        filler[..8].copy_from_slice(&(i as u64).to_le_bytes());
        obs.journal.record(filler, TraceEventKind::RpcReceived);
    }

    let evicted = client.trace(instance).unwrap();
    assert!(
        evicted.truncated,
        "ring-evicted instance must be flagged truncated over the wire"
    );
    assert!(
        evicted.events.len() < full_len,
        "eviction must have shortened the trace ({} -> {})",
        full_len,
        evicted.events.len()
    );
    assert_eq!(
        evicted.wall_anchor_micros, complete.wall_anchor_micros,
        "the wall anchor is a journal-creation constant"
    );
}
