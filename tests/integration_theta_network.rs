//! Cross-crate integration tests: full Θ-networks running every scheme
//! end-to-end through orchestration and the in-memory network, plus
//! fault injection (byzantine shares, crashes, latency).

use rand::SeedableRng;
use std::time::Duration;
use theta_codec::Encode;
use thetacrypt::core::ThetaNetworkBuilder;
use thetacrypt::network::LinkProfile;
use thetacrypt::orchestration::Request;
use thetacrypt::protocols::ProtocolOutput;

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(0x17e5)
}

#[test]
fn every_scheme_end_to_end_on_one_network() {
    let mut r = rng();
    let net = ThetaNetworkBuilder::new(1, 4)
        .with_all_schemes()
        .seed(11)
        .build()
        .expect("build");

    // SG02 decrypt.
    let pk = net.public_keys().sg02.as_ref().unwrap();
    let ct = thetacrypt::schemes::sg02::encrypt(pk, b"l", b"sg02 e2e", &mut r);
    let out = net
        .submit_and_wait(1, Request::Sg02Decrypt(ct.encoded()))
        .unwrap();
    assert_eq!(out, ProtocolOutput::Plaintext(b"sg02 e2e".to_vec()));

    // BZ03 decrypt.
    let pk = net.public_keys().bz03.as_ref().unwrap();
    let ct = thetacrypt::schemes::bz03::encrypt(pk, b"l", b"bz03 e2e", &mut r);
    let out = net
        .submit_and_wait(2, Request::Bz03Decrypt(ct.encoded()))
        .unwrap();
    assert_eq!(out, ProtocolOutput::Plaintext(b"bz03 e2e".to_vec()));

    // SH00 sign + verify.
    let out = net
        .submit_and_wait(3, Request::Sh00Sign(b"sh00 e2e".to_vec()))
        .unwrap();
    let ProtocolOutput::Signature(bytes) = out else { panic!("expected sig") };
    let sig = <thetacrypt::schemes::sh00::Signature as theta_codec::Decode>::decoded(&bytes)
        .unwrap();
    let pk = net.public_keys().sh00.as_ref().unwrap();
    assert!(thetacrypt::schemes::sh00::verify(pk, b"sh00 e2e", &sig));

    // BLS04 sign + verify.
    let out = net
        .submit_and_wait(4, Request::Bls04Sign(b"bls04 e2e".to_vec()))
        .unwrap();
    let ProtocolOutput::Signature(bytes) = out else { panic!("expected sig") };
    let sig = <thetacrypt::schemes::bls04::Signature as theta_codec::Decode>::decoded(&bytes)
        .unwrap();
    let pk = net.public_keys().bls04.as_ref().unwrap();
    assert!(thetacrypt::schemes::bls04::verify(pk, b"bls04 e2e", &sig));

    // KG20 sign + verify (full two-round mode, all 4 nodes).
    let out = net
        .submit_and_wait(1, Request::Kg20Sign(b"kg20 e2e".to_vec()))
        .unwrap();
    let ProtocolOutput::Signature(bytes) = out else { panic!("expected sig") };
    let sig = <thetacrypt::schemes::kg20::Signature as theta_codec::Decode>::decoded(&bytes)
        .unwrap();
    let pk = net.public_keys().kg20.as_ref().unwrap();
    assert!(thetacrypt::schemes::kg20::verify(pk, b"kg20 e2e", &sig));

    // CKS05 coin, agreed across nodes.
    let a = net
        .submit_and_wait(2, Request::Cks05Coin(b"c".to_vec()))
        .unwrap();
    let b = net
        .submit_and_wait(3, Request::Cks05Coin(b"c".to_vec()))
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn survives_t_crashes_for_robust_schemes() {
    let mut r = rng();
    // 7 nodes, t = 2: crash two nodes, the remaining five still serve.
    let net = ThetaNetworkBuilder::new(2, 7)
        .with_sg02()
        .with_bls04()
        .seed(22)
        .build()
        .unwrap();
    net.hub().isolate_node(6, true);
    net.hub().isolate_node(7, true);

    let pk = net.public_keys().sg02.as_ref().unwrap();
    let ct = thetacrypt::schemes::sg02::encrypt(pk, b"l", b"crashing", &mut r);
    let out = net
        .submit_and_wait(1, Request::Sg02Decrypt(ct.encoded()))
        .unwrap();
    assert_eq!(out, ProtocolOutput::Plaintext(b"crashing".to_vec()));

    let out = net
        .submit_and_wait(2, Request::Bls04Sign(b"still alive".to_vec()))
        .unwrap();
    assert!(matches!(out, ProtocolOutput::Signature(_)));
}

#[test]
fn kg20_stalls_under_crashes_as_designed() {
    // FROST's fixed signing group = all nodes: one crash stalls it
    // (non-robustness, paper §3.5) and the instance times out.
    let net = ThetaNetworkBuilder::new(1, 4)
        .with_kg20(0)
        .seed(33)
        .instance_timeout(Duration::from_secs(2))
        .build()
        .unwrap();
    net.hub().isolate_node(4, true);
    let result = net.submit_and_wait(1, Request::Kg20Sign(b"doomed".to_vec()));
    assert!(result.is_err(), "kg20 must not complete with a crashed member");
}

#[test]
fn latency_injection_slows_but_completes() {
    let r = rng();
    let net = ThetaNetworkBuilder::new(1, 4)
        .with_cks05()
        .link_profile(LinkProfile::fixed(Duration::from_millis(40)))
        .seed(44)
        .build()
        .unwrap();
    let _ = r; // deterministic request
    let start = std::time::Instant::now();
    let out = net
        .submit_and_wait(1, Request::Cks05Coin(b"slow link".to_vec()))
        .unwrap();
    let elapsed = start.elapsed();
    assert!(matches!(out, ProtocolOutput::Coin(_)));
    // One share exchange must cross the 40 ms links at least once.
    assert!(elapsed >= Duration::from_millis(35), "elapsed {elapsed:?}");
}

#[test]
fn byzantine_share_injection_is_tolerated() {
    // A byzantine peer broadcasts garbage envelopes and corrupted shares;
    // honest nodes drop them and the protocol still completes.
    use theta_network::inmemory::{InMemoryConfig, InMemoryHub};
    use theta_network::Network;
    use theta_orchestration::{spawn_node, Envelope, InstanceId, KeyChest, NodeConfig};
    use thetacrypt::schemes::ThresholdParams;

    let mut r = rng();
    let params = ThresholdParams::new(1, 4).unwrap();
    let (pk, keys) = thetacrypt::schemes::cks05::keygen(params, &mut r);
    let (_hub, mut nets) = InMemoryHub::build(4, InMemoryConfig::default());
    // Node 4 is the adversary: it never runs the protocol, it only spams.
    let adversary = nets.pop().unwrap();
    let handles: Vec<_> = keys[..3]
        .iter()
        .zip(nets)
        .map(|(key, net)| {
            let mut chest = KeyChest::new();
            chest.cks05 = Some(key.clone());
            spawn_node(chest, Box::new(net) as Box<dyn Network>, NodeConfig::default())
        })
        .collect();

    let request = Request::Cks05Coin(b"under attack".to_vec());
    // Spam 1: totally malformed bytes.
    adversary.broadcast_p2p(vec![0xff; 64]);
    // Spam 2: well-formed envelope with a garbage payload for the real instance.
    let envelope = Envelope {
        instance: request.instance_id(),
        request: request.clone(),
        round: 1,
        sender: 4,
        payload: vec![1, 2, 3, 4],
    };
    adversary.broadcast_p2p(envelope.encoded());
    // Spam 3: envelope whose claimed instance id does not match its request.
    let bogus = Envelope {
        instance: InstanceId([9u8; 32]),
        request: request.clone(),
        round: 1,
        sender: 4,
        payload: vec![],
    };
    adversary.broadcast_p2p(bogus.encoded());

    let pending: Vec<_> = handles.iter().map(|h| h.submit(request.clone())).collect();
    let mut outputs = Vec::new();
    for p in pending {
        let result = p.wait_timeout(Duration::from_secs(15)).expect("completion");
        outputs.push(result.outcome.expect("coin"));
    }
    assert_eq!(outputs[0], outputs[1]);
    assert_eq!(outputs[1], outputs[2]);
    // Sanity: the coin verifies against the real key set.
    let _ = pk;
}

#[test]
fn lossy_network_retries_nothing_but_quorum_still_forms() {
    // 10% loss on P2P: with n = 7 and quorum 3, enough shares get through.
    use theta_network::inmemory::{InMemoryConfig, InMemoryHub};
    use theta_network::Network;
    use theta_orchestration::{spawn_node, KeyChest, NodeConfig};
    use thetacrypt::schemes::ThresholdParams;

    let mut r = rng();
    let params = ThresholdParams::new(2, 7).unwrap();
    let (_pk, keys) = thetacrypt::schemes::cks05::keygen(params, &mut r);
    let (_hub, nets) = InMemoryHub::build(
        7,
        InMemoryConfig { drop_probability: 0.10, seed: 5, ..Default::default() },
    );
    let handles: Vec<_> = keys
        .iter()
        .zip(nets)
        .map(|(key, net)| {
            let mut chest = KeyChest::new();
            chest.cks05 = Some(key.clone());
            spawn_node(chest, Box::new(net) as Box<dyn Network>, NodeConfig::default())
        })
        .collect();
    let request = Request::Cks05Coin(b"lossy".to_vec());
    let pending: Vec<_> = handles.iter().map(|h| h.submit(request.clone())).collect();
    let mut ok = 0;
    for p in pending {
        if let Ok(result) = p.wait_timeout(Duration::from_secs(15)) {
            if result.outcome.is_ok() {
                ok += 1;
            }
        }
    }
    assert!(ok >= 5, "most nodes should complete under 10% loss, got {ok}");
}

#[test]
fn tcp_mesh_runs_a_real_protocol() {
    // End-to-end over real TCP sockets (the standalone deployment mode).
    use theta_network::handshake::MeshAuth;
    use theta_network::tcp::TcpMesh;
    use theta_network::Network;
    use theta_orchestration::{spawn_node, KeyChest, NodeConfig};
    use thetacrypt::schemes::ThresholdParams;

    let mut r = rng();
    let params = ThresholdParams::new(1, 4).unwrap();
    let (pk, sg_keys) = thetacrypt::schemes::sg02::keygen(params, &mut r);
    let (_, kg_keys) = thetacrypt::schemes::kg20::keygen(params, &mut r);

    // Bind every listener on an OS-assigned port first, then hand the
    // real address list to each node — no fixed ports to collide on.
    let listeners: Vec<std::net::TcpListener> = (0..4)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> =
        listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let meshes: Vec<_> = listeners
        .into_iter()
        .zip(1..=4u16)
        .map(|(listener, id)| {
            let list = addrs.clone();
            std::thread::spawn(move || {
                let auth = MeshAuth::insecure_dev(id, 4, 0xC0FFEE);
                TcpMesh::connect_listener(id, listener, &list, auth).unwrap()
            })
        })
        .collect();
    let handles: Vec<_> = meshes
        .into_iter()
        .enumerate()
        .map(|(i, join)| {
            let mesh = join.join().unwrap();
            let mut chest = KeyChest::new();
            chest.sg02 = Some(sg_keys[i].clone());
            chest.kg20 = Some(kg_keys[i].clone());
            spawn_node(chest, Box::new(mesh) as Box<dyn Network>, NodeConfig::default())
        })
        .collect();

    // One-round scheme over TCP.
    let ct = thetacrypt::schemes::sg02::encrypt(&pk, b"l", b"over tcp", &mut r);
    let pending: Vec<_> = handles
        .iter()
        .map(|h| h.submit(Request::Sg02Decrypt(ct.encoded())))
        .collect();
    for p in pending {
        let result = p.wait_timeout(Duration::from_secs(20)).expect("completion");
        assert_eq!(
            result.outcome.unwrap(),
            ProtocolOutput::Plaintext(b"over tcp".to_vec())
        );
    }

    // Two-round KG20 exercises the TCP TOB sequencer.
    let pending: Vec<_> = handles
        .iter()
        .map(|h| h.submit(Request::Kg20Sign(b"tcp frost".to_vec())))
        .collect();
    for p in pending {
        let result = p.wait_timeout(Duration::from_secs(20)).expect("completion");
        assert!(matches!(result.outcome.unwrap(), ProtocolOutput::Signature(_)));
    }
}
