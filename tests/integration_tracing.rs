//! Cross-node tracing and health-plane acceptance: a 4-node gossip
//! ring runs one protocol instance end-to-end; `CollectTrace` on node 1
//! fans `GetTrace` over the roster and merges all four journals into a
//! single offset-aligned causal timeline whose gossip hop counts match
//! the overlay topology. `GetHealth` reports degraded while the node is
//! saturated past its admission caps and ready again once the backlog
//! has drained.

use rand::SeedableRng;
use std::time::Duration;
use theta_codec::Encode;
use theta_network::demux::{span_hex, span_of};
use theta_network::gossip::GossipMesh;
use theta_network::handshake::MeshAuth;
use theta_network::Network;
use theta_orchestration::{spawn_node, KeyChest, NodeConfig};
use thetacrypt::metrics::TraceEventKind;
use thetacrypt::orchestration::Request;
use thetacrypt::service::{ClusterConfig, RpcClient, SloThresholds};

/// Parses the `hop=<n>` token out of a PeerRecv detail string.
fn hop_of(detail: &str) -> Option<u32> {
    detail.split_whitespace().find_map(|t| t.strip_prefix("hop=")?.parse().ok())
}

/// Ring distance between 1-based node ids on C(n; {1}).
fn ring_distance(n: u16, a: u16, b: u16) -> u32 {
    let d = (a as i32 - b as i32).unsigned_abs();
    d.min(n as u32 - d)
}

#[test]
fn collect_trace_merges_the_cluster_and_health_tracks_saturation() {
    const N: u16 = 4;
    const MESH_DEGREE: usize = 2; // offsets {1}: a plain ring

    let mut r = rand::rngs::StdRng::seed_from_u64(0x7ace);
    let params = thetacrypt::schemes::ThresholdParams::new(2, N).unwrap();
    let (pk, sg_keys) = thetacrypt::schemes::sg02::keygen(params, &mut r);

    // Overlay: bind all listeners first, then connect concurrently.
    let listeners: Vec<std::net::TcpListener> = (0..N)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let addrs: Vec<std::net::SocketAddr> =
        listeners.iter().map(|l| l.local_addr().unwrap()).collect();
    let meshes: Vec<_> = listeners
        .into_iter()
        .zip(1..=N)
        .map(|(listener, id)| {
            let list = addrs.clone();
            std::thread::spawn(move || {
                let auth = MeshAuth::insecure_dev(id, N, 0x7ace5);
                GossipMesh::connect_listener(id, listener, &list, auth, MESH_DEGREE).unwrap()
            })
        })
        .collect();

    // Nodes: node 1 gets tight admission caps so the saturation phase
    // below produces real overload rejections; the rest run defaults.
    let handles: Vec<std::sync::Arc<theta_orchestration::NodeHandle>> = meshes
        .into_iter()
        .enumerate()
        .map(|(i, join)| {
            let mesh = join.join().unwrap();
            let mut chest = KeyChest::new();
            chest.sg02 = Some(sg_keys[i].clone());
            let config = if i == 0 {
                NodeConfig {
                    max_inflight_instances: 2,
                    submission_queue_capacity: 2,
                    ..NodeConfig::default()
                }
            } else {
                NodeConfig::default()
            };
            std::sync::Arc::new(spawn_node(chest, Box::new(mesh) as Box<dyn Network>, config))
        })
        .collect();

    // RPC plane: bind every service first so each server knows the full
    // roster, then start them with it.
    let rpc_listeners: Vec<std::net::TcpListener> = (0..N)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    let peers: Vec<(u16, std::net::SocketAddr)> = rpc_listeners
        .iter()
        .enumerate()
        .map(|(i, l)| ((i + 1) as u16, l.local_addr().unwrap()))
        .collect();
    let _services: Vec<_> = rpc_listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            thetacrypt::service::serve_on(
                listener,
                handles[i].clone(),
                thetacrypt::service::PublicKeyChest::default(),
                Duration::from_secs(60),
                ClusterConfig {
                    peers: peers.clone(),
                    self_id: (i + 1) as u16,
                    slo: SloThresholds::default(),
                },
            )
            .unwrap()
        })
        .collect();
    let mut client = RpcClient::connect(peers[0].1, Duration::from_secs(60)).unwrap();

    // --- One traced instance across the whole ring -------------------
    let ct = thetacrypt::schemes::sg02::encrypt(&pk, b"l", b"traced", &mut r);
    let request = Request::Sg02Decrypt(ct.encoded());
    let instance = request.instance_id().0;
    let span = span_hex(&span_of(&instance));
    let (plain, _) = client.run_protocol(request).unwrap();
    assert_eq!(plain, b"traced");

    // Every node's share flood must land in every journal before the
    // merge is judged; receive-side journaling is asynchronous.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let trace = loop {
        let trace = client.collect_trace(instance).unwrap();
        let pairs_seen = (1..=N)
            .flat_map(|p| (1..=N).map(move |q| (p, q)))
            .filter(|&(p, q)| p != q)
            .filter(|&(p, q)| {
                trace.entries.iter().any(|e| {
                    e.node == q && e.event.kind == TraceEventKind::PeerRecv && e.event.peer == p
                })
            })
            .count();
        if pairs_seen == (N as usize) * (N as usize - 1) {
            break trace;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "only {pairs_seen} origin→receiver pairs journaled a receive"
        );
        std::thread::sleep(Duration::from_millis(30));
    };

    // One merged timeline: all four journals, sorted, causal.
    assert_eq!(trace.nodes_reporting, N, "every roster node must contribute");
    assert!(!trace.truncated);
    assert!(
        trace.entries.windows(2).all(|w| w[0].aligned_micros <= w[1].aligned_micros),
        "merged timeline must be sorted by aligned time"
    );
    assert_eq!(
        trace.causality_violations, 0,
        "every receive must align after its origin's earliest send"
    );
    for e in &trace.entries {
        if e.event.kind != TraceEventKind::PeerRecv {
            continue;
        }
        // Direct re-check of what the violation counter summarizes.
        let send = trace
            .entries
            .iter()
            .filter(|s| s.node == e.event.peer && s.event.kind == TraceEventKind::PeerSend)
            .map(|s| s.aligned_micros)
            .min()
            .unwrap_or_else(|| panic!("receive from node {} with no send", e.event.peer));
        assert!(
            send <= e.aligned_micros,
            "receive at node {} aligned before node {}'s send",
            e.node,
            e.event.peer
        );
        // The trace context rode the AEAD frames intact end to end.
        assert!(
            e.event.detail.contains(&format!("span={span}")),
            "receive carries a foreign span: {}",
            e.event.detail
        );
    }

    // Hop counts match the overlay: the first copy of a flood reaches a
    // node over a shortest path, so the minimum journaled hop per
    // origin→receiver pair is exactly the ring distance.
    for origin in 1..=N {
        for receiver in 1..=N {
            if origin == receiver {
                continue;
            }
            let min_hop = trace
                .entries
                .iter()
                .filter(|e| {
                    e.node == receiver
                        && e.event.kind == TraceEventKind::PeerRecv
                        && e.event.peer == origin
                })
                .filter_map(|e| hop_of(&e.event.detail))
                .min()
                .unwrap();
            assert_eq!(
                min_hop,
                ring_distance(N, origin, receiver),
                "hop count {origin}→{receiver} off the ring distance"
            );
        }
    }

    // --- Health plane: degraded under saturation, ready after drain --
    // Burst 12 distinct decrypts into node 1's caps of 2: some complete,
    // the rest are refused as Overloaded.
    let mut ids = Vec::new();
    for i in 0..12u8 {
        let ct = thetacrypt::schemes::sg02::encrypt(&pk, b"l", &[i], &mut r);
        ids.push(client.submit_protocol(Request::Sg02Decrypt(ct.encoded())).unwrap());
    }
    let (mut ok, mut rejected) = (0, 0);
    for id in ids {
        match client.collect_protocol(id) {
            Ok(_) => ok += 1,
            Err(thetacrypt::service::client::RpcError::Overloaded) => rejected += 1,
            Err(e) => panic!("unexpected burst outcome: {e}"),
        }
    }
    assert!(ok >= 1, "no burst request survived admission");
    assert!(rejected >= 1, "the caps never rejected — not saturated");

    let degraded = client.health().unwrap();
    assert!(!degraded.ready, "watchdog must degrade after overload rejections");
    assert!(
        degraded.reasons.iter().any(|r| r.contains("overload rejection")),
        "degraded verdict must name the rejections: {:?}",
        degraded.reasons
    );
    assert!(degraded.overload_rejections >= rejected as u64);

    // Everything already drained (all burst responses collected); the
    // next window has no new faults, so the verdict recovers.
    let recovered = client.health().unwrap();
    assert!(
        recovered.ready,
        "watchdog must report ready after the drain, got {:?}",
        recovered.reasons
    );
    assert_eq!(recovered.runqueue_depth, 0);
    assert_eq!(recovered.submission_queue_depth, 0);
}
