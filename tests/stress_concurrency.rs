//! Saturation stress test for the router + worker-pool orchestration:
//! a 4-node in-memory mesh under a burst of concurrent mixed
//! submissions (sg02 decrypt, bls04 sign, kg20/FROST sign), every
//! request submitted at every node at once.
//!
//! Asserted invariants:
//! - every subscriber at every node receives an `Ok` terminal result;
//! - for each request, all four nodes agree on the output;
//! - no message was lost: the `dropped_{malformed,spoofed}` counters
//!   and the mailbox-overflow counter stay zero at every node
//!   (residual drops — traffic for already-finished instances — are
//!   the normal post-quorum case and are exempt);
//! - instance accounting balances: starts == completions, no timeouts.
//!
//! The full ≥64-request mix runs in release (CI runs this under
//! `cargo test --release`, see scripts/ci.sh); debug builds run a
//! scaled-down mix so the tier-1 gate stays fast on small hosts.

use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use thetacrypt::codec::Encode;
use thetacrypt::core::ThetaNetworkBuilder;
use thetacrypt::orchestration::Request;
use thetacrypt::protocols::ProtocolOutput;

/// Extracts the value of an exact metric line (`name value` or
/// `name{labels} value`) from a Prometheus text exposition.
fn metric_value(text: &str, series: &str) -> f64 {
    text.lines()
        .find_map(|line| {
            let rest = line.strip_prefix(series)?;
            let rest = rest.strip_prefix(' ')?;
            rest.trim().parse().ok()
        })
        .unwrap_or(0.0)
}

#[test]
fn saturation_mixed_schemes_all_agree_nothing_dropped() {
    // `THETA_STRESS_REPEATS=n` re-runs the whole mix on a fresh mesh n
    // times. scripts/analysis.sh uses this to soak the orchestration
    // layer under ThreadSanitizer, where a single run's interleavings
    // are too few to trust.
    let repeats: usize = std::env::var("THETA_STRESS_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    for rep in 1..=repeats {
        if repeats > 1 {
            eprintln!("stress repeat {rep}/{repeats}");
        }
        run_saturation_mix();
    }
}

fn run_saturation_mix() {
    // ≥64 distinct requests in release; a lighter mix in debug so the
    // default `cargo test -q` gate stays quick on 1-core hosts.
    let per_scheme: usize = if cfg!(debug_assertions) { 6 } else { 22 };
    let total = 3 * per_scheme; // 66 distinct requests in release

    let net = ThetaNetworkBuilder::new(1, 4)
        .with_sg02()
        .with_bls04()
        .with_kg20(0) // full two-round FROST: exercises multi-round hosts
        .seed(0x57e5)
        .instance_timeout(Duration::from_secs(120))
        .build()
        .expect("build 4-node mesh");

    // Pre-encrypt one distinct ciphertext per sg02 request.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x57e5);
    let pk = net.public_keys().sg02.clone().unwrap();
    let requests: Vec<Request> = (0..per_scheme)
        .flat_map(|i| {
            let msg = format!("stress message {i}").into_bytes();
            let ct = thetacrypt::schemes::sg02::encrypt(&pk, b"stress", &msg, &mut rng);
            [
                Request::Sg02Decrypt(ct.encoded()),
                Request::Bls04Sign(msg.clone()),
                Request::Kg20Sign(msg),
            ]
        })
        .collect();
    assert_eq!(requests.len(), total);

    // One submitter thread per node: submit the whole mix back-to-back
    // (saturating the router + pool), then collect every result.
    let requests = Arc::new(requests);
    let collectors: Vec<_> = (1..=4u16)
        .map(|node_id| {
            let node = net.node(node_id).clone();
            let requests = requests.clone();
            std::thread::spawn(move || {
                let pending: Vec<_> =
                    requests.iter().map(|req| node.submit(req.clone())).collect();
                pending
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| {
                        let result = p
                            .wait_timeout(Duration::from_secs(180))
                            .unwrap_or_else(|e| {
                                panic!("node {node_id}, request {i}: wait failed: {e}")
                            });
                        let output = result.outcome.unwrap_or_else(|e| {
                            panic!("node {node_id}, request {i}: instance failed: {e}")
                        });
                        (i, output)
                    })
                    .collect::<HashMap<usize, ProtocolOutput>>()
            })
        })
        .collect();

    let per_node: Vec<HashMap<usize, ProtocolOutput>> =
        collectors.into_iter().map(|j| j.join().expect("collector thread")).collect();

    // Cross-node agreement, request by request.
    for i in 0..total {
        let reference = &per_node[0][&i];
        for (node_idx, outputs) in per_node.iter().enumerate().skip(1) {
            assert_eq!(
                &outputs[&i], reference,
                "request {i}: node {} disagrees with node 1",
                node_idx + 1
            );
        }
    }

    // Loss-free accounting at every node.
    for id in 1..=4u16 {
        let counters = net.node_counters(id);
        assert_eq!(
            counters.instances_started, total as u64,
            "node {id}: every distinct request starts exactly one instance"
        );
        assert_eq!(
            counters.instances_completed, total as u64,
            "node {id}: starts and completions must balance"
        );
        assert_eq!(counters.instances_timed_out, 0, "node {id}: no instance may time out");

        let text = net.node_observability(id).render_prometheus();
        for series in [
            "theta_messages_dropped_total{reason=\"malformed\"}",
            "theta_messages_dropped_total{reason=\"spoofed\"}",
            "theta_mailbox_dropped_total",
            "theta_overload_rejections_total",
        ] {
            assert_eq!(
                metric_value(&text, series),
                0.0,
                "node {id}: {series} must stay zero under saturation"
            );
        }
        // The pool fully drained: nothing left in flight or queued.
        assert_eq!(metric_value(&text, "theta_inflight_instances"), 0.0, "node {id}");
        assert_eq!(metric_value(&text, "theta_runqueue_depth"), 0.0, "node {id}");
    }
}

/// The service layer refuses — with the dedicated `Overloaded` wire
/// response, not an opaque error string or unbounded queueing — when the
/// node's submission queue is at its bound.
#[test]
fn rpc_overload_returns_overloaded_response() {
    use thetacrypt::network::inmemory::{InMemoryConfig, InMemoryHub};
    use thetacrypt::network::Network;
    use thetacrypt::orchestration::{spawn_node, KeyChest, NodeConfig};
    use thetacrypt::service::client::RpcError;
    use thetacrypt::service::{serve, PublicKeyChest, RpcClient};

    let (_hub, mut nets) = InMemoryHub::build(1, InMemoryConfig::default());
    let node = Arc::new(spawn_node(
        KeyChest::new(),
        Box::new(nets.pop().unwrap()) as Box<dyn Network>,
        // A zero-capacity submission queue: every protocol RPC must be
        // refused up front.
        NodeConfig { submission_queue_capacity: 0, ..NodeConfig::default() },
    ));
    let service = serve(
        "127.0.0.1:0".parse().unwrap(),
        node.clone(),
        PublicKeyChest::default(),
        Duration::from_secs(5),
    )
    .expect("bind rpc");
    let mut client = RpcClient::connect(service.addr(), Duration::from_secs(5)).unwrap();

    match client.run_protocol(Request::Cks05Coin(b"refused".to_vec())) {
        Err(RpcError::Overloaded) => {}
        other => panic!("expected RpcError::Overloaded, got {other:?}"),
    }

    // The refusal is counted, and nothing was buffered behind the router.
    let text = node.observability().render_prometheus();
    assert!(
        metric_value(&text, "theta_overload_rejections_total") >= 1.0,
        "overload rejection must be counted:\n{text}"
    );
    assert_eq!(node.counters().instances_started, 0, "nothing may have been queued");
}
