//! # thetacrypt
//!
//! Facade crate of the Thetacrypt reproduction: re-exports every layer of
//! the workspace so applications can depend on a single crate.
//!
//! The layering follows the paper's architecture (Fig. 2):
//!
//! - [`schemes`] — the cryptographic core (six threshold schemes);
//! - [`protocols`] — the Threshold Round Interface and state machines;
//! - [`orchestration`] — instance manager, executor, key manager;
//! - [`network`] — P2P + total-order broadcast transports;
//! - [`service`] — the RPC service layer (protocol API + scheme API);
//! - [`core`] — the integrated node / in-process Θ-network builder;
//! - [`sim`] and [`metrics`] — the evaluation testbed;
//! - [`math`], [`primitives`], [`codec`] — the substrates everything is
//!   built from.
//!
//! ## Quickstart
//!
//! ```
//! use thetacrypt::core::ThetaNetworkBuilder;
//! use thetacrypt::orchestration::Request;
//!
//! let net = ThetaNetworkBuilder::new(1, 4).with_cks05().seed(1).build().unwrap();
//! let coin = net.submit_and_wait(1, Request::Cks05Coin(b"epoch-1".to_vec())).unwrap();
//! assert_eq!(coin.as_bytes().len(), 32);
//! ```

pub use theta_codec as codec;
pub use theta_core as core;
pub use theta_math as math;
pub use theta_metrics as metrics;
pub use theta_network as network;
pub use theta_orchestration as orchestration;
pub use theta_primitives as primitives;
pub use theta_protocols as protocols;
pub use theta_schemes as schemes;
pub use theta_service as service;
pub use theta_sim as sim;
